"""Fault-injection suite for the distributed serving tier.

The cluster's acceptance contract (:mod:`repro.cluster`):

* a node dying mid-stream, a slow node, a partial write, a corrupted
  replica — each degrades through the typed ladder (retry ->
  :class:`NodeUnavailableError` -> failover ->
  :class:`ClusterOverloadedError`), **never** into a silent drop or a
  wrong answer;
* every failover answer is **bitwise-identical** to an offline
  prediction against the same artifacts;
* after any fault storm, every surviving node's admission ledger still
  balances (``requests_admitted == requests_completed +
  requests_failed``) — capacity is released, nothing leaks;
* corrupted replication is refused *before* installation: a bad sync
  can never land a bad artifact.

Every fault is injected deterministically through
:mod:`repro.cluster.failpoints` — no timing races, no network chaos —
and each test asserts the failpoint actually fired.
"""

from __future__ import annotations

import struct

import pytest

from repro.artifacts import ArtifactRegistry
from repro.cluster import (
    ClusterCoordinator,
    ClusterNode,
    ClusterOverloadedError,
    Failpoints,
    NodeSpec,
    ReplicaSyncError,
    RetryPolicy,
    corrupt,
    delay,
    fail,
    replicate_registry,
    truncate,
    verify_replica,
)
from repro.serving import PredictionService, ServiceOverloadedError
from repro.serving.stats import ServingStats

from test_serving import make_artifact, random_kernels


def bits(value: float) -> bytes:
    return struct.pack("<d", value)


def blocks_for(kernels):
    """Microkernels -> wire blocks ({mnemonic: multiplicity} dicts)."""
    return [
        [{ins.name: float(count) for ins, count in kernel.counts.items()}]
        for kernel in kernels
    ]


def assert_envelope_matches(response, reference, context=""):
    """A routed envelope must equal the offline prediction bitwise."""
    assert response.get("ok"), (context, response)
    (got,) = response["predictions"]
    assert (got["ipc"] is None) == (reference.ipc is None), context
    if reference.ipc is not None:
        assert bits(got["ipc"]) == bits(reference.ipc), context
    assert bits(got["supported_fraction"]) == bits(
        reference.supported_fraction
    ), context


@pytest.fixture()
def cluster(tmp_path, toy_machine):
    """A 3-node in-process cluster over a toy-machine registry.

    Yields ``(nodes, specs, fingerprint, reference)`` where ``reference``
    maps request index -> the offline prediction for ``KERNELS[index]``.
    """
    source = tmp_path / "source"
    registry = ArtifactRegistry(source)
    artifact = make_artifact(toy_machine)
    registry.save(artifact)

    nodes = []
    specs = []
    for index in range(3):
        node = ClusterNode(
            f"n{index}", source, tmp_path / f"replica{index}"
        ).start()
        nodes.append(node)
        host, port = node.address
        specs.append(NodeSpec(f"n{index}", host, port))

    kernels = random_kernels(
        list(toy_machine.benchmarkable_instructions()), 40, seed=7
    )
    with PredictionService(ArtifactRegistry(source, readonly=True)) as offline:
        fingerprint = offline.resolve(toy_machine.name)
        reference = offline.predict_many(fingerprint, kernels)

    try:
        yield nodes, specs, fingerprint, kernels, reference
    finally:
        for node in nodes:
            node.stop()


def fast_retry(attempts=2):
    return RetryPolicy(
        attempts=attempts, timeout_s=5.0, backoff_s=0.0, cooldown_s=0.5
    )


class TestFailover:
    def test_node_death_mid_stream_is_bitwise_invisible(self, cluster):
        """Kill the primary mid-stream: every answer still lands, bitwise."""
        nodes, specs, fingerprint, kernels, reference = cluster
        coordinator = ClusterCoordinator(specs, replicas=2, retry=fast_retry())
        primary = coordinator.shard_map.primary(fingerprint)
        with coordinator:
            for index, block in enumerate(blocks_for(kernels)):
                if index == 10:  # mid-stream, not between tests: the
                    for node in nodes:  # pooled connection dies under us
                        if node.node_id == primary:
                            node.stop()
                response = coordinator.predict_blocks(
                    block, fingerprint=fingerprint, request_id=index
                )
                assert_envelope_matches(
                    response, reference[index], context=f"request {index}"
                )
            snap = coordinator.stats.snapshot()
        assert snap["requests_routed"] == len(kernels)
        assert snap["refused_upstream"] == 0
        # The dead node burned its budget at least once and the stream
        # failed over (unless it was never this fingerprint's primary
        # candidate — it was, by construction).
        assert snap["failures_by_node"].get(primary, 0) >= 1
        assert snap["failovers"] >= 1

    def test_slow_node_answers_late_not_wrong(self, cluster):
        """A delayed node is slow, not dead: no failover, same bits."""
        nodes, specs, fingerprint, kernels, reference = cluster
        failpoints = Failpoints()
        coordinator = ClusterCoordinator(
            specs, replicas=2, retry=fast_retry(), failpoints=failpoints
        )
        primary = coordinator.shard_map.primary(fingerprint)
        failpoints.arm(("node.request", primary), delay(0.05), times=3)
        with coordinator:
            for index in range(6):
                response = coordinator.predict_blocks(
                    blocks_for(kernels)[index], fingerprint=fingerprint
                )
                assert_envelope_matches(response, reference[index])
            snap = coordinator.stats.snapshot()
        assert failpoints.hits(("node.request", primary)) == 3
        assert snap["failovers"] == 0
        assert snap["failures_by_node"] == {}

    def test_injected_connect_failure_is_retried_within_budget(self, cluster):
        nodes, specs, fingerprint, kernels, reference = cluster
        failpoints = Failpoints()
        coordinator = ClusterCoordinator(
            specs, replicas=2, retry=fast_retry(attempts=2),
            failpoints=failpoints,
        )
        primary = coordinator.shard_map.primary(fingerprint)
        failpoints.arm(
            ("node.connect", primary),
            fail(lambda: ConnectionRefusedError("injected connect failure")),
            times=1,
        )
        with coordinator:
            response = coordinator.predict_blocks(
                blocks_for(kernels)[0], fingerprint=fingerprint
            )
            assert_envelope_matches(response, reference[0])
            snap = coordinator.stats.snapshot()
        assert failpoints.hits(("node.connect", primary)) == 1
        # Recovered on the same node's second attempt: a retry, not a
        # failover.
        assert snap["retries"] == 1
        assert snap["failovers"] == 0

    def test_partial_write_poisons_the_link_and_fails_over(self, cluster):
        nodes, specs, fingerprint, kernels, reference = cluster
        failpoints = Failpoints()
        coordinator = ClusterCoordinator(
            specs,
            replicas=2,
            retry=fast_retry(attempts=1),  # no same-node retry: observe
            failpoints=failpoints,  # the failover path itself
        )
        primary = coordinator.shard_map.primary(fingerprint)
        failpoints.arm(("node.send", primary), truncate(0.5), times=1)
        with coordinator:
            response = coordinator.predict_blocks(
                blocks_for(kernels)[0], fingerprint=fingerprint
            )
            assert_envelope_matches(response, reference[0])
            snap = coordinator.stats.snapshot()
        assert failpoints.hits(("node.send", primary)) == 1
        assert snap["failovers"] == 1
        assert snap["failures_by_node"].get(primary) == 1

    def test_corrupt_replica_on_disk_fails_over_bitwise(self, cluster):
        """A node serving a rotted replica refuses; a replica answers."""
        nodes, specs, fingerprint, kernels, reference = cluster
        coordinator = ClusterCoordinator(specs, replicas=2, retry=fast_retry())
        primary = coordinator.shard_map.primary(fingerprint)
        for node in nodes:
            if node.node_id == primary:
                # Rot the replica *before* the node's first load: the
                # registry's own validation refuses it at request time.
                artifact_path = next(node.replica_dir.glob("mapping-*.json"))
                payload = bytearray(artifact_path.read_bytes())
                payload[len(payload) // 2] ^= 0xFF
                artifact_path.write_bytes(bytes(payload))
        with coordinator:
            for index in range(4):
                response = coordinator.predict_blocks(
                    blocks_for(kernels)[index], fingerprint=fingerprint
                )
                assert_envelope_matches(response, reference[index])
            snap = coordinator.stats.snapshot()
        assert snap["failures_by_node"].get(primary, 0) >= 1
        assert snap["failovers"] >= 1
        assert snap["refused_upstream"] == 0

    def test_all_nodes_down_refuses_with_typed_overload(self, cluster):
        nodes, specs, fingerprint, kernels, reference = cluster
        for node in nodes:
            node.stop()
        coordinator = ClusterCoordinator(
            specs, replicas=3, retry=fast_retry(attempts=1)
        )
        with coordinator:
            with pytest.raises(ClusterOverloadedError) as excinfo:
                coordinator.predict_blocks(
                    blocks_for(kernels)[0], fingerprint=fingerprint
                )
            snap = coordinator.stats.snapshot()
        # The aggregate refusal is a ServiceOverloadedError: upstream
        # clients keep their single-node backoff handling.
        assert isinstance(excinfo.value, ServiceOverloadedError)
        assert sorted(excinfo.value.attempted) == ["n0", "n1", "n2"]
        assert snap["refused_upstream"] == 1

    def test_admission_ledger_balances_after_a_fault_storm(self, cluster):
        """No capacity leaks: every node's ledger balances post-failover."""
        nodes, specs, fingerprint, kernels, reference = cluster
        coordinator = ClusterCoordinator(specs, replicas=2, retry=fast_retry())
        primary = coordinator.shard_map.primary(fingerprint)
        with coordinator:
            for index, block in enumerate(blocks_for(kernels)):
                if index == 15:
                    for node in nodes:
                        if node.node_id == primary:
                            node.stop()
                response = coordinator.predict_blocks(
                    block, fingerprint=fingerprint
                )
                assert_envelope_matches(response, reference[index])
            # Per-node leak check (the PR-6 invariant, now fleet-wide)...
            survivors = [n for n in nodes if n.node_id != primary]
            merged = ServingStats()
            for node in survivors:
                snap = node.service.snapshot()
                assert (
                    snap["requests_admitted"]
                    == snap["requests_completed"] + snap["requests_failed"]
                ), (node.node_id, snap)
                merged.merge_snapshot(snap)
            # ...and it survives the coordinator's merge unchanged.
            fleet = merged.snapshot()
            assert (
                fleet["requests_admitted"]
                == fleet["requests_completed"] + fleet["requests_failed"]
            )
            assert fleet["requests_failed"] == 0
            # The dead primary served the first 15 requests; everything
            # after the kill landed on (exactly one) survivor each.
            assert fleet["requests_admitted"] == len(kernels) - 15


class TestReplicaSync:
    def test_corrupted_sync_is_refused_before_install(self, tmp_path, toy_machine):
        source = tmp_path / "source"
        replica = tmp_path / "replica"
        registry = ArtifactRegistry(source)
        registry.save(make_artifact(toy_machine))
        name = next(source.glob("mapping-*.json")).name

        failpoints = Failpoints()
        failpoints.arm(("sync.copy", name), corrupt(offset=40), times=1)
        with pytest.raises(ReplicaSyncError):
            replicate_registry(source, replica, failpoints=failpoints)
        assert failpoints.hits(("sync.copy", name)) == 1
        # Nothing landed: no artifact, no stray temp file.
        assert list(replica.glob("mapping-*.json")) == []
        assert list(replica.glob("*.sync")) == []
        # The next (clean) sync repairs the replica completely.
        report = replicate_registry(source, replica, failpoints=failpoints)
        assert report.copied == [name]
        assert verify_replica(source, replica) == []

    def test_corrupted_resync_keeps_the_previous_replica_serving(
        self, tmp_path, toy_machine
    ):
        """A botched republish degrades to the old version, not an outage."""
        source = tmp_path / "source"
        replica = tmp_path / "replica"
        registry = ArtifactRegistry(source)
        registry.save(make_artifact(toy_machine))
        replicate_registry(source, replica)
        name = next(source.glob("mapping-*.json")).name
        before = (replica / name).read_bytes()

        # Publish v2 (same machine, different mapping content).
        registry.save(make_artifact(toy_machine, include_front_end=False))
        failpoints = Failpoints()
        failpoints.arm(("sync.copy", name), corrupt(offset=64), times=1)
        with pytest.raises(ReplicaSyncError):
            replicate_registry(source, replica, failpoints=failpoints)
        # The v1 replica is byte-for-byte untouched and still loadable.
        assert (replica / name).read_bytes() == before
        loaded = ArtifactRegistry(replica, readonly=True).entries()
        assert len(loaded) == 1
        # The audit half reports the divergence the sync refused to hide.
        assert verify_replica(source, replica) == [name]

    def test_stamp_skip_and_prune(self, tmp_path, toy_machine):
        source = tmp_path / "source"
        replica = tmp_path / "replica"
        registry = ArtifactRegistry(source)
        registry.save(make_artifact(toy_machine))
        first = replicate_registry(source, replica)
        assert len(first.copied) == 1 and not first.skipped
        second = replicate_registry(source, replica)
        assert second.skipped == first.copied and not second.copied
        assert not second.changed
        # Withdraw the artifact at the source: the replica follows.
        next(source.glob("mapping-*.json")).unlink()
        third = replicate_registry(source, replica)
        assert third.pruned == first.copied
        assert list(replica.glob("mapping-*.json")) == []


class TestServingStatsMerge:
    """Satellite: cross-node stats aggregation (the SolveStats convention)."""

    @staticmethod
    def _node_stats(latency_max, pending_peak, fingerprint="fp-a"):
        stats = ServingStats()
        stats.record_admitted(fingerprint, count=3, pending=pending_peak)
        stats.record_batch(
            occupancy=3, latency_total=0.3, latency_max=latency_max
        )
        stats.record_refused(1)
        stats.record_flush_phases(build=0.01, predict=0.02, resolve=0.005)
        stats.record_mapping_cache(hit=True)
        stats.record_mapping_cache(hit=False, evicted=1)
        stats.record_lowering_cache_many(hits=2, misses=1)
        stats.record_republish(pending=pending_peak)
        return stats

    def test_counters_add_and_watermarks_max(self):
        left = self._node_stats(latency_max=0.5, pending_peak=7)
        right = self._node_stats(latency_max=0.2, pending_peak=11, fingerprint="fp-b")
        merged = self._node_stats(latency_max=0.5, pending_peak=7).merge(right)
        snap = merged.snapshot()
        one = left.snapshot()
        # Additive counters: exactly the sum of the two nodes.
        for key in (
            "requests_submitted",
            "requests_admitted",
            "requests_refused",
            "requests_completed",
            "requests_failed",
            "batches_flushed",
            "batch_occupancy_total",
            "mapping_cache_hits",
            "mapping_cache_misses",
            "mapping_cache_evictions",
            "lowering_cache_hits",
            "lowering_cache_misses",
            "mapping_republishes",
        ):
            assert snap[key] == 2 * one[key], key
        assert snap["latency_total_s"] == pytest.approx(2 * one["latency_total_s"])
        assert snap["flush_build_ms_total"] == pytest.approx(
            2 * one["flush_build_ms_total"]
        )
        # Watermarks: the max across nodes, never the sum.
        assert snap["pending_peak"] == 11
        assert snap["republish_pending_peak"] == 11
        assert snap["latency_max_ms"] == pytest.approx(500.0)
        # Per-fingerprint routing counts merge per key.
        assert snap["requests_by_fingerprint"] == {"fp-a": 3, "fp-b": 3}
        # Derived rates are recomputed, not merged: the aggregate is what
        # one node seeing all the traffic would have reported.
        assert snap["batch_occupancy_mean"] == pytest.approx(3.0)
        assert snap["mapping_cache_hit_rate"] == pytest.approx(0.5)

    def test_merge_snapshot_equals_in_memory_merge(self):
        """The wire path (JSON snapshot) and merge() agree exactly."""
        left = self._node_stats(latency_max=0.4, pending_peak=5)
        right = self._node_stats(latency_max=0.9, pending_peak=2, fingerprint="fp-c")
        via_objects = self._node_stats(latency_max=0.4, pending_peak=5).merge(
            right
        )
        via_wire = self._node_stats(latency_max=0.4, pending_peak=5)
        via_wire.merge_snapshot(right.snapshot())
        object_snapshot = via_objects.snapshot()
        wire_snapshot = via_wire.snapshot()
        assert set(object_snapshot) == set(wire_snapshot)
        for key, value in object_snapshot.items():
            if isinstance(value, float):
                assert wire_snapshot[key] == pytest.approx(value), key
            else:
                assert wire_snapshot[key] == value, key

    def test_merge_identity(self):
        stats = self._node_stats(latency_max=0.1, pending_peak=4)
        before = stats.snapshot()
        stats.merge(ServingStats())
        assert stats.snapshot() == before
