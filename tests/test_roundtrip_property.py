"""Property-based round-trip tests of the full PALMED pipeline.

Two generators feed the pipeline with randomly drawn ground truths:

* random **conjunctive resource mappings** over the toy machine's
  instructions, served through a minimal oracle backend (the pipeline sees
  nothing but IPC numbers, exactly as on hardware);
* random **disjunctive port machines** (random µOP decompositions over 2-4
  ports plus a front-end), measured through the standard
  :class:`PortModelBackend` — the paper's actual setting.

The asserted properties are calibrated to what the algorithm guarantees on
exact, noiseless measurements with the fast test configuration:

* every benchmarkable instruction ends up mapped;
* single-instruction throughputs are recovered essentially exactly for
  conjunctive oracles (they are directly measured and pinned by LP2 /
  LPAUX);
* predictions on the quadratic pair kernels and on random kernels stay
  within a bounded ratio band of the oracle.  The band is not tight (the
  capped fast configuration under-spans resources, and equivalence-class
  clustering can merge instructions whose interactions then go
  unbenchmarked — the same regime as the paper's larger Zen1 errors), but
  it is far below the trivial failure modes (unmapped instructions,
  near-infinite throughputs, degenerate one-resource mappings) this suite
  exists to catch.

Runs are deterministic: ``derandomize=True`` makes Hypothesis draw the same
examples on every invocation, so CI cannot flake on an unlucky ground truth.
"""

from __future__ import annotations

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro import Machine, Microkernel, PortModelBackend, build_toy_machine  # noqa: E402
from repro.isa.instruction import Extension, Instruction, InstructionKind  # noqa: E402
from repro.mapping.conjunctive import ConjunctiveResourceMapping  # noqa: E402
from repro.mapping.disjunctive import DisjunctivePortMapping, MicroOp  # noqa: E402
from repro.palmed import Palmed, PalmedConfig  # noqa: E402

TOY_INSTRUCTIONS = list(build_toy_machine().benchmarkable_instructions())

#: Fast pipeline configuration used by every property (exact LP2 on these
#: small problems, one LP1 round).
PROPERTY_CONFIG = PalmedConfig(
    n_basic_cap=8,
    max_resources=8,
    lp1_max_iterations=1,
    lp1_time_limit=10.0,
    lp2_mode="exact",
    milp_time_limit=20.0,
)

#: Calibrated predicted/oracle ratio bands (see module docstring).
PAIR_RATIO_BAND = (0.45, 2.25)
RANDOM_KERNEL_RATIO_BAND = (0.45, 2.25)

PROPERTY_SETTINGS = settings(
    max_examples=6,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class OracleBackend:
    """A measurement backend backed directly by a known conjunctive mapping.

    The minimal protocol surface: deterministic cycles/IPC, batch
    measurement, and a distinct-benchmark counter.  It deliberately does
    *not* expose a ``fingerprint`` — persistent caching silently degrades
    to uncached operation, which this suite implicitly exercises.
    """

    def __init__(self, mapping: ConjunctiveResourceMapping) -> None:
        self.mapping = mapping
        self._cache = {}

    def cycles(self, kernel: Microkernel) -> float:
        if kernel not in self._cache:
            self._cache[kernel] = self.mapping.cycles(kernel)
        return self._cache[kernel]

    def ipc(self, kernel: Microkernel) -> float:
        return kernel.size / self.cycles(kernel)

    def measure_batch(self, kernels):
        return [self.ipc(kernel) for kernel in kernels]

    @property
    def measurement_count(self) -> int:
        return len(self._cache)


# -- strategies ------------------------------------------------------------
@st.composite
def conjunctive_oracles(draw):
    """A random conjunctive ground-truth mapping over the toy instructions."""
    n_resources = draw(st.integers(2, 4))
    resources = {f"R{r}": 1.0 for r in range(n_resources)}
    names = sorted(resources)
    usage = {}
    for instruction in TOY_INSTRUCTIONS:
        uses = {}
        for resource in names:
            if draw(st.booleans()):
                uses[resource] = draw(st.sampled_from([0.25, 0.5, 1.0]))
        if not uses:
            uses[draw(st.sampled_from(names))] = draw(st.sampled_from([0.5, 1.0]))
        usage[instruction] = uses
    return ConjunctiveResourceMapping(resources, usage)


@st.composite
def port_machines(draw):
    """A random ground-truth port machine (µOP decompositions + front-end)."""
    n_ports = draw(st.integers(2, 4))
    ports = [f"p{i}" for i in range(n_ports)]
    n_instructions = draw(st.integers(4, 7))
    mapping = {}
    for index in range(n_instructions):
        instruction = Instruction(f"I{index}", InstructionKind.INT_ALU, Extension.BASE)
        n_uops = draw(st.integers(1, 2))
        uops = []
        for _ in range(n_uops):
            admissible = draw(
                st.sets(st.sampled_from(ports), min_size=1, max_size=n_ports)
            )
            uops.append(MicroOp(frozenset(admissible)))
        mapping[instruction] = tuple(uops)
    front_end = draw(st.sampled_from([2.0, 3.0, 4.0]))
    return Machine(
        name="property-machine",
        port_mapping=DisjunctivePortMapping(ports, mapping),
        front_end_width=front_end,
    )


def _random_kernels(draw_ints, instructions, count=12):
    """Kernels derived from a flat integer seed list (keeps shrinking sane)."""
    kernels = []
    for index in range(count):
        picks = {}
        for offset in range(1 + draw_ints[index] % 3):
            instruction = instructions[(draw_ints[index] + 7 * offset) % len(instructions)]
            picks[instruction] = 1 + (draw_ints[index] // (offset + 1)) % 4
        kernels.append(Microkernel(picks))
    return kernels


def _check_ratio(predicted: float, oracle: float, band, label: str) -> None:
    assert oracle > 0 and math.isfinite(predicted), label
    ratio = predicted / oracle
    assert band[0] <= ratio <= band[1], f"{label}: predicted/oracle = {ratio:.3f}"


# -- properties ------------------------------------------------------------
class TestConjunctiveOracleRoundTrip:
    @PROPERTY_SETTINGS
    @given(oracle=conjunctive_oracles(), seeds=st.lists(st.integers(0, 10_000),
                                                        min_size=12, max_size=12))
    def test_pipeline_recovers_oracle_throughputs(self, oracle, seeds):
        backend = OracleBackend(oracle)
        result = Palmed(backend, TOY_INSTRUCTIONS, PROPERTY_CONFIG,
                        machine_name="conjunctive-oracle").run()

        # Every instruction of the ground truth is benchmarkable and mapped.
        mapped = [inst for inst in TOY_INSTRUCTIONS if result.supports(inst)]
        assert mapped == TOY_INSTRUCTIONS

        # Single-instruction throughputs are directly measured: recovered
        # essentially exactly.
        for instruction in mapped:
            kernel = Microkernel.single(instruction, 2)
            assert result.predict_ipc(kernel) == pytest.approx(
                oracle.ipc(kernel), rel=0.02
            ), instruction.name

        # Quadratic pair kernels (the shapes the pipeline measured) stay in
        # the calibrated band.
        for i, a in enumerate(mapped):
            for b in mapped[i + 1 :]:
                kernel = Microkernel(
                    {
                        a: oracle.ipc(Microkernel.single(a)),
                        b: oracle.ipc(Microkernel.single(b)),
                    }
                )
                _check_ratio(
                    result.predict_ipc(kernel),
                    oracle.ipc(kernel),
                    PAIR_RATIO_BAND,
                    f"pair {kernel.notation()}",
                )

        # Arbitrary random kernels never get degenerate predictions.
        for kernel in _random_kernels(seeds, mapped):
            _check_ratio(
                result.predict_ipc(kernel),
                oracle.ipc(kernel),
                RANDOM_KERNEL_RATIO_BAND,
                f"kernel {kernel.notation()}",
            )


class TestPortMachineRoundTrip:
    @PROPERTY_SETTINGS
    @given(machine=port_machines(), seeds=st.lists(st.integers(0, 10_000),
                                                   min_size=12, max_size=12))
    def test_pipeline_recovers_port_model_throughputs(self, machine, seeds):
        backend = PortModelBackend(machine)
        result = Palmed(backend, machine.benchmarkable_instructions(),
                        PROPERTY_CONFIG).run()

        instructions = list(machine.benchmarkable_instructions())
        mapped = [inst for inst in instructions if result.supports(inst)]
        assert mapped == instructions

        for instruction in mapped:
            kernel = Microkernel.single(instruction, 3)
            _check_ratio(
                result.predict_ipc(kernel),
                machine.true_ipc(kernel),
                PAIR_RATIO_BAND,
                f"single {instruction.name}",
            )

        for kernel in _random_kernels(seeds, mapped):
            _check_ratio(
                result.predict_ipc(kernel),
                machine.true_ipc(kernel),
                RANDOM_KERNEL_RATIO_BAND,
                f"kernel {kernel.notation()}",
            )
