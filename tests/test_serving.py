"""Differential and behavioural suite for the online serving subsystem.

The acceptance contract of :mod:`repro.serving`:

* **any** interleaving of concurrent requests across several machine
  fingerprints yields results bitwise-identical to a serial per-request
  scalar evaluation;
* overload beyond the admission bound is refused with a typed error and
  nothing is ever silently dropped;
* the hot-mapping cache stays within its capacity and reports eviction
  statistics;
* the registry is consumed read-only.
"""

from __future__ import annotations

import json
import random
import struct
import threading
import time

import pytest

from repro import Microkernel
from repro.artifacts import (
    ArtifactNotFoundError,
    ArtifactRegistry,
    MappingArtifact,
    RegistryReadOnlyError,
)
from repro.measure.fingerprint import machine_fingerprint
from repro.palmed.result import PalmedStats
from repro.predictors import MappingMatrix, PalmedPredictor
from repro.predictors.batch import LoweredBatchBuilder, instruction_id
from repro.runtime import WorkerLane
from repro.serving import (
    HotMappingCache,
    LineProtocolServer,
    MicroBatcher,
    PredictionService,
    ServiceClosedError,
    ServiceOverloadedError,
    ServingClient,
    UnknownMachineError,
    serve_stdio,
)


def bits(value):
    return struct.pack("<d", value)


def assert_same_prediction(left, right, context=""):
    assert (left.ipc is None) == (right.ipc is None), context
    if left.ipc is not None:
        assert bits(left.ipc) == bits(right.ipc), context
    assert bits(left.supported_fraction) == bits(right.supported_fraction), context


def make_artifact(
    machine,
    include_front_end: bool = True,
    throughput_scale: float = 1.0,
) -> MappingArtifact:
    """A serving artifact from the machine's ground-truth conjunctive dual.

    ``include_front_end=False`` or ``throughput_scale != 1`` yield a
    *different mapping for the same fingerprint* — what a republished
    (v2) artifact looks like on disk, which the cluster republish tests
    exploit; a scaled mapping changes every supported prediction, so a
    hot swap is observable on any block.
    """
    stats = PalmedStats(
        machine_name=machine.name,
        num_instructions_total=len(machine.instructions),
        num_benchmarkable=len(machine.benchmarkable_instructions()),
        num_instructions_mapped=len(machine.benchmarkable_instructions()),
        num_basic_instructions=0,
        num_resources=0,
        num_benchmarks=0,
        num_equivalence_classes=0,
        num_low_ipc=0,
        lp1_iterations=0,
        benchmarking_time=0.0,
        lp_time=0.0,
        total_time=0.0,
    )
    mapping = machine.true_conjunctive(include_front_end=include_front_end)
    if throughput_scale != 1.0:
        from repro.mapping.conjunctive import ConjunctiveResourceMapping

        mapping = ConjunctiveResourceMapping(
            {
                name: throughput_scale * mapping.throughput_of(name)
                for name in mapping.resources
            },
            {ins: mapping.usage_of(ins) for ins in mapping.instructions},
        )
    return MappingArtifact(
        machine_name=machine.name,
        machine_fingerprint=machine_fingerprint(machine),
        mapping=mapping,
        stats=stats,
    )


def random_kernels(instructions, n, seed, max_distinct=10):
    rng = random.Random(seed)
    kernels = []
    for _ in range(n):
        distinct = rng.randint(1, min(max_distinct, len(instructions)))
        chosen = rng.sample(list(instructions), distinct)
        kernels.append(
            Microkernel(
                {inst: rng.choice([0.25, 0.5, 1.0, 2.0, 3.0]) for inst in chosen}
            )
        )
    return kernels


@pytest.fixture(scope="module")
def serving_registry(tmp_path_factory, toy_machine, small_skl_machine):
    root = tmp_path_factory.mktemp("serving-registry")
    registry = ArtifactRegistry(root)
    registry.save(make_artifact(toy_machine))
    registry.save(make_artifact(small_skl_machine))
    return root


@pytest.fixture(scope="module")
def reference_predictors(toy_machine, small_skl_machine):
    """Scalar per-request reference, one per machine fingerprint."""
    return {
        machine_fingerprint(machine): PalmedPredictor(
            machine.true_conjunctive(include_front_end=True)
        )
        for machine in (toy_machine, small_skl_machine)
    }


class TestWorkerLane:
    def test_runs_body_until_stopped(self):
        ticks = []
        done = threading.Event()

        def body(stop):
            ticks.append(1)
            done.set()
            stop.wait(0.01)

        lane = WorkerLane(body, name="test-lane").start()
        assert done.wait(5.0)
        assert lane.running
        lane.stop(join=True)
        assert not lane.running
        assert ticks

    def test_start_stop_idempotent(self):
        lane = WorkerLane(lambda stop: stop.wait(0.01))
        lane.start()
        lane.start()
        lane.stop()
        lane.stop()
        assert not lane.running


class TestMicroBatcher:
    def test_coalesces_queued_submissions_into_one_batch(self):
        batches = []

        def process(payloads):
            batches.append(len(payloads))
            return [p * 2 for p in payloads]

        batcher = MicroBatcher(process, max_batch_size=64)
        futures = [batcher.submit(i) for i in range(10)]
        batcher.start()
        assert [f.result(5.0) for f in futures] == [2 * i for i in range(10)]
        batcher.close()
        assert batches and max(batches) > 1, "queued burst should coalesce"
        assert sum(batches) == 10

    def test_max_batch_size_respected(self):
        batches = []

        def process(payloads):
            batches.append(len(payloads))
            return list(payloads)

        batcher = MicroBatcher(process, max_batch_size=4)
        futures = [batcher.submit(i) for i in range(10)]
        batcher.start()
        for future in futures:
            future.result(5.0)
        batcher.close()
        assert max(batches) <= 4

    def test_groups_never_split(self):
        batches = []

        def process(payloads):
            batches.append(list(payloads))
            return list(payloads)

        batcher = MicroBatcher(process, max_batch_size=2)
        future = batcher.submit_many([1, 2, 3, 4, 5])
        batcher.start()
        assert future.result(5.0) == [1, 2, 3, 4, 5]
        batcher.close()
        assert [1, 2, 3, 4, 5] in batches

    def test_max_wait_lingers_for_stragglers(self):
        def process(payloads):
            return list(payloads)

        batcher = MicroBatcher(process, max_batch_size=64, max_wait_s=0.5)
        batcher.start()
        first = batcher.submit("a")
        time.sleep(0.05)
        second = batcher.submit("b")
        assert first.result(5.0) == "a" and second.result(5.0) == "b"
        batcher.close()
        assert batcher.stats.snapshot()["batches_flushed"] == 1
        assert batcher.stats.snapshot()["batch_occupancy_max"] == 2

    def test_process_failure_propagates_to_every_future(self):
        def process(payloads):
            raise ValueError("engine exploded")

        batcher = MicroBatcher(process)
        futures = [batcher.submit(i) for i in range(3)]
        batcher.start()
        for future in futures:
            with pytest.raises(ValueError, match="engine exploded"):
                future.result(5.0)
        batcher.close()
        snap = batcher.stats.snapshot()
        assert snap["requests_failed"] == 3
        assert snap["requests_completed"] == 0

    def test_closed_batcher_refuses_submissions(self):
        batcher = MicroBatcher(lambda payloads: list(payloads))
        batcher.start()
        batcher.close()
        with pytest.raises(ServiceClosedError):
            batcher.submit(1)

    def test_close_without_drain_fails_queued_futures(self):
        batcher = MicroBatcher(lambda payloads: list(payloads))
        future = batcher.submit(1)  # never started: stays queued
        batcher.close(drain=False)
        with pytest.raises(ServiceClosedError):
            future.result(5.0)

    def test_close_of_never_started_batcher_fails_queued_futures(self):
        """drain=True on a lane that never ran must still answer everything."""
        batcher = MicroBatcher(lambda payloads: list(payloads))
        future = batcher.submit(1)
        batcher.close(drain=True)  # nothing can drain: lane never started
        with pytest.raises(ServiceClosedError):
            future.result(5.0)
        assert batcher.pending == 0
        snap = batcher.stats.snapshot()
        assert snap["requests_admitted"] == 1
        assert snap["requests_failed"] == 1, "abandoned kernels must be accounted"

    def test_cancelled_future_not_counted_completed(self):
        batcher = MicroBatcher(lambda payloads: list(payloads))
        kept = batcher.submit("kept")
        dropped = batcher.submit("dropped")
        assert dropped.cancel()
        batcher.start()
        assert kept.result(5.0) == "kept"
        batcher.close()
        snap = batcher.stats.snapshot()
        assert snap["requests_completed"] == 1
        assert snap["requests_failed"] == 1  # the cancelled kernel
        assert snap["requests_admitted"] == 2


class TestAdmissionControl:
    def test_overload_is_refused_with_typed_error_never_dropped(
        self, serving_registry, toy_machine, reference_predictors
    ):
        instructions = toy_machine.benchmarkable_instructions()
        kernels = random_kernels(instructions, 12, seed=3)
        service = PredictionService(serving_registry, max_pending=8)
        fingerprint = machine_fingerprint(toy_machine)
        # Not started: submissions queue against the admission bound.
        futures = [service.submit(fingerprint, k) for k in kernels[:8]]
        with pytest.raises(ServiceOverloadedError) as excinfo:
            service.submit(fingerprint, kernels[8])
        assert excinfo.value.pending == 8
        assert excinfo.value.bound == 8
        snapshot = service.snapshot()
        assert snapshot["requests_refused"] == 1
        assert snapshot["requests_admitted"] == 8

        # Everything admitted is served (bitwise) once the lanes start.
        service.start()
        reference = reference_predictors[fingerprint]
        for kernel, future in zip(kernels[:8], futures):
            assert_same_prediction(future.result(10.0), reference.predict(kernel))
        service.stop()
        snapshot = service.snapshot()
        assert snapshot["requests_completed"] == 8
        assert snapshot["requests_failed"] == 0

    def test_group_refused_atomically(self, serving_registry, toy_machine):
        instructions = toy_machine.benchmarkable_instructions()
        kernels = random_kernels(instructions, 6, seed=4)
        service = PredictionService(serving_registry, max_pending=4)
        fingerprint = machine_fingerprint(toy_machine)
        service.submit(fingerprint, kernels[0])
        with pytest.raises(ServiceOverloadedError) as excinfo:
            service.submit_many(fingerprint, kernels[1:6])
        assert excinfo.value.requested == 5
        # The refused group must not have been partially admitted.
        assert service.snapshot()["requests_admitted"] == 1
        service.start()
        service.stop()

    def test_unknown_fingerprint_refused_at_submit(self, serving_registry):
        service = PredictionService(serving_registry)
        with pytest.raises(ArtifactNotFoundError):
            service.submit("0" * 64, Microkernel.single(_placeholder()))
        service.stop()

    def test_stopped_service_refuses_fresh_fingerprints_too(
        self, serving_registry, toy_machine, small_skl_machine
    ):
        """After stop(), a fingerprint that never had a lane is refused
        like any other — no orphan lane whose futures would hang."""
        kernel = Microkernel.single(toy_machine.benchmarkable_instructions()[0])
        service = PredictionService(serving_registry)
        service.start()
        service.predict(machine_fingerprint(toy_machine), kernel, timeout=10.0)
        service.stop()
        with pytest.raises(ServiceClosedError):
            service.submit(machine_fingerprint(toy_machine), kernel)
        with pytest.raises(ServiceClosedError):
            # This fingerprint was never routed before the stop.
            service.submit(
                machine_fingerprint(small_skl_machine),
                Microkernel.single(
                    small_skl_machine.benchmarkable_instructions()[0]
                ),
            )


def _placeholder():
    from repro.isa.instruction import Extension, Instruction, InstructionKind

    return Instruction("PLACEHOLDER", InstructionKind.INT_ALU, Extension.BASE)


class TestDifferentialConcurrent:
    """The acceptance differential: interleavings across >= 2 fingerprints."""

    def test_concurrent_interleavings_bitwise_equal_serial(
        self,
        serving_registry,
        toy_machine,
        small_skl_machine,
        reference_predictors,
    ):
        fingerprints = [
            machine_fingerprint(toy_machine),
            machine_fingerprint(small_skl_machine),
        ]
        pools = {
            fingerprints[0]: toy_machine.benchmarkable_instructions(),
            fingerprints[1]: small_skl_machine.benchmarkable_instructions(),
        }
        num_threads, per_thread = 8, 40
        outcomes = [None] * num_threads

        with PredictionService(serving_registry, max_batch_size=32) as service:

            def client(index):
                rng = random.Random(1000 + index)
                sent = []
                futures = []
                for step in range(per_thread):
                    fingerprint = fingerprints[rng.randrange(2)]
                    kernel = random_kernels(
                        pools[fingerprint], 1, seed=rng.randrange(1 << 30)
                    )[0]
                    sent.append((fingerprint, kernel))
                    futures.append(service.submit(fingerprint, kernel))
                outcomes[index] = (sent, [f.result(30.0) for f in futures])

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(num_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            snapshot = service.snapshot()

        for index, (sent, results) in enumerate(outcomes):
            for step, ((fingerprint, kernel), result) in enumerate(
                zip(sent, results)
            ):
                reference = reference_predictors[fingerprint].predict(kernel)
                assert_same_prediction(
                    result, reference, f"thread {index} step {step}"
                )

        total = num_threads * per_thread
        assert snapshot["requests_admitted"] == total
        assert snapshot["requests_completed"] == total
        assert snapshot["requests_refused"] == 0
        assert snapshot["requests_failed"] == 0
        assert len(snapshot["requests_by_fingerprint"]) == 2

    def test_submit_many_groups_bitwise_equal_serial(
        self, serving_registry, small_skl_machine, reference_predictors
    ):
        fingerprint = machine_fingerprint(small_skl_machine)
        kernels = random_kernels(
            small_skl_machine.benchmarkable_instructions(), 50, seed=7
        )
        with PredictionService(serving_registry) as service:
            group = service.predict_many(fingerprint, kernels)
        reference = reference_predictors[fingerprint]
        assert len(group) == len(kernels)
        for kernel, result in zip(kernels, group):
            assert_same_prediction(result, reference.predict(kernel))

    def test_service_predictor_matches_direct_predictor(
        self, serving_registry, small_skl_machine, reference_predictors
    ):
        """The harness integration path: Predictor protocol through the service."""
        fingerprint = machine_fingerprint(small_skl_machine)
        kernels = random_kernels(
            small_skl_machine.benchmarkable_instructions(), 60, seed=8
        )
        direct = reference_predictors[fingerprint]
        with PredictionService(serving_registry) as service:
            served = service.predictor(fingerprint)
            assert served.name == "Palmed"
            batch = served.predict_batch(kernels)
            single = served.predict(kernels[0])
            supports = [
                served.supports(inst)
                for inst in small_skl_machine.benchmarkable_instructions()[:5]
            ]
        for kernel, result in zip(kernels, batch):
            assert_same_prediction(result, direct.predict(kernel))
        assert_same_prediction(single, direct.predict(kernels[0]))
        assert supports == [
            direct.supports(inst)
            for inst in small_skl_machine.benchmarkable_instructions()[:5]
        ]

    def test_harness_through_service_equals_direct(
        self, serving_registry, toy_machine, toy_backend, reference_predictors
    ):
        """Fig. 4b metrics computed through the service match the direct path."""
        from repro.evaluation import evaluate_predictors
        from repro.workloads import generate_spec_like_suite

        fingerprint = machine_fingerprint(toy_machine)
        suite = generate_spec_like_suite(
            toy_machine.instructions, n_blocks=15, seed=0
        )
        direct = evaluate_predictors(
            toy_backend,
            suite,
            [reference_predictors[fingerprint]],
            machine_name=toy_machine.name,
        ).metrics("Palmed")
        with PredictionService(serving_registry) as service:
            served = evaluate_predictors(
                toy_backend,
                suite,
                [service.predictor(fingerprint)],
                machine_name=toy_machine.name,
            ).metrics("Palmed")
        assert bits(served.coverage) == bits(direct.coverage)
        assert bits(served.rms_error) == bits(direct.rms_error)
        assert served.kendall_tau == direct.kendall_tau


class TestHotMappingCache:
    def test_lru_eviction_within_capacity(
        self, serving_registry, toy_machine, small_skl_machine
    ):
        fp_toy = machine_fingerprint(toy_machine)
        fp_skl = machine_fingerprint(small_skl_machine)
        registry = ArtifactRegistry(serving_registry, readonly=True)
        cache = HotMappingCache(registry, capacity=1)
        cache.get(fp_toy)
        assert cache.resident_fingerprints() == (fp_toy,)
        cache.get(fp_skl)
        assert cache.resident_fingerprints() == (fp_skl,)
        cache.get(fp_toy)
        snap = cache.stats.snapshot()
        assert snap["mapping_cache_evictions"] == 2
        assert snap["mapping_cache_misses"] == 3
        assert len(cache) == 1

    def test_eviction_does_not_affect_results(
        self, serving_registry, toy_machine, small_skl_machine, reference_predictors
    ):
        fp_toy = machine_fingerprint(toy_machine)
        fp_skl = machine_fingerprint(small_skl_machine)
        kernels = {
            fp_toy: random_kernels(toy_machine.benchmarkable_instructions(), 6, 1),
            fp_skl: random_kernels(
                small_skl_machine.benchmarkable_instructions(), 6, 2
            ),
        }
        with PredictionService(
            serving_registry, mapping_cache_capacity=1
        ) as service:
            for round_index in range(3):
                for fingerprint in (fp_toy, fp_skl):
                    kernel = kernels[fingerprint][round_index]
                    result = service.predict(fingerprint, kernel, timeout=10.0)
                    assert_same_prediction(
                        result, reference_predictors[fingerprint].predict(kernel)
                    )
            snapshot = service.snapshot()
        assert snapshot["mapping_cache_evictions"] > 0

    def test_unknown_fingerprint_raises_registry_error(self, serving_registry):
        registry = ArtifactRegistry(serving_registry, readonly=True)
        cache = HotMappingCache(registry, capacity=2)
        with pytest.raises(ArtifactNotFoundError):
            cache.get("f" * 64)


class TestNameResolution:
    def test_recharacterized_name_becomes_ambiguous_not_stale(
        self, tmp_path, small_skl_machine
    ):
        """A long-running node must notice registry changes: a name that
        now matches two artifacts is refused, never served stale."""
        from repro import build_skylake_like_machine, build_small_isa

        registry = ArtifactRegistry(tmp_path / "registry")
        registry.save(make_artifact(small_skl_machine))
        service = PredictionService(registry.root)
        fingerprint = service.resolve(small_skl_machine.name)
        assert fingerprint == machine_fingerprint(small_skl_machine)

        # A second characterization of the "same" machine name with a
        # different model lands in the shared registry.
        sibling = build_skylake_like_machine(isa=build_small_isa(12, seed=3))
        assert sibling.name == small_skl_machine.name
        registry.save(make_artifact(sibling))
        with pytest.raises(UnknownMachineError, match="ambiguous"):
            service.resolve(small_skl_machine.name)
        service.stop()

    def test_unknown_name_refused_from_cached_index(self, serving_registry):
        service = PredictionService(serving_registry)
        with pytest.raises(UnknownMachineError, match="no mapping artifact"):
            service.resolve("no-such-machine")
        # Repeat refusals are answered from the cached name index.
        with pytest.raises(UnknownMachineError):
            service.resolve("no-such-machine")
        service.stop()


class TestReadonlyRegistry:
    def test_save_refused(self, serving_registry, toy_machine):
        registry = ArtifactRegistry(serving_registry, readonly=True)
        with pytest.raises(RegistryReadOnlyError):
            registry.save(make_artifact(toy_machine))

    def test_stage_writes_refused(self, serving_registry):
        from repro.artifacts import StageCheckpoint

        registry = ArtifactRegistry(serving_registry, readonly=True)
        checkpoint = StageCheckpoint(
            stage="core",
            machine_fingerprint="a" * 64,
            input_hash="b" * 64,
            output_hash="c" * 64,
            payload={},
        )
        with pytest.raises(RegistryReadOnlyError):
            registry.save_stage(checkpoint)
        with pytest.raises(RegistryReadOnlyError):
            registry.delete_stage("a" * 64, "core")

    def test_service_opens_registry_readonly(self, serving_registry):
        service = PredictionService(serving_registry)
        assert service.registry.readonly
        service.stop()

    def test_reads_still_work(self, serving_registry, toy_machine):
        registry = ArtifactRegistry(serving_registry, readonly=True)
        artifact = registry.load_for_machine(toy_machine)
        assert artifact.machine_name == toy_machine.name


class TestLoweredBatch:
    def test_builder_matches_suite_matrix_bitwise(self, small_skl_machine):
        mapping = small_skl_machine.true_conjunctive(include_front_end=True)
        matrix = MappingMatrix(mapping)
        kernels = random_kernels(
            small_skl_machine.benchmarkable_instructions(), 40, seed=9
        )
        builder = LoweredBatchBuilder()
        for kernel in kernels:
            builder.append_kernel(kernel)
        assert len(builder) == len(kernels)
        lowered = matrix.predict_lowered(builder.take())
        batch = matrix.predict_batch(kernels)
        assert len(builder) == 0, "take() must reset the builder"
        for left, right in zip(lowered, batch):
            assert_same_prediction(left, right)

    def test_partial_coverage_matches(self, small_skl_machine):
        instructions = small_skl_machine.benchmarkable_instructions()
        mapping = small_skl_machine.true_conjunctive(include_front_end=True)
        matrix = MappingMatrix(mapping.restricted(instructions[: len(instructions) // 3]))
        kernels = random_kernels(instructions, 40, seed=10)
        builder = LoweredBatchBuilder()
        for kernel in kernels:
            builder.append_kernel(kernel)
        lowered = matrix.predict_lowered(builder.take())
        scalar = matrix.predict_batch(kernels)
        assert any(p.ipc is None for p in scalar)
        for left, right in zip(lowered, scalar):
            assert_same_prediction(left, right)

    def test_empty_batch(self, toy_machine):
        matrix = MappingMatrix(toy_machine.true_conjunctive())
        assert matrix.predict_lowered(LoweredBatchBuilder().take()) == []

    def test_interning_is_stable(self, toy_machine):
        instruction = toy_machine.benchmarkable_instructions()[0]
        assert instruction_id(instruction) == instruction_id(instruction)

    def test_ids_interned_after_lut_build_are_masked_without_rebuild(
        self, toy_machine
    ):
        """Fresh never-seen mnemonics (e.g. adversarial frontend input)
        must degrade to 'unsupported', not rebuild or break the table."""
        from repro.isa.instruction import Extension, Instruction, InstructionKind

        matrix = MappingMatrix(toy_machine.true_conjunctive(include_front_end=True))
        known = toy_machine.benchmarkable_instructions()[0]
        warm = LoweredBatchBuilder()
        warm.append_kernel(Microkernel.single(known, 2.0))
        matrix.predict_lowered(warm.take())  # builds the interned LUT

        fresh = Instruction(
            "NEVER_SEEN_BEFORE_XYZ", InstructionKind.INT_ALU, Extension.BASE
        )
        kernels = [
            Microkernel({known: 2.0, fresh: 1.0}),
            Microkernel.single(fresh, 3.0),
        ]
        builder = LoweredBatchBuilder()
        for kernel in kernels:
            builder.append_kernel(kernel)
        lowered = matrix.predict_lowered(builder.take())
        reference = matrix.predict_batch(kernels)
        for left, right in zip(lowered, reference):
            assert_same_prediction(left, right)
        assert lowered[1].ipc is None


class TestStdioFrontend:
    def _roundtrip(self, service, lines):
        import io

        out = io.StringIO()
        serve_stdio(service, io.StringIO("\n".join(lines) + "\n"), out)
        return [json.loads(line) for line in out.getvalue().splitlines()]

    def test_predict_stats_shutdown(
        self, serving_registry, toy_machine, reference_predictors
    ):
        fingerprint = machine_fingerprint(toy_machine)
        instructions = toy_machine.benchmarkable_instructions()
        block = {instructions[0].name: 2.0, instructions[1].name: 1.0}
        with PredictionService(serving_registry) as service:
            responses = self._roundtrip(
                service,
                [
                    json.dumps(
                        {"id": 1, "machine": toy_machine.name, "blocks": [block]}
                    ),
                    json.dumps({"id": 2, "op": "stats"}),
                    json.dumps({"id": 3, "op": "shutdown"}),
                ],
            )
        predict, stats, stopping = responses
        assert predict["ok"] and predict["fingerprint"] == fingerprint
        kernel = Microkernel(
            {instructions[0]: 2.0, instructions[1]: 1.0}
        )
        expected = reference_predictors[fingerprint].predict(kernel)
        assert bits(predict["predictions"][0]["ipc"]) == bits(expected.ipc)
        assert stats["ok"] and stats["stats"]["requests_completed"] == 1
        assert stopping["ok"] and stopping["stopping"]

    def test_error_envelopes_are_typed(self, serving_registry):
        with PredictionService(serving_registry) as service:
            responses = self._roundtrip(
                service,
                [
                    "this is not json",
                    json.dumps({"id": 5, "machine": "no-such", "blocks": [{"A": 1}]}),
                    json.dumps({"id": 6, "blocks": [{"A": 1}]}),
                    json.dumps({"id": 7, "op": "nonsense"}),
                    json.dumps({"id": 8, "op": "shutdown"}),
                ],
            )
        assert not responses[0]["ok"]
        assert responses[0]["error"]["type"] == "JSONDecodeError"
        assert not responses[1]["ok"]
        assert responses[1]["error"]["type"] == "UnknownMachineError"
        assert not responses[2]["ok"]
        assert responses[2]["error"]["type"] == "InvalidRequestError"
        assert not responses[3]["ok"]
        assert responses[3]["error"]["type"] == "InvalidRequestError"

    def test_unknown_mnemonic_degrades_like_paper_protocol(
        self, serving_registry, toy_machine
    ):
        instructions = toy_machine.benchmarkable_instructions()
        with PredictionService(serving_registry) as service:
            responses = self._roundtrip(
                service,
                [
                    json.dumps(
                        {
                            "id": 1,
                            "machine": toy_machine.name,
                            "blocks": [
                                {"TOTALLY_UNKNOWN": 1.0},
                                {instructions[0].name: 1.0, "ALSO_UNKNOWN": 1.0},
                            ],
                        }
                    ),
                    json.dumps({"op": "shutdown"}),
                ],
            )
        predictions = responses[0]["predictions"]
        assert predictions[0]["ipc"] is None
        assert predictions[0]["supported_fraction"] == 0.0
        assert predictions[1]["ipc"] is not None
        assert 0.0 < predictions[1]["supported_fraction"] < 1.0

    def test_garbage_mnemonics_do_not_grow_the_intern_table(
        self, serving_registry, toy_machine
    ):
        """Client-controlled strings must never leak into the global
        instruction intern table (a long-running node stays bounded)."""
        from repro.predictors.batch import interned_instruction_count

        with PredictionService(serving_registry) as service:
            self._roundtrip(
                service,
                [
                    json.dumps(
                        {
                            "id": 1,
                            "machine": toy_machine.name,
                            "blocks": [{f"GARBAGE_{i}": 1.0} for i in range(50)],
                        }
                    ),
                ],
            )
            before = interned_instruction_count()
            self._roundtrip(
                service,
                [
                    json.dumps(
                        {
                            "id": 2,
                            "machine": toy_machine.name,
                            "blocks": [
                                {f"OTHER_GARBAGE_{i}": 1.0} for i in range(50)
                            ],
                        }
                    ),
                ],
            )
            assert interned_instruction_count() == before


class TestTcpFrontend:
    def test_concurrent_clients_bitwise_and_clean_shutdown(
        self,
        serving_registry,
        toy_machine,
        small_skl_machine,
        reference_predictors,
    ):
        machines = {
            toy_machine.name: toy_machine,
            small_skl_machine.name: small_skl_machine,
        }
        service = PredictionService(serving_registry).start()
        server = LineProtocolServer(service, port=0)
        host, port = server.address
        server_thread = threading.Thread(target=server.serve_forever, daemon=True)
        server_thread.start()
        try:
            errors = []

            def client(index):
                try:
                    rng = random.Random(index)
                    with ServingClient(host, port) as link:
                        for step in range(10):
                            name = rng.choice(sorted(machines))
                            machine = machines[name]
                            kernel = random_kernels(
                                machine.benchmarkable_instructions(),
                                1,
                                seed=rng.randrange(1 << 30),
                            )[0]
                            blocks = [
                                {inst.name: count for inst, count in kernel.items()}
                            ]
                            response = link.predict_blocks(
                                blocks, machine=name, request_id=step
                            )
                            assert response["ok"], response
                            fingerprint = response["fingerprint"]
                            expected = reference_predictors[fingerprint].predict(
                                kernel
                            )
                            got = response["predictions"][0]
                            if expected.ipc is None:
                                assert got["ipc"] is None
                            else:
                                assert bits(got["ipc"]) == bits(expected.ipc)
                            assert bits(got["supported_fraction"]) == bits(
                                expected.supported_fraction
                            )
                except Exception as error:  # noqa: BLE001 - reported below
                    errors.append((index, error))

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors

            with ServingClient(host, port) as link:
                stats = link.stats()
                assert stats["ok"]
                assert stats["stats"]["requests_completed"] == 40
                reply = link.shutdown()
                assert reply["stopping"]
            server_thread.join(timeout=10.0)
            assert not server_thread.is_alive(), "server loop must stop cleanly"
        finally:
            server.server_close()
            service.stop()
