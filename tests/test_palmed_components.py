"""Tests for the individual stages of the PALMED pipeline (Sec. V)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Microkernel, PortModelBackend, build_toy_machine
from repro.isa import Extension, Instruction, InstructionKind
from repro.machines.toy import TOY_INSTRUCTIONS
from repro.palmed import PalmedConfig
from repro.palmed.basic_selection import select_basic_instructions
from repro.palmed.benchmarks import (
    BenchmarkRunner,
    mixes_vector_extensions,
    quantize_kernel,
    quantize_multiplicity,
)
from repro.palmed.clustering import (
    cluster_representatives,
    hierarchical_clusters,
    relative_distance,
)
from repro.palmed.core_mapping import compute_core_mapping, resource_label
from repro.palmed.lp1_shape import KernelObservation, saturating_instructions, solve_shape
from repro.palmed.lp2_weights import (
    WeightProblem,
    kernel_resource_usage,
    solve_weights_exact,
    solve_weights_heuristic,
)
from repro.palmed.quadratic import QuadraticBenchmarks


@pytest.fixture(scope="module")
def toy_runner():
    machine = build_toy_machine()
    return BenchmarkRunner(PortModelBackend(machine), PalmedConfig())


@pytest.fixture(scope="module")
def toy_quadratic(toy_runner):
    machine = build_toy_machine()
    return QuadraticBenchmarks(toy_runner, machine.benchmarkable_instructions())


class TestQuantization:
    def test_quantize_multiplicity_exact_value(self):
        assert quantize_multiplicity(2.0) == 2.0

    def test_quantize_multiplicity_snaps_to_rational(self):
        assert quantize_multiplicity(0.3333) == pytest.approx(1.0 / 3.0, rel=1e-3)

    def test_quantize_multiplicity_rejects_non_positive(self):
        with pytest.raises(ValueError):
            quantize_multiplicity(0.0)

    def test_quantize_kernel(self, toy_runner):
        addss = TOY_INSTRUCTIONS["ADDSS"]
        kernel = quantize_kernel(Microkernel.single(addss, 1.99999))
        assert kernel.multiplicity(addss) == pytest.approx(2.0)

    def test_mixes_vector_extensions(self):
        sse = Instruction("S_OP", InstructionKind.FP_ADD, Extension.SSE, 128)
        avx = Instruction("A_OP", InstructionKind.FP_ADD, Extension.AVX, 256)
        base = Instruction("B_OP", InstructionKind.INT_ALU, Extension.BASE, 64)
        assert mixes_vector_extensions(sse, avx)
        assert not mixes_vector_extensions(sse, base)
        assert not mixes_vector_extensions(base, base)


class TestBenchmarkRunner:
    def test_single_ipc(self, toy_runner):
        assert toy_runner.ipc_single(TOY_INSTRUCTIONS["ADDSS"]) == pytest.approx(2.0)
        assert toy_runner.ipc_single(TOY_INSTRUCTIONS["BSR"]) == pytest.approx(1.0)

    def test_pair_kernel_uses_measured_ipcs(self, toy_runner):
        kernel = toy_runner.pair_kernel(TOY_INSTRUCTIONS["ADDSS"], TOY_INSTRUCTIONS["BSR"])
        assert kernel.multiplicity(TOY_INSTRUCTIONS["ADDSS"]) == pytest.approx(2.0)
        assert kernel.multiplicity(TOY_INSTRUCTIONS["BSR"]) == pytest.approx(1.0)

    def test_pair_kernel_rejects_same_instruction(self, toy_runner):
        with pytest.raises(ValueError):
            toy_runner.pair_kernel(TOY_INSTRUCTIONS["ADDSS"], TOY_INSTRUCTIONS["ADDSS"])

    def test_repeated_pair_kernel_shape(self, toy_runner):
        kernel = toy_runner.repeated_pair_kernel(
            TOY_INSTRUCTIONS["ADDSS"], TOY_INSTRUCTIONS["BSR"]
        )
        assert kernel.multiplicity(TOY_INSTRUCTIONS["ADDSS"]) == 4.0
        assert kernel.multiplicity(TOY_INSTRUCTIONS["BSR"]) == 1.0

    def test_saturating_benchmark_scales_kernel(self, toy_runner):
        saturating = Microkernel.single(TOY_INSTRUCTIONS["BSR"])
        kernel = toy_runner.saturating_benchmark(TOY_INSTRUCTIONS["ADDSS"], saturating)
        assert kernel.multiplicity(TOY_INSTRUCTIONS["BSR"]) == 4.0
        assert kernel.multiplicity(TOY_INSTRUCTIONS["ADDSS"]) == pytest.approx(2.0)

    def test_cycles_from_ipc(self, toy_runner, addss_bsr_kernels):
        kernel, _ = addss_bsr_kernels
        assert toy_runner.cycles(kernel) == pytest.approx(1.5)


class TestClustering:
    def test_relative_distance_basic(self):
        assert relative_distance(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0
        assert relative_distance(np.array([1.0]), np.array([2.0])) == pytest.approx(0.5)

    def test_relative_distance_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_distance(np.array([1.0]), np.array([1.0, 2.0]))

    def test_identical_vectors_cluster_together(self):
        vectors = {"a": np.array([1.0, 2.0]), "b": np.array([1.0, 2.0]),
                   "c": np.array([5.0, 5.0])}
        clusters = hierarchical_clusters(vectors, tolerance=0.01)
        as_sets = [set(members) for members in clusters]
        assert {"a", "b"} in as_sets
        assert {"c"} in as_sets

    def test_tolerance_controls_merging(self):
        vectors = {"a": np.array([1.0]), "b": np.array([1.04]), "c": np.array([2.0])}
        tight = hierarchical_clusters(vectors, tolerance=0.01)
        loose = hierarchical_clusters(vectors, tolerance=0.10)
        assert len(tight) == 3
        assert len(loose) == 2

    def test_empty_and_singleton(self):
        assert hierarchical_clusters({}, 0.1) == []
        assert hierarchical_clusters({"a": np.array([1.0])}, 0.1) == [["a"]]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            hierarchical_clusters({"a": np.array([1.0]), "b": np.array([2.0])}, -1.0)

    def test_representatives_pick_highest_score(self):
        clusters = [["a", "b"], ["c"]]
        reps = cluster_representatives(clusters, {"a": 1.0, "b": 2.0, "c": 0.5})
        assert set(reps) == {"b", "c"}
        assert reps["b"] == ["a", "b"]


class TestQuadraticBenchmarks:
    def test_pair_ipc_symmetry(self, toy_quadratic):
        a = TOY_INSTRUCTIONS["ADDSS"]
        b = TOY_INSTRUCTIONS["BSR"]
        assert toy_quadratic.pair_ipc(a, b) == toy_quadratic.pair_ipc(b, a)

    def test_pair_ipc_matches_paper(self, toy_quadratic):
        a = TOY_INSTRUCTIONS["ADDSS"]
        b = TOY_INSTRUCTIONS["BSR"]
        # ADDSS^2 BSR^1 has IPC 2 (Fig. 2a).
        assert toy_quadratic.pair_ipc(a, b) == pytest.approx(2.0)

    def test_disjointness(self, toy_quadratic):
        bsr = TOY_INSTRUCTIONS["BSR"]
        jmp = TOY_INSTRUCTIONS["JMP"]
        addss = TOY_INSTRUCTIONS["ADDSS"]
        assert toy_quadratic.are_disjoint(bsr, jmp, epsilon=0.05)
        assert not toy_quadratic.are_disjoint(addss, bsr, epsilon=0.05)
        assert not toy_quadratic.are_disjoint(bsr, bsr, epsilon=0.05)

    def test_behaviour_vector_length(self, toy_quadratic):
        vector = toy_quadratic.behaviour_vector(TOY_INSTRUCTIONS["ADDSS"])
        assert vector.shape == (len(toy_quadratic.instructions) + 1,)

    def test_matrix_diagonal_is_single_ipc(self, toy_quadratic):
        order, matrix = toy_quadratic.as_matrix()
        for index, instruction in enumerate(order):
            assert matrix[index, index] == pytest.approx(
                toy_quadratic.single_ipc(instruction)
            )

    def test_greediness_ordering(self, toy_quadratic):
        # ADDSS (2 ports) keeps pairs faster than BSR (1 port): it is greedier.
        assert toy_quadratic.greediness_score(
            TOY_INSTRUCTIONS["ADDSS"]
        ) > toy_quadratic.greediness_score(TOY_INSTRUCTIONS["BSR"])

    def test_num_pairs(self, toy_quadratic):
        n = len(toy_quadratic.instructions)
        assert toy_quadratic.num_pairs == n * (n - 1) // 2


class TestBasicSelection:
    def test_toy_selection_covers_all_classes(self, toy_quadratic):
        config = PalmedConfig()
        selection = select_basic_instructions(toy_quadratic, config)
        # The six toy instructions all behave differently.
        assert selection.num_classes == 6
        assert len(selection.basic) == 6
        assert not selection.low_ipc

    def test_explicit_n_basic_is_respected(self, toy_quadratic):
        config = PalmedConfig(n_basic=4)
        selection = select_basic_instructions(toy_quadratic, config)
        assert len(selection.basic) == 4

    def test_very_basic_is_a_disjoint_clique(self, toy_quadratic):
        selection = select_basic_instructions(toy_quadratic, PalmedConfig())
        for i, a in enumerate(selection.very_basic):
            for b in selection.very_basic[i + 1 :]:
                assert toy_quadratic.are_disjoint(a, b, 0.05)

    def test_non_disjoint_partners(self, toy_quadratic):
        selection = select_basic_instructions(toy_quadratic, PalmedConfig())
        addss = TOY_INSTRUCTIONS["ADDSS"]
        bsr = TOY_INSTRUCTIONS["BSR"]
        if addss in selection.representatives and bsr in selection.representatives:
            assert bsr in selection.non_disjoint_partners(addss)

    def test_class_of_unknown_instruction_raises(self, toy_quadratic):
        selection = select_basic_instructions(toy_quadratic, PalmedConfig())
        stranger = Instruction("STRANGER", InstructionKind.INT_ALU, Extension.BASE, 64)
        with pytest.raises(KeyError):
            selection.class_of(stranger)


class TestLp1AndLp2:
    @pytest.fixture(scope="class")
    def toy_core(self):
        machine = build_toy_machine()
        runner = BenchmarkRunner(PortModelBackend(machine), PalmedConfig())
        quadratic = QuadraticBenchmarks(runner, machine.benchmarkable_instructions())
        selection = select_basic_instructions(quadratic, PalmedConfig())
        core = compute_core_mapping(runner, selection, PalmedConfig())
        return machine, runner, selection, core

    def test_saturating_instruction_detection(self, toy_runner):
        bsr = TOY_INSTRUCTIONS["BSR"]
        addss = TOY_INSTRUCTIONS["ADDSS"]
        kernel = Microkernel({addss: 1, bsr: 2})
        observation = KernelObservation(kernel=kernel, ipc=toy_runner.ipc(kernel))
        single_ipc = {bsr: 1.0, addss: 2.0}
        saturating = saturating_instructions(observation, single_ipc, epsilon=0.05)
        assert bsr in saturating
        assert addss not in saturating

    def test_shape_has_enough_resources(self, toy_core):
        _, _, selection, core = toy_core
        # The toy machine needs at least the three port-like resources.
        assert core.num_resources >= 3
        for instruction in selection.basic:
            assert core.shape.edges[instruction], instruction.name

    def test_core_mapping_reproduces_basic_ipcs(self, toy_core):
        machine, runner, selection, core = toy_core
        mapping = core.mapping()
        for instruction in selection.basic:
            kernel = Microkernel.single(instruction, 4)
            predicted = mapping.ipc(kernel)
            native = runner.ipc(kernel)
            assert predicted == pytest.approx(native, rel=0.15), instruction.name

    def test_saturating_kernels_exist_for_every_resource(self, toy_core):
        _, _, _, core = toy_core
        assert set(core.saturating_kernels) == set(range(core.num_resources))

    def test_resource_label(self):
        assert resource_label(3) == "R3"

    def test_weight_problem_rejects_overlapping_free_and_frozen(self, toy_runner):
        addss = TOY_INSTRUCTIONS["ADDSS"]
        observation = KernelObservation(
            kernel=Microkernel.single(addss), ipc=toy_runner.ipc(Microkernel.single(addss))
        )
        with pytest.raises(ValueError):
            WeightProblem(
                observations=[observation],
                num_resources=2,
                free_edges={addss: {0}},
                frozen_rho={addss: {0: 1.0}},
            )

    def test_exact_and_heuristic_agree_on_tiny_problem(self, toy_runner):
        addss = TOY_INSTRUCTIONS["ADDSS"]
        bsr = TOY_INSTRUCTIONS["BSR"]
        observations = []
        for kernel in (
            Microkernel.single(addss),
            Microkernel.single(bsr),
            Microkernel({addss: 2, bsr: 1}),
            Microkernel({addss: 1, bsr: 2}),
        ):
            observations.append(
                KernelObservation(kernel=kernel, ipc=toy_runner.ipc(kernel))
            )
        problem = WeightProblem(
            observations=observations,
            num_resources=2,
            free_edges={addss: {0, 1}, bsr: {0, 1}},
            frozen_rho={},
        )
        config = PalmedConfig()
        exact = solve_weights_exact(problem, config)
        heuristic = solve_weights_heuristic(problem, config)
        assert exact.total_error <= heuristic.total_error + 1e-6
        assert exact.total_error == pytest.approx(0.0, abs=0.05)

    def test_kernel_resource_usage_evaluation(self, toy_runner):
        addss = TOY_INSTRUCTIONS["ADDSS"]
        kernel = Microkernel.single(addss, 2)
        observation = KernelObservation(kernel=kernel, ipc=toy_runner.ipc(kernel))
        usage = kernel_resource_usage(observation, 0, {addss: {0: 0.5}}, {})
        assert usage == pytest.approx(1.0)
