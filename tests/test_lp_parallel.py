"""Differential tests for the parallel LPAUX solving path.

Mirror of ``tests/test_measure_parallel.py`` for the solver side: *how* the
per-instruction complete-mapping problems are executed — in-process loop,
chunked over worker processes, solved through cached templates — must never
change a single bit of the inferred usages, and therefore never change a
``PalmedResult``.  Every comparison below uses ``==`` on floats (bitwise
equality), not tolerances.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import PortModelBackend, build_skylake_like_machine, build_small_isa
from repro.palmed import Palmed, PalmedConfig
from repro.palmed.basic_selection import select_basic_instructions
from repro.palmed.benchmarks import BenchmarkRunner
from repro.palmed.complete_mapping import run_complete_mapping
from repro.palmed.core_mapping import compute_core_mapping
from repro.palmed.quadratic import QuadraticBenchmarks
from repro.runtime import ParallelRuntime

LP_WORKER_COUNTS = (0, 1, 2, 4)


@pytest.fixture(scope="module")
def lpaux_setup():
    """A machine with enough non-basic instructions to exercise LPAUX."""
    isa = build_small_isa(18, seed=0)
    machine = build_skylake_like_machine(isa=isa)
    config = PalmedConfig(
        n_basic_cap=6,
        max_resources=8,
        lp1_max_iterations=1,
        lp1_time_limit=15.0,
        lp2_mode="exact",
        milp_time_limit=30.0,
    )
    runner = BenchmarkRunner(PortModelBackend(machine), config)
    instructions = machine.benchmarkable_instructions()
    quadratic = QuadraticBenchmarks(runner, instructions)
    selection = select_basic_instructions(quadratic, config)
    core = compute_core_mapping(runner, selection, config)
    return machine, config, runner, instructions, core


@pytest.fixture(scope="module")
def serial_outcome(lpaux_setup):
    _, config, runner, instructions, core = lpaux_setup
    return run_complete_mapping(runner, instructions, core, config)


class TestCompleteMappingDifferential:
    def test_lpaux_maps_instructions(self, serial_outcome):
        # Sanity: the fixture actually exercises the phase under test.
        assert len(serial_outcome.mapped) > 0
        assert serial_outcome.solver_stats.solves >= len(serial_outcome.mapped)

    @pytest.mark.parametrize("workers", LP_WORKER_COUNTS)
    def test_all_worker_counts_bitwise_identical(self, lpaux_setup, serial_outcome, workers):
        _, config, runner, instructions, core = lpaux_setup
        outcome = run_complete_mapping(
            runner,
            instructions,
            core,
            config,
            runtime=ParallelRuntime(workers=workers),
        )
        assert outcome.mapped == serial_outcome.mapped

    @pytest.mark.parametrize("chunk_size", [1, 3, 1000])
    def test_chunk_size_does_not_matter(self, lpaux_setup, serial_outcome, chunk_size):
        _, config, runner, instructions, core = lpaux_setup
        outcome = run_complete_mapping(
            runner,
            instructions,
            core,
            config,
            runtime=ParallelRuntime(workers=2, chunk_size=chunk_size),
        )
        assert outcome.mapped == serial_outcome.mapped

    def test_template_reuse_reported(self, serial_outcome):
        # The in-process path shares one WeightModelCache across all
        # instructions: structure is compiled (far) fewer times than solved.
        stats = serial_outcome.solver_stats
        assert stats.solves > 0
        assert stats.model_builds < stats.solves

    def test_measurement_vs_solve_split(self, lpaux_setup, serial_outcome):
        # All LPAUX benchmarks were prefetched by the fixture's first run,
        # so a repeat is solve-dominated; both halves must be non-negative
        # and the sum bounded by a fresh wall clock measurement elsewhere.
        assert serial_outcome.measurement_time >= 0.0
        assert serial_outcome.solve_time > 0.0


class TestWarmStartDifferential:
    """Cold vs warm solves: identical mapping, identical request counters."""

    def test_cold_and_warm_runs_bitwise_identical(self, lpaux_setup):
        _, config, runner, instructions, core = lpaux_setup
        cold = run_complete_mapping(
            runner,
            instructions,
            core,
            dataclasses.replace(config, lp_warm_start=False),
        )
        warm = run_complete_mapping(
            runner,
            instructions,
            core,
            dataclasses.replace(config, lp_warm_start=True),
        )
        assert warm.mapped == cold.mapped
        # ``solves`` counts requests (a memo hit counts too) and the chunk
        # layout is identical, so every deterministic counter matches.
        assert warm.solver_stats.solves == cold.solver_stats.solves
        assert warm.solver_stats.model_builds == cold.solver_stats.model_builds
        assert warm.solver_stats.rebinds == cold.solver_stats.rebinds
        assert warm.solver_stats.lp_chunks == cold.solver_stats.lp_chunks
        # The attribution differs: only the warm run skipped backend work.
        assert cold.solver_stats.warm_start_hits == 0
        assert warm.solver_stats.warm_start_hits > 0
        assert warm.solver_stats.backend_solves < cold.solver_stats.backend_solves


class TestChunkedExecutionDifferential:
    """The chunk layout is planned, not scheduled: counters are exact."""

    def test_serial_run_is_one_chunk(self, serial_outcome):
        assert serial_outcome.solver_stats.lp_chunks == 1
        # lp_parallelism=0 means "in-process": no worker lanes requested.
        assert serial_outcome.solver_stats.lp_workers_requested == 0
        assert serial_outcome.solver_stats.lp_workers_effective == 0

    @pytest.mark.parametrize("chunk_size", [1, 3, 1000])
    def test_solve_requests_invariant_across_layouts(
        self, lpaux_setup, serial_outcome, chunk_size
    ):
        _, config, runner, instructions, core = lpaux_setup
        chunked = run_complete_mapping(
            runner,
            instructions,
            core,
            dataclasses.replace(config, lp_parallelism=2, lp_chunk_size=chunk_size),
        )
        assert chunked.mapped == serial_outcome.mapped
        assert chunked.solver_stats.solves == serial_outcome.solver_stats.solves

    def test_real_lanes_and_emulation_agree_exactly(self, lpaux_setup):
        _, config, runner, instructions, core = lpaux_setup
        # An explicit runtime runs real lane processes even on a one-core
        # host (explicit demand skips the host-sizing degradation) ...
        real = run_complete_mapping(
            runner,
            instructions,
            core,
            config,
            runtime=ParallelRuntime(workers=4, chunk_size=2),
        )
        # ... while the config path may degrade to the in-process
        # emulation of the *same* requested layout.  Both paths must agree
        # on the mapping and on every deterministic counter.
        emulated = run_complete_mapping(
            runner,
            instructions,
            core,
            dataclasses.replace(config, lp_parallelism=4, lp_chunk_size=2),
        )
        assert real.mapped == emulated.mapped
        for name in ("model_builds", "solves", "warm_start_hits", "rebinds", "lp_chunks"):
            assert getattr(real.solver_stats, name) == getattr(
                emulated.solver_stats, name
            ), name
        assert real.solver_stats.lp_chunks > 1
        assert real.solver_stats.lp_workers_requested == 4
        assert emulated.solver_stats.lp_workers_requested == 4

    def test_chunked_counters_repeatable(self, lpaux_setup):
        _, config, runner, instructions, core = lpaux_setup
        chunked_config = dataclasses.replace(config, lp_parallelism=3, lp_chunk_size=2)
        first = run_complete_mapping(runner, instructions, core, chunked_config)
        second = run_complete_mapping(runner, instructions, core, chunked_config)
        assert first.mapped == second.mapped
        for name in ("model_builds", "solves", "warm_start_hits", "rebinds", "lp_chunks"):
            assert getattr(first.solver_stats, name) == getattr(
                second.solver_stats, name
            ), name


class TestPipelineDifferential:
    """The acceptance check: lp_parallelism never changes a PalmedResult."""

    @pytest.fixture(scope="class")
    def setup(self):
        isa = build_small_isa(18, seed=0)
        machine = build_skylake_like_machine(isa=isa)
        config = PalmedConfig(
            n_basic_cap=6,
            max_resources=8,
            lp1_max_iterations=1,
            lp1_time_limit=15.0,
            lp2_mode="exact",
            milp_time_limit=30.0,
        )
        return machine, config

    @pytest.fixture(scope="class")
    def sequential_result(self, setup):
        machine, config = setup
        backend = PortModelBackend(machine)
        return Palmed(backend, machine.benchmarkable_instructions(), config).run()

    @pytest.mark.parametrize("workers", [2])
    def test_parallel_lpaux_matches_sequential(self, setup, sequential_result, workers):
        machine, config = setup
        parallel_config = dataclasses.replace(config, lp_parallelism=workers)
        parallel = Palmed(
            PortModelBackend(machine),
            machine.benchmarkable_instructions(),
            parallel_config,
        ).run()
        assert parallel.mapping.to_dict() == sequential_result.mapping.to_dict()
        assert parallel.stats.num_instructions_mapped == (
            sequential_result.stats.num_instructions_mapped
        )
        # Identical predictions on concrete kernels, not just equal tables.
        from repro import Microkernel

        for instruction in machine.benchmarkable_instructions()[:8]:
            kernel = Microkernel.single(instruction, 3)
            if parallel.supports(instruction):
                assert parallel.predict_ipc(kernel) == sequential_result.predict_ipc(kernel)

    def test_stage_time_split_accounts_lpaux_measurements(self, sequential_result):
        stats = sequential_result.stats
        # The Table II split: both halves populated, solver stats surfaced.
        assert stats.benchmarking_time > 0.0
        assert stats.lp_time > 0.0
        assert stats.lp_solves > 0
        assert stats.lp_model_builds > 0
        assert stats.lp_solve_time > 0.0
        # Batched-engine attribution: warm starts are on by default, LPAUX
        # ran as at least one chunk, rebinds drive the template reuse.
        assert stats.lp_warm_start_hits > 0
        assert stats.lp_chunks >= 1
        assert stats.lp_rebinds > 0
        rows = dict(stats.as_table_rows())
        assert rows["  LP solves"] == str(stats.lp_solves)
        assert rows["  LP model builds"] == str(stats.lp_model_builds)
        assert rows["  LP warm-start hits"] == str(stats.lp_warm_start_hits)
        assert rows["  LP rebinds / chunks"] == (
            f"{stats.lp_rebinds} / {stats.lp_chunks}"
        )
