"""End-to-end tests of the PALMED pipeline on small machines."""

from __future__ import annotations

import pytest

from repro import (
    Microkernel,
    PortModelBackend,
    build_skylake_like_machine,
    build_small_isa,
    build_toy_machine,
)
from repro.palmed import Palmed, PalmedConfig, PalmedResult
from repro.machines.toy import TOY_INSTRUCTIONS


@pytest.fixture(scope="module")
def toy_result() -> PalmedResult:
    machine = build_toy_machine()
    backend = PortModelBackend(machine)
    palmed = Palmed(backend, machine.benchmarkable_instructions(), PalmedConfig())
    return palmed.run()


class TestToyPipeline:
    def test_all_instructions_mapped(self, toy_result):
        assert toy_result.stats.num_instructions_mapped == 6
        for instruction in TOY_INSTRUCTIONS.values():
            assert toy_result.supports(instruction)

    def test_resources_found_matches_paper_example(self, toy_result):
        # Fig. 1b uses six abstract resources; the minimal mapping the solver
        # finds for the measured behaviours needs at least the three ports.
        assert 3 <= toy_result.stats.num_resources <= 6

    def test_predicts_paper_kernels_exactly(self, toy_result, addss_bsr_kernels):
        k1, k2 = addss_bsr_kernels
        assert toy_result.predict_ipc(k1) == pytest.approx(2.0, rel=0.02)
        assert toy_result.predict_ipc(k2) == pytest.approx(1.5, rel=0.02)

    def test_predicts_single_instruction_throughputs(self, toy_result):
        machine = build_toy_machine()
        for name, instruction in TOY_INSTRUCTIONS.items():
            if not instruction.is_benchmarkable:
                continue
            kernel = Microkernel.single(instruction, 4)
            native = machine.true_ipc(kernel)
            assert toy_result.predict_ipc(kernel) == pytest.approx(native, rel=0.1), name

    def test_stats_are_populated(self, toy_result):
        stats = toy_result.stats
        assert stats.num_benchmarks > 0
        assert stats.total_time > 0
        assert stats.machine_name == "toy-skl-p016"
        table = stats.format_table()
        assert "Resources found" in table
        assert str(stats.num_resources) in table

    def test_saturating_kernels_reported(self, toy_result):
        assert len(toy_result.saturating_kernels) == toy_result.stats.num_resources

    def test_explain_mentions_bottleneck(self, toy_result, addss_bsr_kernels):
        _, k2 = addss_bsr_kernels
        text = toy_result.explain(k2)
        assert "bottleneck" in text
        assert "predicted IPC" in text

    def test_bottleneck_reported(self, toy_result, addss_bsr_kernels):
        _, k2 = addss_bsr_kernels
        assert len(toy_result.bottleneck(k2)) >= 1

    def test_partial_prediction_matches_full_when_supported(self, toy_result, addss_bsr_kernels):
        k1, _ = addss_bsr_kernels
        assert toy_result.predict_ipc_partial(k1) == pytest.approx(
            toy_result.predict_ipc(k1)
        )

    def test_supported_fraction(self, toy_result, addss_bsr_kernels):
        k1, _ = addss_bsr_kernels
        assert toy_result.supported_fraction(k1) == pytest.approx(1.0)

    def test_mapping_serializes(self, toy_result):
        from repro.mapping import ConjunctiveResourceMapping

        payload = toy_result.mapping.to_json()
        recovered = ConjunctiveResourceMapping.from_json(payload)
        assert set(recovered.resources) == set(toy_result.mapping.resources)


class TestSmallMachinePipeline:
    """A tiny SKL-like machine keeps the full pipeline under a minute."""

    @pytest.fixture(scope="class")
    def tiny_result(self):
        isa = build_small_isa(20, seed=1)
        machine = build_skylake_like_machine(isa=isa)
        backend = PortModelBackend(machine)
        config = PalmedConfig().for_fast_tests()
        palmed = Palmed(backend, machine.benchmarkable_instructions(), config)
        return machine, palmed.run()

    def test_majority_of_instructions_mapped(self, tiny_result):
        machine, result = tiny_result
        benchmarkable = machine.benchmarkable_instructions()
        assert result.stats.num_instructions_mapped >= 0.6 * len(benchmarkable)

    def test_single_instruction_predictions_reasonable(self, tiny_result):
        machine, result = tiny_result
        checked = 0
        for instruction in machine.benchmarkable_instructions():
            if not result.supports(instruction):
                continue
            kernel = Microkernel.single(instruction, 2)
            native = machine.true_ipc(kernel)
            predicted = result.predict_ipc(kernel)
            # The fast-test configuration under-spans the true resources (no
            # divider-port resource in particular), so individual predictions
            # may be off by up to ~2x — the same regime as the paper's larger
            # Zen1 errors — but never by orders of magnitude.
            assert 0.35 <= predicted / native <= 2.8, instruction.name
            checked += 1
        assert checked >= 10

    def test_low_ipc_instructions_counted(self, tiny_result):
        _, result = tiny_result
        assert result.stats.num_low_ipc >= 0

    def test_benchmark_count_far_below_exhaustive(self, tiny_result):
        machine, result = tiny_result
        n = len(machine.benchmarkable_instructions())
        # The paper's point: the number of benchmarks stays polynomial (and
        # small) rather than combinatorial in the number of instructions.
        assert result.stats.num_benchmarks < 20 * n * n
