"""Tests for the measurement substrate (backends, noise, cycle simulator)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    GreedyCycleSimulator,
    LpReferenceBackend,
    MeasurementBackend,
    MeasurementNoise,
    Microkernel,
    PortModelBackend,
)
from repro.machines.toy import TOY_INSTRUCTIONS


class TestPortModelBackend:
    def test_implements_protocol(self, toy_backend):
        assert isinstance(toy_backend, MeasurementBackend)

    def test_matches_lp_reference(self, small_skl_machine):
        import random

        fast = PortModelBackend(small_skl_machine)
        reference = LpReferenceBackend(small_skl_machine)
        rng = random.Random(3)
        instructions = small_skl_machine.benchmarkable_instructions()
        for _ in range(20):
            kernel = Microkernel(
                {rng.choice(instructions): rng.randint(1, 3) for _ in range(3)}
            )
            assert fast.ipc(kernel) == pytest.approx(reference.ipc(kernel), rel=1e-6)

    def test_front_end_limits_ipc(self, small_skl_machine):
        backend = PortModelBackend(small_skl_machine)
        instructions = small_skl_machine.benchmarkable_instructions()
        big_kernel = Microkernel({inst: 2 for inst in instructions[:10]})
        assert backend.ipc(big_kernel) <= small_skl_machine.front_end_width + 1e-9

    def test_without_front_end_can_exceed_width(self, small_skl_machine):
        from repro.isa import InstructionKind

        alu = [
            inst for inst in small_skl_machine.instructions
            if inst.kind is InstructionKind.INT_ALU and inst.variant == 0
        ][:4]
        load = [
            inst for inst in small_skl_machine.instructions
            if inst.kind is InstructionKind.LOAD
        ][:2]
        kernel = Microkernel({**{i: 1 for i in alu}, **{i: 1 for i in load}})
        with_fe = PortModelBackend(small_skl_machine, include_front_end=True)
        without_fe = PortModelBackend(small_skl_machine, include_front_end=False)
        assert with_fe.ipc(kernel) <= 4.0 + 1e-9
        assert without_fe.ipc(kernel) > with_fe.ipc(kernel)

    def test_measurement_counter_counts_distinct_kernels(self, toy_machine):
        backend = PortModelBackend(toy_machine)
        addss = TOY_INSTRUCTIONS["ADDSS"]
        bsr = TOY_INSTRUCTIONS["BSR"]
        backend.ipc(Microkernel.single(addss))
        backend.ipc(Microkernel.single(addss))
        backend.ipc(Microkernel({addss: 1, bsr: 1}))
        assert backend.measurement_count == 2
        backend.reset_counter()
        assert backend.measurement_count == 0

    def test_cycles_and_ipc_consistent(self, toy_backend, addss_bsr_kernels):
        kernel, _ = addss_bsr_kernels
        assert toy_backend.ipc(kernel) == pytest.approx(
            kernel.size / toy_backend.cycles(kernel)
        )


class TestNoise:
    def test_noiseless_by_default(self):
        noise = MeasurementNoise()
        assert noise.is_noiseless

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MeasurementNoise(relative_stddev=-0.1)
        with pytest.raises(ValueError):
            MeasurementNoise(quantization=-1.0)

    def test_deterministic_per_kernel(self, toy_instructions):
        noise = MeasurementNoise(relative_stddev=0.05, seed=7)
        kernel = Microkernel.single(toy_instructions["ADDSS"], 2)
        assert noise.apply(kernel, 10.0) == noise.apply(kernel, 10.0)

    def test_different_kernels_get_different_noise(self, toy_instructions):
        noise = MeasurementNoise(relative_stddev=0.05, seed=7)
        k1 = Microkernel.single(toy_instructions["ADDSS"], 2)
        k2 = Microkernel.single(toy_instructions["BSR"], 2)
        assert noise.apply(k1, 10.0) != noise.apply(k2, 10.0)

    def test_quantization(self, toy_instructions):
        noise = MeasurementNoise(quantization=0.25)
        kernel = Microkernel.single(toy_instructions["ADDSS"])
        assert noise.apply(kernel, 1.13) == pytest.approx(1.25)

    def test_noise_magnitude_bounded(self, toy_instructions):
        noise = MeasurementNoise(relative_stddev=0.02, seed=1)
        kernel = Microkernel.single(toy_instructions["BSR"], 3)
        value = noise.apply(kernel, 100.0)
        assert 90.0 < value < 110.0

    @settings(max_examples=30, deadline=None)
    @given(cycles=st.floats(min_value=0.01, max_value=1e6))
    def test_noisy_measurement_stays_positive(self, cycles, toy_instructions):
        noise = MeasurementNoise(relative_stddev=0.1, quantization=0.01, seed=5)
        kernel = Microkernel.single(toy_instructions["ADDSS"])
        assert noise.apply(kernel, cycles) > 0

    def test_backend_with_noise_is_reproducible(self, toy_machine, addss_bsr_kernels):
        kernel, _ = addss_bsr_kernels
        backend_a = PortModelBackend(toy_machine, noise=MeasurementNoise(0.03, seed=2))
        backend_b = PortModelBackend(toy_machine, noise=MeasurementNoise(0.03, seed=2))
        assert backend_a.ipc(kernel) == backend_b.ipc(kernel)
        exact = PortModelBackend(toy_machine)
        assert backend_a.ipc(kernel) == pytest.approx(exact.ipc(kernel), rel=0.15)


class TestGreedyCycleSimulator:
    def test_never_faster_than_steady_state(self, toy_machine, addss_bsr_kernels):
        simulator = GreedyCycleSimulator(toy_machine, iterations=128)
        backend = PortModelBackend(toy_machine)
        for kernel in addss_bsr_kernels:
            assert simulator.ipc(kernel) <= backend.ipc(kernel) + 1e-9

    def test_converges_to_steady_state_on_toy(self, toy_machine, addss_bsr_kernels):
        simulator = GreedyCycleSimulator(toy_machine, iterations=512)
        backend = PortModelBackend(toy_machine)
        kernel, _ = addss_bsr_kernels
        assert simulator.ipc(kernel) == pytest.approx(backend.ipc(kernel), rel=0.05)

    def test_front_end_respected(self, small_skl_machine):
        from repro.isa import InstructionKind

        alu = [
            inst for inst in small_skl_machine.instructions
            if inst.kind is InstructionKind.INT_ALU
        ][:4]
        kernel = Microkernel({inst: 1 for inst in alu})
        simulator = GreedyCycleSimulator(small_skl_machine, iterations=64)
        assert simulator.ipc(kernel) <= small_skl_machine.front_end_width + 1e-9

    def test_port_utilization_reported(self, toy_machine, toy_instructions):
        simulator = GreedyCycleSimulator(toy_machine, iterations=32)
        trace = simulator.simulate(Microkernel.single(toy_instructions["BSR"], 2))
        utilization = trace.port_utilization()
        assert utilization["p1"] > 0.9
        assert utilization["p6"] == pytest.approx(0.0)

    def test_invalid_iterations(self, toy_machine):
        with pytest.raises(ValueError):
            GreedyCycleSimulator(toy_machine, iterations=0)

    def test_fractional_counts_are_scaled(self, toy_machine, toy_instructions):
        simulator = GreedyCycleSimulator(toy_machine, iterations=16)
        kernel = Microkernel({toy_instructions["ADDSS"]: 0.5, toy_instructions["BSR"]: 1.0})
        trace = simulator.simulate(kernel)
        assert trace.instructions_executed > 0
