"""Tests for the ground-truth machine models."""

from __future__ import annotations

import pytest

from repro import Microkernel
from repro.isa import Extension, InstructionKind, build_small_isa
from repro.machines import (
    available_machines,
    build_machine,
    build_skylake_like_machine,
    build_toy_machine,
    build_zen_like_machine,
)
from repro.machines.machine import FRONT_END_RESOURCE, Machine
from repro.machines.toy import TOY_INSTRUCTIONS, toy_instruction, toy_instruction_pair


class TestToyMachine:
    def test_instruction_set(self, toy_machine):
        assert len(toy_machine.instructions) == 6
        assert toy_machine.ports == ("p0", "p1", "p6")

    def test_single_instruction_ipcs_match_fig1(self, toy_machine):
        expected = {
            "DIVPS": 1.0,   # p0 only
            "VCVTT": 1.0,   # two µOPs on p0/p1
            "ADDSS": 2.0,   # p0 or p1
            "BSR": 1.0,     # p1 only
            "JNLE": 2.0,    # p0 or p6
            "JMP": 1.0,     # p6 only
        }
        for name, ipc in expected.items():
            kernel = Microkernel.single(TOY_INSTRUCTIONS[name], 4)
            assert toy_machine.true_ipc(kernel) == pytest.approx(ipc), name

    def test_paper_multiset_throughputs(self, toy_machine, addss_bsr_kernels):
        k1, k2 = addss_bsr_kernels
        assert toy_machine.true_ipc(k1) == pytest.approx(2.0)
        assert toy_machine.true_ipc(k2) == pytest.approx(1.5)

    def test_toy_lookup_helpers(self):
        assert toy_instruction("ADDSS").name == "ADDSS"
        addss, bsr = toy_instruction_pair()
        assert addss.name == "ADDSS" and bsr.name == "BSR"

    def test_summary_mentions_ports(self, toy_machine):
        summary = toy_machine.summary()
        assert "p0" in summary and "front-end" in summary


class TestSkylakeLike:
    def test_structure(self, small_skl_machine):
        assert small_skl_machine.front_end_width == 4.0
        assert len(small_skl_machine.ports) == 8
        assert len(small_skl_machine.instructions) == 48

    def test_alu_instructions_reach_front_end_limit(self, small_skl_machine):
        alu = [
            inst for inst in small_skl_machine.instructions
            if inst.kind is InstructionKind.INT_ALU and inst.variant == 0
        ]
        kernel = Microkernel({inst: 2 for inst in alu[:4]})
        assert small_skl_machine.true_ipc(kernel) == pytest.approx(4.0)

    def test_divider_is_not_pipelined(self, small_skl_machine):
        divs = [
            inst for inst in small_skl_machine.instructions
            if inst.kind is InstructionKind.FP_DIV and inst.width == 128
        ]
        assert divs, "the small ISA should contain an SSE divide"
        ipc = small_skl_machine.true_ipc(Microkernel.single(divs[0], 2))
        assert ipc == pytest.approx(0.25)

    def test_store_has_two_uops(self, small_skl_machine):
        stores = [
            inst for inst in small_skl_machine.instructions
            if inst.kind is InstructionKind.STORE
        ]
        assert all(small_skl_machine.port_mapping.num_uops(inst) == 2 for inst in stores)

    def test_front_end_resource_in_dual(self, small_skl_machine):
        dual = small_skl_machine.true_conjunctive(include_front_end=True)
        assert FRONT_END_RESOURCE in dual.resources
        port_only = small_skl_machine.true_conjunctive(include_front_end=False)
        assert FRONT_END_RESOURCE not in port_only.resources

    def test_dual_is_cached(self, small_skl_machine):
        first = small_skl_machine.true_conjunctive()
        second = small_skl_machine.true_conjunctive()
        assert first is second

    def test_restricted_machine(self, small_skl_machine):
        subset = small_skl_machine.benchmarkable_instructions()[:5]
        restricted = small_skl_machine.restricted(subset)
        assert len(restricted.instructions) == 5
        assert restricted.front_end_width == small_skl_machine.front_end_width


class TestZenLike:
    def test_structure(self, small_zen_machine):
        assert small_zen_machine.front_end_width == 5.0
        assert "f0" in small_zen_machine.ports and "i0" in small_zen_machine.ports

    def test_split_pipelines(self, small_zen_machine):
        """Integer and FP instructions never share execution ports on Zen."""
        int_ports = {"i0", "i1", "i2", "i3", "ag0", "ag1"}
        fp_ports = {"f0", "f1", "f2", "f3"}
        for instruction in small_zen_machine.instructions:
            for uop in small_zen_machine.port_mapping.uops(instruction):
                assert not (uop.ports & int_ports and uop.ports & fp_ports)

    def test_int_and_fp_run_in_parallel(self, small_zen_machine):
        alu = next(
            inst for inst in small_zen_machine.instructions
            if inst.kind is InstructionKind.INT_ALU and inst.variant == 0
        )
        fp = next(
            inst for inst in small_zen_machine.instructions
            if inst.kind is InstructionKind.FP_MUL and inst.width == 128
        )
        int_cycles = small_zen_machine.true_cycles(Microkernel.single(alu, 2))
        fp_cycles = small_zen_machine.true_cycles(Microkernel.single(fp, 2))
        combined_kernel = Microkernel({alu: 2, fp: 2})
        combined_cycles = small_zen_machine.true_cycles(combined_kernel)
        front_end_cycles = combined_kernel.size / small_zen_machine.front_end_width
        # The clusters are independent: the combined kernel takes exactly as
        # long as its slowest half (or the front-end), never longer — there
        # are no cross-cluster port conflicts.
        assert combined_cycles == pytest.approx(
            max(int_cycles, fp_cycles, front_end_cycles), rel=1e-6
        )

    def test_avx_double_pumping(self, small_zen_machine, small_skl_machine):
        avx = [
            inst for inst in small_zen_machine.instructions
            if inst.extension is Extension.AVX and inst.kind is InstructionKind.FP_MUL
        ]
        if not avx:
            pytest.skip("small ISA contains no AVX FP multiply")
        zen_ipc = small_zen_machine.true_ipc(Microkernel.single(avx[0], 4))
        skl_ipc = small_skl_machine.true_ipc(Microkernel.single(avx[0], 4))
        assert zen_ipc < skl_ipc


class TestMachineValidation:
    def test_front_end_width_must_be_positive(self, toy_machine):
        with pytest.raises(ValueError):
            Machine(
                name="bad",
                port_mapping=toy_machine.port_mapping,
                front_end_width=0.0,
            )

    def test_registry(self):
        assert "toy" in available_machines()
        assert "skl" in available_machines()
        machine = build_machine("toy")
        assert machine.name == "toy-skl-p016"

    def test_registry_unknown_name(self):
        with pytest.raises(KeyError):
            build_machine("pentium4")

    def test_registry_with_custom_isa(self):
        isa = build_small_isa(30)
        machine = build_machine("zen1", isa=isa)
        assert len(machine.instructions) == 30
