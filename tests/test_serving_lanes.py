"""Regression suite for the concurrency-32 serving fix surface.

Pins down the three legs of the fix differentially:

* :class:`repro.runtime.ProcessWorkerLane` — the shared-memory worker
  process primitive (chunking, per-call error recovery, teardown);
* ``lane_mode="process"`` — bitwise-identical to the thread lane for the
  same corpus and interleavings;
* the negotiated binary framing — bitwise-identical to the JSON line
  protocol for the same blocks, with typed refusals for malformed frames;

plus the admission-control leak regressions: a failed flush, a
short-results process function, or a client that vanishes mid-batch must
all return their kernels to the admission budget, and the TCP frontend
must reap handler threads of abruptly-disconnected clients.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.artifacts import ArtifactRegistry
from repro.measure.fingerprint import machine_fingerprint
from repro.predictors import PalmedPredictor
from repro.runtime import ProcessLaneError, ProcessWorkerLane
from repro.serving import (
    BinaryServingClient,
    InvalidRequestError,
    LineProtocolServer,
    MicroBatcher,
    PredictionService,
    ServiceOverloadedError,
    ServingClient,
    ServingError,
    handle_line,
)

from test_serving import (
    assert_same_prediction,
    bits,
    make_artifact,
    random_kernels,
)


@pytest.fixture(scope="module")
def lanes_registry(tmp_path_factory, toy_machine, small_skl_machine):
    root = tmp_path_factory.mktemp("lanes-registry")
    registry = ArtifactRegistry(root)
    registry.save(make_artifact(toy_machine))
    registry.save(make_artifact(small_skl_machine))
    return root


@pytest.fixture(scope="module")
def lane_reference(toy_machine, small_skl_machine):
    """Scalar per-request reference, one per machine fingerprint."""
    return {
        machine_fingerprint(machine): PalmedPredictor(
            machine.true_conjunctive(include_front_end=True)
        )
        for machine in (toy_machine, small_skl_machine)
    }


# -- worker factories (module-level: importable under a spawn fallback) ------

def _sum_and_scale_worker(context):
    scale = float(context)

    def handler(instruction_ids, counts, lengths, sizes):
        offsets = np.concatenate(([0], np.cumsum(lengths)))[:-1]
        per_group = np.add.reduceat(counts, offsets)
        return per_group, sizes * scale

    return handler


def _fussy_worker(context):
    def handler(instruction_ids, counts, lengths, sizes):
        if (sizes < 0).any():
            raise ValueError("negative size slipped through")
        return sizes.copy(), sizes.copy()

    return handler


def _broken_factory(context):
    raise RuntimeError("this worker never comes up")


class TestProcessWorkerLane:
    def test_call_round_trips_through_shared_memory(self):
        lane = ProcessWorkerLane(_sum_and_scale_worker, 3.0).start()
        try:
            ids = np.array([5, 9, 2, 2, 7], dtype=np.intp)
            counts = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
            lengths = np.array([2, 3], dtype=np.intp)
            sizes = np.array([3.0, 28.0])
            sums, scaled = lane.call(ids, counts, lengths, sizes)
            assert sums.tolist() == [3.0, 28.0]
            assert scaled.tolist() == [9.0, 84.0]
        finally:
            lane.stop()
        assert not lane.running

    def test_chunking_matches_single_shot(self):
        """A call larger than the slab capacity splits at group boundaries."""
        wide = ProcessWorkerLane(_sum_and_scale_worker, 1.0).start()
        narrow = ProcessWorkerLane(
            _sum_and_scale_worker, 1.0, entry_capacity=8, group_capacity=4
        ).start()
        try:
            rng = np.random.default_rng(11)
            lengths = rng.integers(1, 4, size=10)
            total = int(lengths.sum())
            ids = rng.integers(0, 50, size=total).astype(np.intp)
            counts = rng.uniform(0.5, 4.0, size=total)
            sizes = rng.uniform(1.0, 9.0, size=10)
            one_shot = wide.call(ids, counts, lengths.astype(np.intp), sizes)
            chunked = narrow.call(ids, counts, lengths.astype(np.intp), sizes)
            for left, right in zip(one_shot, chunked):
                assert left.tobytes() == right.tobytes()
        finally:
            wide.stop()
            narrow.stop()

    def test_group_exceeding_entry_capacity_is_refused(self):
        lane = ProcessWorkerLane(
            _sum_and_scale_worker, 1.0, entry_capacity=4, group_capacity=4
        ).start()
        try:
            with pytest.raises(ProcessLaneError, match="entry capacity"):
                lane.call(
                    np.arange(6, dtype=np.intp),
                    np.ones(6),
                    np.array([6], dtype=np.intp),
                    np.ones(1),
                )
        finally:
            lane.stop()

    def test_handler_error_propagates_and_lane_survives(self):
        lane = ProcessWorkerLane(_fussy_worker, None).start()
        try:
            good = (
                np.array([1], dtype=np.intp),
                np.array([2.0]),
                np.array([1], dtype=np.intp),
            )
            with pytest.raises(ProcessLaneError, match="negative size"):
                lane.call(*good, np.array([-1.0]))
            # The worker caught the error; the very next call must work.
            sizes, _ = lane.call(*good, np.array([7.0]))
            assert sizes.tolist() == [7.0]
            assert lane.running
        finally:
            lane.stop()

    def test_setup_failure_raises_at_start(self):
        lane = ProcessWorkerLane(_broken_factory, None)
        with pytest.raises(ProcessLaneError, match="never comes up"):
            lane.start()
        assert not lane.running

    def test_stop_is_idempotent(self):
        lane = ProcessWorkerLane(_sum_and_scale_worker, 1.0).start()
        lane.stop()
        lane.stop()
        assert not lane.running


class TestProcessLaneDifferential:
    def test_process_lane_bitwise_equal_thread_lane(
        self, lanes_registry, toy_machine, small_skl_machine, lane_reference
    ):
        """Same corpus, same interleavings, both lane modes, one answer."""
        machines = (toy_machine, small_skl_machine)
        corpus = {
            machine_fingerprint(machine): random_kernels(
                machine.benchmarkable_instructions(), 24, seed=31
            )
            for machine in machines
        }
        outcomes = {}
        for mode in ("thread", "process"):
            service = PredictionService(lanes_registry, lane_mode=mode).start()
            try:
                results = {}
                errors = []

                def client(fingerprint, kernels, worker):
                    try:
                        futures = [
                            service.submit(fingerprint, kernel)
                            for kernel in kernels
                        ]
                        results[(fingerprint, worker)] = [
                            future.result(timeout=30.0) for future in futures
                        ]
                    except Exception as error:  # noqa: BLE001 - reported below
                        errors.append(error)

                threads = [
                    threading.Thread(
                        target=client, args=(fingerprint, kernels, worker)
                    )
                    for fingerprint, kernels in corpus.items()
                    for worker in range(2)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                assert not errors, errors
                if mode == "process":
                    # The fix under test must actually be engaged, not the
                    # thread fallback.
                    assert service.router._process_lanes, (
                        "process lane mode silently degraded to threads"
                    )
                outcomes[mode] = results
            finally:
                service.stop()

        for key, thread_predictions in outcomes["thread"].items():
            process_predictions = outcomes["process"][key]
            fingerprint = key[0]
            reference = lane_reference[fingerprint]
            for kernel, left, right in zip(
                corpus[fingerprint], thread_predictions, process_predictions
            ):
                assert_same_prediction(left, right, context=str(kernel))
                assert_same_prediction(
                    left, reference.predict(kernel), context=str(kernel)
                )

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_overload_then_recover(
        self, lanes_registry, toy_machine, lane_reference, mode
    ):
        """A refused burst must not poison the lane: capacity comes back."""
        service = PredictionService(
            lanes_registry, max_pending=8, lane_mode=mode
        )
        fingerprint = machine_fingerprint(toy_machine)
        kernels = random_kernels(
            toy_machine.benchmarkable_instructions(), 12, seed=5
        )
        try:
            # Not started: submissions queue until the admission bound trips.
            admitted = []
            with pytest.raises(ServiceOverloadedError):
                for kernel in kernels:
                    admitted.append(service.submit(fingerprint, kernel))
            assert len(admitted) == 8
            service.start()
            for future in admitted:
                assert future.result(timeout=30.0).ipc is not None or True
            # Drained: the full budget is available again and answers are
            # still bitwise-correct.
            reference = lane_reference[fingerprint]
            futures = [
                service.submit(fingerprint, kernel) for kernel in kernels[:8]
            ]
            for kernel, future in zip(kernels, futures):
                assert_same_prediction(
                    future.result(timeout=30.0),
                    reference.predict(kernel),
                    context=str(kernel),
                )
        finally:
            service.stop()


def _tcp_server(service):
    server = LineProtocolServer(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


class TestBinaryFraming:
    def test_binary_bitwise_equal_json_and_reference(
        self, lanes_registry, toy_machine, lane_reference
    ):
        service = PredictionService(lanes_registry).start()
        server, _ = _tcp_server(service)
        host, port = server.address
        try:
            kernels = random_kernels(
                toy_machine.benchmarkable_instructions(), 32, seed=17
            )
            blocks = [
                {inst.name: count for inst, count in kernel.items()}
                for kernel in kernels
            ]
            with ServingClient(host, port) as json_client, BinaryServingClient(
                host, port, machine=toy_machine.name
            ) as binary_client:
                json_response = json_client.predict_blocks(
                    blocks, machine=toy_machine.name
                )
                assert json_response["ok"], json_response
                binary_predictions = binary_client.predict_blocks(blocks)
                reference = lane_reference[binary_client.fingerprint]
                for kernel, json_prediction, binary_prediction in zip(
                    kernels, json_response["predictions"], binary_predictions
                ):
                    expected = reference.predict(kernel)
                    assert_same_prediction(
                        binary_prediction, expected, context=str(kernel)
                    )
                    if expected.ipc is None:
                        assert json_prediction["ipc"] is None
                    else:
                        assert bits(json_prediction["ipc"]) == bits(expected.ipc)
        finally:
            server.shutdown()
            server.server_close()
            service.stop()

    def test_unknown_mnemonics_degrade_identically(
        self, lanes_registry, toy_machine
    ):
        """Unknown + duplicate mnemonics fold the same way on both wires."""
        service = PredictionService(lanes_registry).start()
        server, _ = _tcp_server(service)
        host, port = server.address
        known = sorted(
            inst.name
            for inst in toy_machine.benchmarkable_instructions()
        )
        blocks = [
            {"TOTALLY_BOGUS": 2.0, known[0]: 1.5, "ANOTHER_FAKE": 0.5},
            {known[1]: 1.0, known[0]: 2.0},  # out-of-sorted-order keys
            {"ONLY_UNKNOWN": 4.0},
        ]
        try:
            with ServingClient(host, port) as json_client, BinaryServingClient(
                host, port, machine=toy_machine.name
            ) as binary_client:
                json_response = json_client.predict_blocks(
                    blocks, machine=toy_machine.name
                )
                assert json_response["ok"], json_response
                binary_predictions = binary_client.predict_blocks(blocks)
                for json_prediction, binary_prediction in zip(
                    json_response["predictions"], binary_predictions
                ):
                    assert (json_prediction["ipc"] is None) == (
                        binary_prediction.ipc is None
                    )
                    if json_prediction["ipc"] is not None:
                        assert bits(json_prediction["ipc"]) == bits(
                            binary_prediction.ipc
                        )
                    assert bits(json_prediction["supported_fraction"]) == bits(
                        binary_prediction.supported_fraction
                    )
        finally:
            server.shutdown()
            server.server_close()
            service.stop()

    def test_binary_concurrent_clients_bitwise(
        self, lanes_registry, toy_machine, small_skl_machine, lane_reference
    ):
        service = PredictionService(lanes_registry).start()
        server, _ = _tcp_server(service)
        host, port = server.address
        machines = (toy_machine, small_skl_machine)
        try:
            errors = []

            def client(machine, seed):
                try:
                    kernels = random_kernels(
                        machine.benchmarkable_instructions(), 12, seed=seed
                    )
                    with BinaryServingClient(
                        host, port, machine=machine.name
                    ) as link:
                        reference = lane_reference[link.fingerprint]
                        for step, kernel in enumerate(kernels):
                            blocks = [
                                {inst.name: c for inst, c in kernel.items()}
                            ]
                            (prediction,) = link.predict_blocks(
                                blocks, request_id=step
                            )
                            assert_same_prediction(
                                prediction,
                                reference.predict(kernel),
                                context=str(kernel),
                            )
                except Exception as error:  # noqa: BLE001 - reported below
                    errors.append(error)

            threads = [
                threading.Thread(target=client, args=(machine, 40 + index))
                for index, machine in enumerate(machines)
                for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors
        finally:
            server.shutdown()
            server.server_close()
            service.stop()

    def test_malformed_frames_refused_typed_connection_survives(
        self, lanes_registry, toy_machine
    ):
        service = PredictionService(lanes_registry).start()
        server, _ = _tcp_server(service)
        host, port = server.address
        magic = 0x51_4C_41_50
        try:
            with BinaryServingClient(
                host, port, machine=toy_machine.name
            ) as link:
                known = sorted(link._dense)
                good_block = {known[0]: 2.0}

                def raw_frame(kernels, entries, sizes, counts, lengths, ids):
                    payload = (
                        struct.pack("<IIII", magic, 1, kernels, entries)
                        + struct.pack(f"<{len(sizes)}d", *sizes)
                        + struct.pack(f"<{len(counts)}d", *counts)
                        + struct.pack(f"<{len(lengths)}I", *lengths)
                        + struct.pack(f"<{len(ids)}I", *ids)
                    )
                    return struct.pack("<I", len(payload)) + payload

                bad_frames = [
                    # Multiplicity 0.
                    raw_frame(1, 1, [1.0], [0.0], [1], [0]),
                    # Lengths do not sum to the entry count.
                    raw_frame(1, 2, [2.0], [1.0, 1.0], [1], [0, 1]),
                    # Out-of-table dense id.
                    raw_frame(1, 1, [1.0], [1.0], [1], [len(known) + 7]),
                    # Ids not strictly ascending within the kernel.
                    raw_frame(1, 2, [2.0], [1.0, 1.0], [2], [1, 1]),
                    # Zero kernels.
                    raw_frame(0, 0, [], [], [], []),
                ]
                for frame in bad_frames:
                    link._socket.sendall(frame)
                    with pytest.raises(ServingError):
                        link._read_response()
                # Typed refusals never poison the connection.
                (prediction,) = link.predict_blocks([good_block])
                assert prediction.supported_fraction == 1.0
        finally:
            server.shutdown()
            server.server_close()
            service.stop()

    def test_stdio_refuses_binary_negotiation(self, lanes_registry, toy_machine):
        service = PredictionService(lanes_registry).start()
        try:
            hello = json.dumps(
                {"op": "hello", "format": "binary", "machine": toy_machine.name}
            )
            response, shutdown = handle_line(service, hello)
            assert not shutdown
            assert not response["ok"]
            assert response["error"]["type"] == "InvalidRequestError"
            # The json echo stays available everywhere.
            response, _ = handle_line(
                service, json.dumps({"op": "hello", "format": "json"})
            )
            assert response["ok"] and response["format"] == "json"
        finally:
            service.stop()

    def test_binary_hello_requires_a_machine(self, lanes_registry):
        service = PredictionService(lanes_registry).start()
        try:
            response, _ = handle_line(
                service,
                json.dumps({"op": "hello", "format": "binary"}),
                transport_binary=True,
            )
            assert not response["ok"]
            assert response["error"]["type"] == "InvalidRequestError"
        finally:
            service.stop()


class TestAdmissionLeaks:
    def test_failing_flush_releases_admission_capacity(self):
        state = {"fail": True}

        def process(payloads):
            if state["fail"]:
                raise RuntimeError("flush exploded")
            return [payload * 10 for payload in payloads]

        batcher = MicroBatcher(process, max_pending=4).start()
        try:
            futures = [batcher.submit(i) for i in range(4)]
            for future in futures:
                with pytest.raises(RuntimeError, match="flush exploded"):
                    future.result(timeout=10.0)
            assert batcher.pending == 0
            # The released budget admits and serves new work.
            state["fail"] = False
            assert batcher.submit(7).result(timeout=10.0) == 70
        finally:
            batcher.close()

    def test_short_results_release_admission_capacity(self):
        state = {"short": True}

        def process(payloads):
            results = [payload for payload in payloads]
            return results[:-1] if state["short"] else results

        batcher = MicroBatcher(process, max_pending=4).start()
        try:
            future = batcher.submit_many([1, 2, 3])
            with pytest.raises(ServingError, match="2 results for 3"):
                future.result(timeout=10.0)
            assert batcher.pending == 0
            state["short"] = False
            assert batcher.submit_many([4, 5]).result(timeout=10.0) == [4, 5]
        finally:
            batcher.close()

    def test_cancelled_mid_batch_releases_admission_capacity(self):
        """A client that vanishes (cancelled future) frees its kernels."""
        def process(payloads):
            return list(payloads)

        batcher = MicroBatcher(process, max_pending=4)
        try:
            doomed = batcher.submit(1)
            kept = batcher.submit(2)
            assert doomed.cancel()  # not started yet: cancellable
            batcher.start()
            assert kept.result(timeout=10.0) == 2
            deadline = time.monotonic() + 10.0
            while batcher.pending and time.monotonic() < deadline:
                time.sleep(0.01)
            assert batcher.pending == 0
            # Full budget back: a burst the size of the bound is admitted.
            futures = [batcher.submit(i) for i in range(4)]
            assert [f.result(timeout=10.0) for f in futures] == [0, 1, 2, 3]
        finally:
            batcher.close()

    def test_abrupt_disconnect_reaps_handler_threads(
        self, lanes_registry, toy_machine
    ):
        service = PredictionService(lanes_registry).start()
        server, _ = _tcp_server(service)
        host, port = server.address
        try:
            rude = []
            for index in range(3):
                link = socket.create_connection((host, port), timeout=10.0)
                if index == 0:
                    # Half a line, never terminated.
                    link.sendall(b'{"op": "predict", "machi')
                elif index == 1:
                    # A binary hello followed by half a frame header.
                    link.sendall(
                        (
                            json.dumps(
                                {
                                    "op": "hello",
                                    "format": "binary",
                                    "machine": toy_machine.name,
                                }
                            )
                            + "\n"
                        ).encode("utf-8")
                    )
                    link.recv(65536)
                    link.sendall(b"\x10\x00")
                rude.append(link)
            deadline = time.monotonic() + 10.0
            while server.active_connections < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.active_connections == 3
            for link in rude:
                # Hard reset, not a graceful FIN: SO_LINGER with zero timeout.
                link.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                link.close()
            while server.active_connections and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.active_connections == 0
            # The server is still healthy for well-behaved clients.
            with ServingClient(host, port) as polite:
                response = polite.predict_blocks(
                    [{sorted(
                        inst.name
                        for inst in toy_machine.benchmarkable_instructions()
                    )[0]: 1.0}],
                    machine=toy_machine.name,
                )
                assert response["ok"], response
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
