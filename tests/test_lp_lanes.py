"""Unit tests for the lane-pinned persistent worker pool.

:class:`repro.runtime.LanePool` and its in-process emulation
:func:`repro.runtime.run_chunks_in_process` must be interchangeable: same
lane-pinned chunk layout, same lane-local state lifecycle, same results.
The complete-mapping engine relies on that equivalence for its determinism
contract (solver counters identical between degraded and multi-process
runs), so the tests here compare the two paths directly.
"""

from __future__ import annotations

import pytest

from repro.runtime import (
    LanePool,
    LanePoolError,
    lane_state,
    run_chunks_in_process,
)


def _square_chunk(context, items):
    """Returns (context, item^2, lane-local call number) per item."""
    state = lane_state()
    state["calls"] = state.get("calls", 0) + 1
    return [(context, item * item, state["calls"]) for item in items]


class _Boom(RuntimeError):
    pass


def _failing_chunk(context, items):
    raise _Boom(f"chunk failure on {items!r}")


CHUNKS = [[1, 2], [3], [4, 5], [6]]

#: What the lane-pinned layout must produce with 2 lanes: chunks 0 and 2 on
#: lane 0 (its first and second call), chunks 1 and 3 on lane 1.
EXPECTED = [
    [("ctx", 1, 1), ("ctx", 4, 1)],
    [("ctx", 9, 1)],
    [("ctx", 16, 2), ("ctx", 25, 2)],
    [("ctx", 36, 2)],
]


class TestInProcessEmulation:
    def test_lane_pinned_layout_and_state(self):
        assert run_chunks_in_process(_square_chunk, CHUNKS, "ctx", lanes=2) == EXPECTED

    def test_single_lane_sees_every_chunk(self):
        results = run_chunks_in_process(_square_chunk, CHUNKS, "ctx", lanes=1)
        # One emulated lane: the call counter runs through all four chunks.
        assert [chunk[0][2] for chunk in results] == [1, 2, 3, 4]

    def test_state_fresh_per_run(self):
        first = run_chunks_in_process(_square_chunk, [[2]], "ctx", lanes=1)
        second = run_chunks_in_process(_square_chunk, [[2]], "ctx", lanes=1)
        assert first == second == [[("ctx", 4, 1)]]

    def test_outer_state_restored_even_on_error(self):
        outer = lane_state()
        outer["marker"] = "outer"
        with pytest.raises(_Boom):
            run_chunks_in_process(_failing_chunk, [[1]], None, lanes=1)
        assert lane_state() is outer
        assert lane_state()["marker"] == "outer"
        del outer["marker"]

    def test_invalid_lane_count_rejected(self):
        with pytest.raises(ValueError):
            run_chunks_in_process(_square_chunk, CHUNKS, None, lanes=0)


class TestLanePool:
    def test_matches_emulation_exactly(self):
        pool = LanePool(lanes=2, name="test-lane")
        assert pool.run(_square_chunk, CHUNKS, "ctx") == EXPECTED

    def test_more_lanes_than_chunks(self):
        pool = LanePool(lanes=8)
        results = pool.run(_square_chunk, [[3], [5]], "ctx")
        # Each chunk lands on its own lane: both are that lane's first call.
        assert results == [[("ctx", 9, 1)], [("ctx", 25, 1)]]

    def test_empty_chunk_list(self):
        assert LanePool(lanes=2).run(_square_chunk, [], "ctx") == []

    def test_chunk_errors_reraise_with_original_type(self):
        pool = LanePool(lanes=2)
        with pytest.raises(_Boom, match="chunk failure"):
            pool.run(_failing_chunk, [[1], [2]], None)

    def test_unpicklable_function_degrades_to_lane_pool_error(self):
        pool = LanePool(lanes=1)
        with pytest.raises(LanePoolError):
            pool.run(lambda context, items: items, [[1]], None)

    def test_invalid_lane_count_rejected(self):
        with pytest.raises(ValueError):
            LanePool(lanes=0)

    def test_close_is_idempotent(self):
        pool = LanePool(lanes=2)
        pool.run(_square_chunk, [[1]], "ctx")
        pool.close()
        pool.close()
