"""Tests for the ``python -m repro`` command-line entry point."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.__main__ import build_command_parser, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.machine == "toy"
        assert args.parallelism == 0
        assert args.lp_parallelism == 0
        assert args.cache is None
        assert args.json is None
        assert args.artifacts is None

    def test_unknown_machine_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--machine", "pentium"])
        assert "invalid choice" in capsys.readouterr().err

    def test_subcommand_defaults(self):
        args = build_command_parser().parse_args(
            ["predict", "--artifacts", "arts"]
        )
        assert args.command == "predict"
        assert args.suite == "spec"
        assert args.blocks == 200
        assert args.limit == 10

    def test_characterize_requires_artifacts(self, capsys):
        with pytest.raises(SystemExit):
            build_command_parser().parse_args(["characterize"])
        assert "--artifacts" in capsys.readouterr().err

    def test_serve_defaults(self):
        args = build_command_parser().parse_args(["serve", "--artifacts", "arts"])
        assert args.command == "serve"
        assert args.port == 0
        assert not args.stdio
        assert args.max_batch == 512
        assert args.max_pending == 4096

    def test_artifacts_defaults(self):
        args = build_command_parser().parse_args(["artifacts", "--artifacts", "arts"])
        assert args.command == "artifacts"
        assert args.fingerprint is None

    def test_main_importable_from_cli_package(self):
        """The CLI split keeps the legacy import surface intact."""
        from repro.cli import build_command_parser as from_cli
        from repro.cli import build_parser as legacy
        from repro.cli import main as cli_main

        assert from_cli is build_command_parser
        assert legacy is build_parser
        assert cli_main is main


class TestMain:
    def test_toy_run_prints_table_and_writes_json(self, tmp_path, capsys):
        json_path = tmp_path / "stats.json"
        exit_code = main(["--machine", "toy", "--fast", "--json", str(json_path)])
        assert exit_code == 0

        output = capsys.readouterr().out
        assert "Benchmarking time (s)" in output
        assert "Instructions mapped" in output

        payload = json.loads(json_path.read_text())
        assert payload["stats"]["machine_name"]
        assert payload["stats"]["num_instructions_mapped"] > 0
        assert payload["stats"]["lp_solves"] > 0
        assert payload["config"]["lp_parallelism"] == 0
        assert payload["mapping"]["resources"]

    def test_show_mapping_and_json_stdout(self, capsys):
        exit_code = main(["--machine", "toy", "--fast", "--json", "-", "--show-mapping"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert '"stats"' in output


class TestArtifactWorkflow:
    """characterize -> predict/evaluate round trips through the registry."""

    @pytest.fixture(scope="class")
    def characterized(self, tmp_path_factory):
        registry_dir = tmp_path_factory.mktemp("artifacts")
        exit_code = main(
            ["characterize", "--machine", "toy", "--fast", "--artifacts", str(registry_dir)]
        )
        assert exit_code == 0
        return registry_dir

    def test_characterize_saves_artifact(self, characterized, capsys):
        artifacts = list(characterized.glob("mapping-*.json"))
        assert len(artifacts) == 1
        payload = json.loads(artifacts[0].read_text())
        assert payload["machine_name"]
        assert payload["mapping"]["resources"]
        assert payload["stats"]["num_instructions_mapped"] > 0

    def test_predict_serves_from_artifact(self, characterized, tmp_path, capsys):
        json_path = tmp_path / "predictions.json"
        exit_code = main(
            [
                "predict",
                "--machine", "toy",
                "--artifacts", str(characterized),
                "--suite", "spec",
                "--blocks", "25",
                "--limit", "3",
                "--json", str(json_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Served 25 blocks" in output

        payload = json.loads(json_path.read_text())
        assert len(payload["predictions"]) == 25
        assert all(entry["ipc"] is not None for entry in payload["predictions"])

    def test_predict_without_artifact_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(
            ["predict", "--machine", "toy", "--artifacts", str(tmp_path / "none")]
        )
        assert exit_code == 1
        assert "characterize" in capsys.readouterr().err

    def test_evaluate_reproduces_metrics_in_fresh_process(
        self, characterized, tmp_path
    ):
        """The acceptance round trip: ``evaluate`` in a *fresh process*
        reproduces the Fig. 4b metrics computed in-process from the saved
        artifact, with no inference re-run."""
        json_path = tmp_path / "metrics.json"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro", "evaluate",
                "--machine", "toy",
                "--artifacts", str(characterized),
                "--suite", "spec",
                "--blocks", "40",
                "--json", str(json_path),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "no inference re-run" in completed.stdout
        payload = json.loads(json_path.read_text())

        # Reference: the same evaluation computed in this process, straight
        # from the saved artifact.
        from repro import PortModelBackend, build_machine
        from repro.artifacts import ArtifactRegistry
        from repro.evaluation import evaluate_predictors
        from repro.predictors import PalmedPredictor
        from repro.workloads import generate_spec_like_suite

        machine = build_machine("toy")
        artifact = ArtifactRegistry(characterized).load_for_machine(machine)
        suite = generate_spec_like_suite(machine.instructions, n_blocks=40, seed=0)
        evaluation = evaluate_predictors(
            PortModelBackend(machine), suite, [PalmedPredictor(artifact.mapping)],
            machine_name=machine.name,
        )
        expected = evaluation.metrics("Palmed")
        got = payload["metrics"]["Palmed"]
        assert got["coverage_percent"] == 100.0 * expected.coverage
        assert got["rms_error_percent"] == 100.0 * expected.rms_error
        assert got["kendall_tau"] == expected.kendall_tau


class TestArtifactsSubcommand:
    """``python -m repro artifacts``: the operator inventory view."""

    @pytest.fixture(scope="class")
    def characterized(self, tmp_path_factory):
        registry_dir = tmp_path_factory.mktemp("inventory")
        exit_code = main(
            ["characterize", "--machine", "toy", "--fast",
             "--artifacts", str(registry_dir)]
        )
        assert exit_code == 0
        return registry_dir

    def test_lists_artifacts_and_checkpoints(self, characterized, tmp_path, capsys):
        json_path = tmp_path / "inventory.json"
        exit_code = main(
            ["artifacts", "--artifacts", str(characterized), "--json", str(json_path)]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "1 mapping artifact(s)" in output
        assert "fingerprint" in output
        assert "checkpoints for pipeline fingerprint" in output

        payload = json.loads(json_path.read_text())
        assert len(payload["artifacts"]) == 1
        record = payload["artifacts"][0]
        assert record["machine"]
        assert len(record["fingerprint"]) == 64
        assert record["size_bytes"] > 0
        assert record["instructions_mapped"] > 0
        stages = payload["stage_checkpoints"][0]["checkpoints"]
        assert {s["stage"] for s in stages} == {
            "quadratic", "selection", "core", "complete", "finalize"
        }
        assert all(s["size_bytes"] > 0 for s in stages)

    def test_fingerprint_prefix_filter(self, characterized, capsys):
        payload_fingerprint = json.loads(
            next(characterized.glob("mapping-*.json")).read_text()
        )["machine_fingerprint"]
        exit_code = main(
            ["artifacts", "--artifacts", str(characterized),
             "--fingerprint", payload_fingerprint[:8]]
        )
        assert exit_code == 0
        assert payload_fingerprint in capsys.readouterr().out

    def test_unknown_prefix_fails_cleanly(self, characterized, capsys):
        exit_code = main(
            ["artifacts", "--artifacts", str(characterized),
             "--fingerprint", "ffffffffffff"]
        )
        assert exit_code == 1
        assert "no artifact" in capsys.readouterr().err

    def test_missing_registry_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(
            ["artifacts", "--artifacts", str(tmp_path / "nowhere")]
        )
        assert exit_code == 1
        assert "no registry" in capsys.readouterr().err


class TestServeSubcommand:
    """``python -m repro serve --stdio`` in a fresh process."""

    def test_stdio_round_trip_fresh_process(self, tmp_path):
        registry_dir = tmp_path / "registry"
        exit_code = main(
            ["characterize", "--machine", "toy", "--fast",
             "--artifacts", str(registry_dir)]
        )
        assert exit_code == 0

        from repro import build_machine
        from repro.artifacts import ArtifactRegistry
        from repro.predictors import PalmedPredictor
        from repro import Microkernel

        machine = build_machine("toy")
        artifact = ArtifactRegistry(registry_dir).load_for_machine(machine)
        instructions = machine.benchmarkable_instructions()
        block = {instructions[0].name: 2.0, instructions[1].name: 1.0}
        expected = PalmedPredictor(artifact.mapping).predict(
            Microkernel({instructions[0]: 2.0, instructions[1]: 1.0})
        )

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        requests = "\n".join(
            [
                json.dumps({"id": 1, "machine": machine.name, "blocks": [block]}),
                json.dumps({"id": 2, "op": "shutdown"}),
            ]
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "serve",
             "--artifacts", str(registry_dir), "--stdio"],
            input=requests + "\n",
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        lines = [json.loads(line) for line in completed.stdout.splitlines()]
        assert lines[0]["ok"]
        assert lines[0]["predictions"][0]["ipc"] == expected.ipc
        assert lines[1]["stopping"]
        assert "Serving statistics" in completed.stderr

    def test_empty_registry_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(
            ["serve", "--artifacts", str(tmp_path / "empty"), "--stdio"]
        )
        assert exit_code == 1
        assert "characterize" in capsys.readouterr().err


class TestResumeWorkflow:
    """characterize --resume / --force-stage / --explain over the stage graph."""

    @pytest.fixture(scope="class")
    def registry_dir(self, tmp_path_factory):
        registry = tmp_path_factory.mktemp("resume-artifacts")
        exit_code = main(
            ["characterize", "--machine", "toy", "--fast",
             "--artifacts", str(registry)]
        )
        assert exit_code == 0
        return registry

    def test_checkpoints_written(self, registry_dir):
        stage_files = list(registry_dir.glob("stages/*/*.json"))
        stages = {path.name.split("-")[0] for path in stage_files}
        assert stages == {"quadratic", "selection", "core", "complete", "finalize"}

    def test_resume_hits_every_stage(self, registry_dir, capsys):
        json_path = registry_dir / "warm-stats.json"
        exit_code = main(
            ["characterize", "--machine", "toy", "--fast",
             "--artifacts", str(registry_dir), "--resume", "--explain",
             "--json", str(json_path)]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "5/5 stages served from checkpoints" in output
        assert "checkpoint" in output
        stats = json.loads(json_path.read_text())["stats"]
        assert all(stats["stage_checkpoint_hits"].values())
        assert set(stats["stage_wall_clock"]) == {
            "quadratic", "selection", "core", "complete", "finalize"
        }

    def test_force_stage_reruns_named_stage_only(self, registry_dir, capsys):
        exit_code = main(
            ["characterize", "--machine", "toy", "--fast",
             "--artifacts", str(registry_dir), "--resume",
             "--force-stage", "complete", "--explain"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "4/5 stages served from checkpoints" in output

    def test_resume_without_artifacts_rejected(self, capsys):
        exit_code = main(["--machine", "toy", "--fast", "--resume"])
        assert exit_code == 2
        assert "--artifacts" in capsys.readouterr().err

    def test_evaluate_falls_back_to_finalize_checkpoint(self, registry_dir, capsys):
        # Remove the exported mapping artifact but keep the stage
        # checkpoints: evaluate must serve from the finalize checkpoint.
        for artifact in registry_dir.glob("mapping-*.json"):
            artifact.unlink()
        exit_code = main(
            ["evaluate", "--machine", "toy", "--artifacts", str(registry_dir),
             "--suite", "spec", "--blocks", "20"]
        )
        assert exit_code == 0
        assert "finalize-stage checkpoint" in capsys.readouterr().out

    def test_evaluate_without_anything_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(
            ["evaluate", "--machine", "toy", "--artifacts", str(tmp_path / "none")]
        )
        assert exit_code == 1
        assert "characterize" in capsys.readouterr().err


class TestFleetCommand:
    def test_fleet_two_machine_smoke(self, tmp_path, capsys):
        json_path = tmp_path / "fleet.json"
        exit_code = main(
            ["fleet", "--machines", "toy,skl", "--isa-size", "8", "--seed", "2",
             "--fast", "--workers", "2", "--artifacts", str(tmp_path / "registry"),
             "--json", str(json_path)]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Characterized 2 machine(s)" in output
        assert "toy-skl-p016" in output
        payload = json.loads(json_path.read_text())
        assert len(payload["machines"]) == 2
        assert all(m["stats"]["num_instructions_mapped"] > 0 for m in payload["machines"])
        # Re-submitting the same fleet resumes every stage from checkpoints.
        exit_code = main(
            ["fleet", "--machines", "toy,skl", "--isa-size", "8", "--seed", "2",
             "--fast", "--artifacts", str(tmp_path / "registry"),
             "--json", str(json_path)]
        )
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        for machine in payload["machines"]:
            assert all(machine["checkpoint_hits"].values())

    def test_fleet_unknown_machine_rejected(self, tmp_path, capsys):
        exit_code = main(
            ["fleet", "--machines", "toy,pentium", "--artifacts", str(tmp_path)]
        )
        assert exit_code == 2
        assert "unknown machine" in capsys.readouterr().err
