"""Tests for the ``python -m repro`` command-line entry point."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.machine == "toy"
        assert args.parallelism == 0
        assert args.lp_parallelism == 0
        assert args.cache is None
        assert args.json is None

    def test_unknown_machine_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--machine", "pentium"])
        assert "invalid choice" in capsys.readouterr().err


class TestMain:
    def test_toy_run_prints_table_and_writes_json(self, tmp_path, capsys):
        json_path = tmp_path / "stats.json"
        exit_code = main(["--machine", "toy", "--fast", "--json", str(json_path)])
        assert exit_code == 0

        output = capsys.readouterr().out
        assert "Benchmarking time (s)" in output
        assert "Instructions mapped" in output

        payload = json.loads(json_path.read_text())
        assert payload["stats"]["machine_name"]
        assert payload["stats"]["num_instructions_mapped"] > 0
        assert payload["stats"]["lp_solves"] > 0
        assert payload["config"]["lp_parallelism"] == 0
        assert payload["mapping"]["resources"]

    def test_show_mapping_and_json_stdout(self, capsys):
        exit_code = main(["--machine", "toy", "--fast", "--json", "-", "--show-mapping"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert '"stats"' in output
