"""Zero-downtime republish: hot mapping swaps under live traffic.

The cutover contract (:meth:`repro.serving.service.PredictionService.
republish` and the cluster plumbing around it):

* publishing a new artifact version while clients stream costs **zero
  failed requests** — in-flight work drains on the old compiled mapping,
  later flushes serve the new one;
* the ``version`` label every predict envelope carries is **monotone per
  connection** across the swap (the hot-cache replacement is atomic);
* a label is a *routing-time* observation: the answer is bitwise-equal
  to the labeled version or to a newer one (a request labeled v1 whose
  flush ran after the swap legitimately answers v2) — and once a
  connection sees a v2 label, everything after answers v2 exactly;
* the swap is visible in the stats ledger (``mapping_republishes``, the
  ``republish_pending_peak`` drain watermark);
* a republish that fails validation (a rotted file) keeps v1 serving —
  degradation is loud, never an outage;
* a fleet node's republish watcher propagates a source-registry publish
  to its replica and hot-swaps without operator action.
"""

from __future__ import annotations

import struct
import threading
import time

import pytest

from repro.artifacts import ArtifactRegistry
from repro.cluster import ClusterNode
from repro.serving import PredictionService, ServingClient

from test_serving import make_artifact, random_kernels


def bits(value: float) -> bytes:
    return struct.pack("<d", value)


def prediction_key(entry) -> tuple:
    """A bitwise-comparable key for one wire prediction dict."""
    ipc = entry["ipc"]
    return (
        None if ipc is None else bits(ipc),
        bits(entry["supported_fraction"]),
    )


def reference_keys(tmp_path, machine, artifact, blocks, label):
    """Offline per-block prediction keys for one artifact version."""
    root = tmp_path / f"reference-{label}"
    ArtifactRegistry(root).save(artifact)
    with PredictionService(ArtifactRegistry(root, readonly=True)) as service:
        fingerprint = service.resolve(machine.name)
        compiled = service.compiled(fingerprint)
        keys = []
        for block in blocks:
            import repro.serving.frontend as frontend

            kernels = frontend._parse_blocks(compiled, [block])
            (prediction,) = service.predict_many(fingerprint, kernels)
            keys.append(
                (
                    None if prediction.ipc is None else bits(prediction.ipc),
                    bits(prediction.supported_fraction),
                )
            )
    return compiled.version, keys


@pytest.fixture()
def versions(tmp_path, toy_machine):
    """v1/v2 artifacts for the same machine plus their offline references."""
    artifact_v1 = make_artifact(toy_machine)
    time.sleep(0.01)  # strictly younger created_at for v2
    artifact_v2 = make_artifact(toy_machine, throughput_scale=2.0)
    assert artifact_v2.created_at > artifact_v1.created_at

    kernels = random_kernels(
        list(toy_machine.benchmarkable_instructions()), 24, seed=11
    )
    blocks = [
        {ins.name: float(count) for ins, count in kernel.counts.items()}
        for kernel in kernels
    ]
    version_v1, keys_v1 = reference_keys(
        tmp_path, toy_machine, artifact_v1, blocks, "v1"
    )
    version_v2, keys_v2 = reference_keys(
        tmp_path, toy_machine, artifact_v2, blocks, "v2"
    )
    # The republish must be observable: the two versions disagree on at
    # least one block (the front-end resource binds some kernels).
    assert keys_v1 != keys_v2
    return artifact_v1, artifact_v2, blocks, {
        version_v1: keys_v1,
        version_v2: keys_v2,
    }


class _StreamingClient(threading.Thread):
    """One connection streaming blocks round-robin until told to stop."""

    def __init__(self, address, fingerprint, blocks, stop_event):
        super().__init__(daemon=True)
        self.address = address
        self.fingerprint = fingerprint
        self.blocks = blocks
        self.stop_event = stop_event
        self.observations = []  # (block_index, version, prediction_key)
        self.failures = []
        self.served = 0

    def run(self) -> None:
        try:
            with ServingClient(*self.address) as client:
                index = 0
                while not self.stop_event.is_set():
                    block_index = index % len(self.blocks)
                    response = client.predict_blocks(
                        [self.blocks[block_index]],
                        fingerprint=self.fingerprint,
                        request_id=index,
                    )
                    if not response.get("ok"):
                        self.failures.append(response)
                        return
                    self.observations.append(
                        (
                            block_index,
                            response["version"],
                            prediction_key(response["predictions"][0]),
                        )
                    )
                    self.served += 1
                    index += 1
        except Exception as error:  # noqa: BLE001 - surfaced by the test
            self.failures.append(error)


def served_counts(clients):
    return [client.served for client in clients]


def wait_until(predicate, timeout=30.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestZeroDowntimeRepublish:
    def test_v2_publish_under_8_concurrent_streams(
        self, tmp_path, toy_machine, versions
    ):
        artifact_v1, artifact_v2, blocks, references = versions
        version_v1 = artifact_v1.created_at
        version_v2 = artifact_v2.created_at
        source = tmp_path / "source"
        ArtifactRegistry(source).save(artifact_v1)

        node = ClusterNode("n0", source, tmp_path / "replica").start()
        stop = threading.Event()
        clients = []
        try:
            fingerprint = artifact_v1.machine_fingerprint
            clients = [
                _StreamingClient(node.address, fingerprint, blocks, stop)
                for _ in range(8)
            ]
            for client in clients:
                client.start()
            # Everyone is streaming v1...
            assert wait_until(
                lambda: min(served_counts(clients), default=0) >= 8
            ), served_counts(clients)
            marks = served_counts(clients)

            # ...now publish v2 and hot-swap while they stream.
            ArtifactRegistry(source).save(artifact_v2)
            node.sync()
            with ServingClient(*node.address) as admin:
                outcome = admin.republish()
            assert outcome["ok"], outcome
            assert outcome["swapped"] == {fingerprint: version_v2}
            assert outcome["failed"] == {}

            # Let every client stream well past the cutover, then stop.
            assert wait_until(
                lambda: all(
                    now >= before + 8
                    for now, before in zip(served_counts(clients), marks)
                )
            ), (served_counts(clients), marks)
        finally:
            stop.set()
            for client in clients:
                client.join(timeout=30.0)
            snapshot = node.service.snapshot()
            node.stop()

        # Zero failed requests, on every connection.
        for client in clients:
            assert client.failures == [], client.failures
            assert not client.is_alive()

        observed_versions = set()
        for client in clients:
            last_version = None
            seen_v2 = False
            for block_index, version, key in client.observations:
                observed_versions.add(version)
                # Monotone version cutover per connection.
                if last_version is not None:
                    assert version >= last_version, client.observations
                last_version = version
                # The label is a routing-time observation: the answer is
                # the labeled version's bits or a newer version's (the
                # flush may have crossed the swap) — and after the first
                # v2 label, exactly v2's.
                if version == version_v2:
                    seen_v2 = True
                    assert key == references[version_v2][block_index]
                else:
                    assert version == version_v1
                    allowed = (
                        references[version_v1][block_index],
                        references[version_v2][block_index],
                    )
                    assert key in allowed
                if seen_v2:
                    assert version == version_v2
        # Both versions actually served (the swap happened mid-stream).
        assert len(observed_versions) == 2

        # The drain is on the ledger.
        assert snapshot["mapping_republishes"] == 1
        assert snapshot["republish_pending_peak"] >= 0
        assert (
            snapshot["requests_admitted"]
            == snapshot["requests_completed"] + snapshot["requests_failed"]
        )
        assert snapshot["requests_failed"] == 0

    def test_republish_is_a_noop_when_nothing_changed(
        self, tmp_path, toy_machine, versions
    ):
        artifact_v1, _, blocks, references = versions
        source = tmp_path / "source"
        ArtifactRegistry(source).save(artifact_v1)
        node = ClusterNode("n0", source, tmp_path / "replica").start()
        try:
            with ServingClient(*node.address) as client:
                client.predict_blocks(
                    [blocks[0]], fingerprint=artifact_v1.machine_fingerprint
                )
                outcome = client.republish()
                assert outcome["swapped"] == {}
                assert outcome["failed"] == {}
            assert node.service.snapshot()["mapping_republishes"] == 0
        finally:
            node.stop()

    def test_botched_republish_keeps_v1_serving(
        self, tmp_path, toy_machine, versions
    ):
        """A changed-but-invalid artifact file degrades loudly to v1."""
        artifact_v1, _, blocks, references = versions
        version_v1 = artifact_v1.created_at
        source = tmp_path / "source"
        ArtifactRegistry(source).save(artifact_v1)
        node = ClusterNode("n0", source, tmp_path / "replica").start()
        try:
            fingerprint = artifact_v1.machine_fingerprint
            with ServingClient(*node.address) as client:
                first = client.predict_blocks([blocks[0]], fingerprint=fingerprint)
                assert first["ok"]
                # Rot the *replica* file in place (mtime changes, content
                # no longer validates).
                artifact_path = next(node.replica_dir.glob("mapping-*.json"))
                payload = bytearray(artifact_path.read_bytes())
                payload[len(payload) // 3] ^= 0xFF
                artifact_path.write_bytes(bytes(payload))

                outcome = client.republish()
                assert outcome["swapped"] == {}
                assert list(outcome["failed"]) == [fingerprint]

                # v1 keeps serving, same version label, same bits.
                again = client.predict_blocks([blocks[0]], fingerprint=fingerprint)
                assert again["ok"]
                assert again["version"] == version_v1
                assert prediction_key(
                    again["predictions"][0]
                ) == prediction_key(first["predictions"][0])
        finally:
            node.stop()

    def test_watcher_propagates_a_publish_across_the_fleet(
        self, tmp_path, toy_machine, versions
    ):
        """Nodes with a republish watcher pick v2 up with no operator op."""
        artifact_v1, artifact_v2, blocks, references = versions
        version_v2 = artifact_v2.created_at
        source = tmp_path / "source"
        ArtifactRegistry(source).save(artifact_v1)
        nodes = [
            ClusterNode(
                f"n{index}",
                source,
                tmp_path / f"replica{index}",
                republish_poll_s=0.02,
            ).start()
            for index in range(3)
        ]
        try:
            fingerprint = artifact_v1.machine_fingerprint
            # Warm every node onto v1 (the watcher only swaps *resident*
            # mappings; an unwarmed node would simply load v2 on first use).
            for node in nodes:
                with ServingClient(*node.address) as client:
                    warm = client.predict_blocks(
                        [blocks[0]], fingerprint=fingerprint
                    )
                    assert warm["ok"]
            ArtifactRegistry(source).save(artifact_v2)

            def fleet_on_v2():
                for node in nodes:
                    with ServingClient(*node.address) as client:
                        response = client.predict_blocks(
                            [blocks[0]], fingerprint=fingerprint
                        )
                        if not response.get("ok"):
                            return False
                        if response["version"] != version_v2:
                            return False
                return True

            assert wait_until(fleet_on_v2, timeout=30.0)
            for node in nodes:
                assert node.last_sync_error is None
                assert node.service.snapshot()["mapping_republishes"] == 1
        finally:
            for node in nodes:
                node.stop()

    def test_republish_recycles_process_lanes(
        self, tmp_path, toy_machine, versions
    ):
        """In process-lane mode the worker is respawned on the new artifact."""
        artifact_v1, artifact_v2, blocks, references = versions
        version_v2 = artifact_v2.created_at
        source = tmp_path / "source"
        ArtifactRegistry(source).save(artifact_v1)
        node = ClusterNode(
            "n0",
            source,
            tmp_path / "replica",
            lane_mode="process",
        ).start()
        try:
            fingerprint = artifact_v1.machine_fingerprint
            with ServingClient(*node.address) as client:
                before = client.predict_blocks([blocks[1]], fingerprint=fingerprint)
                assert before["ok"]
                ArtifactRegistry(source).save(artifact_v2)
                node.sync()
                outcome = client.republish()
                assert list(outcome["swapped"]) == [fingerprint]
                after = client.predict_blocks([blocks[1]], fingerprint=fingerprint)
                assert after["ok"]
                assert after["version"] == version_v2
                assert prediction_key(after["predictions"][0]) == references[
                    version_v2
                ][1]
        finally:
            node.stop()
