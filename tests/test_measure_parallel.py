"""Differential tests for the batched/parallel measurement layer.

The contract under test: *how* measurements are executed — scalar loop,
batched, chunked over worker processes, served from a persistent cache —
must never change a single bit of the values, and therefore never change an
inferred mapping.  Every test here compares an alternative execution
strategy against the plain sequential path with ``==`` on floats (bitwise
equality), not with tolerances.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro import (
    GreedyCycleSimulator,
    LpReferenceBackend,
    MeasurementNoise,
    Microkernel,
    PortModelBackend,
    build_toy_machine,
)
from repro.isa.instruction import Extension, Instruction, InstructionKind
from repro.measure import MeasurementCache, ParallelDispatcher
from repro.palmed import Palmed, PalmedConfig
from repro.palmed.benchmarks import BenchmarkRunner

WORKER_COUNTS = (0, 1, 2, 4)


def _random_kernels(machine, count=24, seed=7):
    rng = random.Random(seed)
    instructions = machine.benchmarkable_instructions()
    kernels = []
    for _ in range(count):
        picks = {
            rng.choice(instructions): rng.randint(1, 4)
            for _ in range(rng.randint(1, 3))
        }
        kernels.append(Microkernel(picks))
    return kernels


def _backend_factories(machine):
    return {
        "port-model": lambda: PortModelBackend(machine),
        "port-model-noisy": lambda: PortModelBackend(
            machine, noise=MeasurementNoise(relative_stddev=0.02, seed=3)
        ),
        "lp-reference": lambda: LpReferenceBackend(machine),
        "greedy-sim": lambda: GreedyCycleSimulator(machine, iterations=32),
    }


class TestMeasureBatch:
    """measure_batch() is bitwise identical to the scalar measure path."""

    @pytest.mark.parametrize("backend_kind", ["port-model", "port-model-noisy",
                                              "lp-reference", "greedy-sim"])
    def test_batch_equals_scalar(self, toy_machine, backend_kind):
        kernels = _random_kernels(toy_machine)
        scalar_backend = _backend_factories(toy_machine)[backend_kind]()
        batch_backend = _backend_factories(toy_machine)[backend_kind]()

        scalar = [scalar_backend.ipc(kernel) for kernel in kernels]
        batch = batch_backend.measure_batch(kernels)
        assert batch == scalar
        assert batch_backend.measurement_count == scalar_backend.measurement_count

    def test_empty_batch(self, toy_backend):
        assert toy_backend.measure_batch([]) == []


class TestParallelDispatcher:
    """Worker count and chunking never change results or their order."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_all_worker_counts_bitwise_identical(self, toy_machine, workers):
        kernels = _random_kernels(toy_machine, count=30)
        reference = PortModelBackend(toy_machine).measure_batch(kernels)
        dispatched = ParallelDispatcher(workers=workers).measure(
            PortModelBackend(toy_machine), kernels
        )
        assert dispatched == reference

    @pytest.mark.parametrize("chunk_size", [1, 3, 1000])
    def test_chunk_size_does_not_matter(self, toy_machine, chunk_size):
        kernels = _random_kernels(toy_machine, count=20)
        reference = PortModelBackend(toy_machine).measure_batch(kernels)
        dispatched = ParallelDispatcher(workers=2, chunk_size=chunk_size).measure(
            PortModelBackend(toy_machine), kernels
        )
        assert dispatched == reference

    @pytest.mark.parametrize("workers", [0, 2])
    def test_measure_safe_marks_unknown_instructions(self, toy_machine, workers):
        alien = Instruction("ALIEN_OP", InstructionKind.INT_ALU, Extension.BASE)
        kernels = _random_kernels(toy_machine, count=6)
        bad = Microkernel.single(alien)
        mixed = kernels[:3] + [bad] + kernels[3:]
        values = ParallelDispatcher(workers=workers).measure_safe(
            PortModelBackend(toy_machine), mixed
        )
        assert values[3] is None
        expected = PortModelBackend(toy_machine).measure_batch(kernels)
        assert [v for v in values if v is not None] == expected

    @pytest.mark.parametrize("workers", [0, 2])
    def test_measure_propagates_unknown_instruction(self, toy_machine, workers):
        # A backend error inside a worker must re-raise in the caller with
        # its original type — never be misread as "pool unavailable" and
        # silently retried on the sequential path.
        alien = Instruction("ALIEN_OP", InstructionKind.INT_ALU, Extension.BASE)
        with pytest.raises(KeyError):
            ParallelDispatcher(workers=workers).measure(
                PortModelBackend(toy_machine), [Microkernel.single(alien)]
            )

    def test_noisy_backend_parallel_identical(self, toy_machine):
        noise = MeasurementNoise(relative_stddev=0.05, quantization=0.01, seed=11)
        kernels = _random_kernels(toy_machine, count=16)
        reference = PortModelBackend(toy_machine, noise=noise).measure_batch(kernels)
        parallel = ParallelDispatcher(workers=3).measure(
            PortModelBackend(toy_machine, noise=noise), kernels
        )
        assert parallel == reference

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ParallelDispatcher(workers=-1)
        with pytest.raises(ValueError):
            ParallelDispatcher(workers=2, chunk_size=0)


class TestRunnerBatchPath:
    """BenchmarkRunner.ipc_batch against the scalar runner path."""

    @pytest.mark.parametrize("quantize", [False, True])
    def test_batch_equals_scalar_runner(self, toy_machine, quantize):
        kernels = _random_kernels(toy_machine, count=20)
        # Include fractional multiplicities so quantization has work to do.
        fractional = [kernel.scaled(0.37) for kernel in kernels[:5]]
        kernels = kernels + fractional

        config = PalmedConfig(quantize_coefficients=quantize)
        scalar_runner = BenchmarkRunner(PortModelBackend(toy_machine), config)
        batch_runner = BenchmarkRunner(PortModelBackend(toy_machine), config)

        scalar = [scalar_runner.ipc(kernel) for kernel in kernels]
        batch = batch_runner.ipc_batch(kernels)
        assert batch == scalar
        assert batch_runner.num_benchmarks == scalar_runner.num_benchmarks

    def test_duplicates_measured_once(self, toy_machine, toy_instructions):
        kernel = Microkernel({toy_instructions["ADDSS"]: 1})
        backend = PortModelBackend(toy_machine)
        runner = BenchmarkRunner(backend)
        values = runner.ipc_batch([kernel, kernel, kernel])
        assert len(set(values)) == 1
        assert runner.num_benchmarks == 1
        assert backend.measurement_count == 1

    @pytest.mark.parametrize("workers", [2])
    def test_parallel_runner_equals_sequential(self, toy_machine, workers):
        kernels = _random_kernels(toy_machine, count=25)
        sequential = BenchmarkRunner(PortModelBackend(toy_machine)).ipc_batch(kernels)
        parallel_runner = BenchmarkRunner(
            PortModelBackend(toy_machine),
            PalmedConfig(parallelism=workers),
        )
        assert parallel_runner.ipc_batch(kernels) == sequential


class TestPipelineDifferential:
    """The acceptance check: execution strategy never changes PalmedResult."""

    @pytest.fixture(scope="class")
    def toy_setup(self):
        machine = build_toy_machine()
        config = PalmedConfig().for_fast_tests()
        return machine, config

    @pytest.fixture(scope="class")
    def sequential_result(self, toy_setup):
        machine, config = toy_setup
        backend = PortModelBackend(machine)
        return Palmed(backend, machine.benchmarkable_instructions(), config).run()

    def test_parallel_and_cached_runs_match_sequential(
        self, toy_setup, sequential_result, tmp_path_factory
    ):
        machine, config = toy_setup
        cache_path = tmp_path_factory.mktemp("measure") / "toy.json"
        cached_config = dataclasses.replace(
            config, parallelism=2, cache_path=str(cache_path)
        )

        cold = Palmed(
            PortModelBackend(machine),
            machine.benchmarkable_instructions(),
            cached_config,
        ).run()
        assert cold.mapping.to_dict() == sequential_result.mapping.to_dict()
        assert cold.stats.num_benchmarks_cached == 0
        assert cold.stats.num_benchmarks_measured == sequential_result.stats.num_benchmarks

        warm = Palmed(
            PortModelBackend(machine),
            machine.benchmarkable_instructions(),
            cached_config,
        ).run()
        assert warm.mapping.to_dict() == sequential_result.mapping.to_dict()
        # The warm run measured nothing: every benchmark came from the cache.
        assert warm.stats.num_benchmarks_measured == 0
        assert warm.stats.num_benchmarks_cached == sequential_result.stats.num_benchmarks

        # Identical predictions on arbitrary kernels, not just identical tables.
        for kernel in _random_kernels(machine, count=10, seed=3):
            if all(warm.supports(inst) for inst in kernel.instructions):
                assert warm.predict_ipc(kernel) == sequential_result.predict_ipc(kernel)
