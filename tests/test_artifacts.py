"""Tests for the mapping-artifact registry (characterize once, serve forever)."""

from __future__ import annotations

import json

import pytest

from repro import PortModelBackend, build_toy_machine
from repro.artifacts import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    ArtifactNotFoundError,
    ArtifactRegistry,
    FingerprintMismatchError,
    MappingArtifact,
)
from repro.measure import machine_fingerprint
from repro.palmed import Palmed, PalmedConfig
from repro.predictors import PalmedPredictor


@pytest.fixture(scope="module")
def toy_result():
    machine = build_toy_machine()
    backend = PortModelBackend(machine)
    palmed = Palmed(
        backend, machine.benchmarkable_instructions(), PalmedConfig().for_fast_tests()
    )
    return machine, palmed.run()


class TestMappingArtifact:
    def test_from_result_carries_fingerprint(self, toy_result):
        machine, result = toy_result
        artifact = MappingArtifact.from_result(result, machine)
        assert artifact.machine_name == machine.name
        assert artifact.machine_fingerprint == machine_fingerprint(machine)
        assert artifact.format_version == ARTIFACT_FORMAT_VERSION

    def test_json_roundtrip_preserves_mapping_and_stats(self, toy_result):
        machine, result = toy_result
        artifact = MappingArtifact.from_result(result, machine)
        clone = MappingArtifact.from_json(artifact.to_json())
        assert clone.mapping.to_dict() == result.mapping.to_dict()
        assert clone.stats == result.stats
        assert clone.machine_fingerprint == artifact.machine_fingerprint

    def test_unknown_format_version_refused(self, toy_result):
        machine, result = toy_result
        payload = MappingArtifact.from_result(result, machine).to_dict()
        payload["format_version"] = ARTIFACT_FORMAT_VERSION + 1
        with pytest.raises(ArtifactError, match="format version"):
            MappingArtifact.from_dict(payload)

    def test_stats_from_dict_ignores_unknown_keys(self, toy_result):
        _, result = toy_result
        payload = result.stats.to_dict()
        payload["added_in_a_future_schema"] = 123
        assert type(result.stats).from_dict(payload) == result.stats


class TestArtifactRegistry:
    def test_save_load_roundtrip_across_handles(self, toy_result, tmp_path):
        """A fresh registry handle (as a fresh process) reloads the mapping."""
        machine, result = toy_result
        registry = ArtifactRegistry(tmp_path / "artifacts")
        path = registry.save_result(result, machine)
        assert path.exists()

        fresh = ArtifactRegistry(tmp_path / "artifacts")
        artifact = fresh.load_for_machine(machine)
        assert artifact.mapping.to_dict() == result.mapping.to_dict()
        assert artifact.stats == result.stats
        # The loaded mapping predicts identically to the original result.
        kernel_counts = {inst: 2.0 for inst in machine.benchmarkable_instructions()[:2]}
        from repro.mapping.microkernel import Microkernel

        kernel = Microkernel(kernel_counts)
        assert PalmedPredictor(artifact.mapping).predict(kernel) == PalmedPredictor(
            result.mapping
        ).predict(kernel)

    def test_missing_artifact_raises_not_found(self, tmp_path):
        registry = ArtifactRegistry(tmp_path / "empty")
        with pytest.raises(ArtifactNotFoundError, match="characterize"):
            registry.load("ab" * 32)
        assert not registry.has("ab" * 32)
        assert registry.entries() == []

    def test_changed_machine_model_misses(self, toy_result, tmp_path):
        """A stale artifact is never served: new model => new fingerprint."""
        machine, result = toy_result
        registry = ArtifactRegistry(tmp_path)
        registry.save_result(result, machine)
        changed = machine.restricted(machine.instructions[:3])
        assert machine_fingerprint(changed) != machine_fingerprint(machine)
        with pytest.raises(ArtifactNotFoundError):
            registry.load_for_machine(changed)

    def test_tampered_fingerprint_refused(self, toy_result, tmp_path):
        """A file stored under a key it does not embed is refused."""
        machine, result = toy_result
        registry = ArtifactRegistry(tmp_path)
        path = registry.save_result(result, machine)
        wrong_key = "cd" * 32
        path.rename(registry.path_for(wrong_key))
        with pytest.raises(FingerprintMismatchError, match="refusing"):
            registry.load(wrong_key)

    def test_corrupt_file_raises_artifact_error(self, toy_result, tmp_path):
        machine, result = toy_result
        registry = ArtifactRegistry(tmp_path)
        path = registry.save_result(result, machine)
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ArtifactError, match="unreadable"):
            registry.load_for_machine(machine)

    def test_version_bump_refused_on_load(self, toy_result, tmp_path):
        machine, result = toy_result
        registry = ArtifactRegistry(tmp_path)
        path = registry.save_result(result, machine)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["format_version"] = 99
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ArtifactError, match="format version"):
            registry.load_for_machine(machine)

    def test_entries_lists_saved_artifacts(self, toy_result, tmp_path):
        machine, result = toy_result
        registry = ArtifactRegistry(tmp_path)
        registry.save_result(result, machine)
        entries = registry.entries()
        assert [entry.machine_name for entry in entries] == [machine.name]

    def test_save_is_idempotent(self, toy_result, tmp_path):
        machine, result = toy_result
        registry = ArtifactRegistry(tmp_path)
        first = registry.save_result(result, machine)
        second = registry.save_result(result, machine)
        assert first == second
        assert len(registry.entries()) == 1
