"""Unit tests of the stage-graph machinery (repro.pipeline).

Covers the graph executor's validation and bookkeeping, the content-hash
invalidation contract (config fields a stage *reads* invalidate its
checkpoints, unrelated fields do not), and the checkpoint storage layer.
The end-to-end crash/resume bitwise guarantees live in
``tests/test_resume.py``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import PortModelBackend, build_toy_machine
from repro.artifacts import (
    ArtifactNotFoundError,
    ArtifactRegistry,
    FingerprintMismatchError,
    StageCheckpoint,
    payload_hash,
)
from repro.palmed import Palmed, PalmedConfig
from repro.palmed.benchmarks import BenchmarkRunner
from repro.pipeline import (
    PipelineInterrupted,
    Stage,
    StageContext,
    StageGraph,
    load_final_outcome,
    palmed_stages,
)


def fast_config(**overrides) -> PalmedConfig:
    config = PalmedConfig().for_fast_tests()
    return dataclasses.replace(config, **overrides) if overrides else config


@pytest.fixture()
def toy_context(toy_backend, toy_machine):
    return StageContext(
        runner=BenchmarkRunner(toy_backend, fast_config()),
        config=fast_config(),
        instructions=sorted(toy_machine.benchmarkable_instructions()),
        machine_name=toy_machine.name,
    )


class TestConfigHash:
    """The satellite contract: only declared fields key a stage's checkpoints."""

    def test_stable_across_instances(self):
        assert PalmedConfig().config_hash() == PalmedConfig().config_hash()

    def test_field_order_irrelevant(self):
        config = PalmedConfig()
        assert config.config_hash(["epsilon", "min_ipc"]) == config.config_hash(
            ["min_ipc", "epsilon"]
        )

    def test_unrelated_field_change_keeps_hash(self):
        """Fields outside the selection must not move the digest."""
        base = PalmedConfig()
        changed = dataclasses.replace(base, lp_parallelism=8, parallelism=4,
                                      cache_path="/tmp/somewhere.json")
        fields = ["epsilon", "min_ipc", "m_repeat"]
        assert base.config_hash(fields) == changed.config_hash(fields)

    def test_selected_field_change_moves_hash(self):
        base = PalmedConfig()
        changed = dataclasses.replace(base, epsilon=0.07)
        fields = ["epsilon", "min_ipc"]
        assert base.config_hash(fields) != changed.config_hash(fields)

    def test_full_hash_sees_every_field(self):
        assert (
            PalmedConfig().config_hash()
            != dataclasses.replace(PalmedConfig(), l_repeat=5).config_hash()
        )

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown PalmedConfig fields"):
            PalmedConfig().config_hash(["not_a_field"])

    def test_every_declared_stage_field_exists(self):
        """Stages may only declare fields PalmedConfig actually has."""
        config = PalmedConfig()
        for stage in palmed_stages():
            config.config_hash(stage.config_fields)  # raises on a typo


class TestPayloadHash:
    def test_nondeterministic_section_excluded(self):
        base = {"value": 1.5, "_nondeterministic": {"wall": 0.123}}
        other = {"value": 1.5, "_nondeterministic": {"wall": 9.999}}
        assert payload_hash(base) == payload_hash(other)

    def test_semantic_change_moves_hash(self):
        assert payload_hash({"value": 1.5}) != payload_hash({"value": 1.6})


class TestGraphValidation:
    def test_duplicate_stage_rejected(self):
        stage = palmed_stages()[0]
        with pytest.raises(ValueError, match="duplicate"):
            StageGraph([stage, stage])

    def test_forward_dependency_rejected(self):
        stages = palmed_stages()
        with pytest.raises(ValueError, match="depends on"):
            StageGraph(stages[::-1])

    def test_unnamed_stage_rejected(self):
        with pytest.raises(ValueError, match="no name"):
            StageGraph([Stage()])

    def test_unknown_force_rejected(self, toy_context, tmp_path):
        graph = StageGraph(palmed_stages())
        with pytest.raises(ValueError, match="unknown stage"):
            graph.run(
                toy_context,
                registry=ArtifactRegistry(tmp_path),
                force=["benchmarking"],
            )

    def test_unknown_stop_after_rejected(self, toy_context):
        graph = StageGraph(palmed_stages())
        with pytest.raises(ValueError, match="stop_after"):
            graph.run(toy_context, stop_after="nope")

    def test_resume_without_registry_rejected(self, toy_backend, toy_machine):
        with pytest.raises(ValueError, match="registry"):
            Palmed(
                toy_backend,
                toy_machine.benchmarkable_instructions(),
                fast_config(),
                resume=True,
            )


class TestInvalidation:
    """Content-driven checkpoint invalidation, end to end."""

    @pytest.fixture(scope="class")
    def characterized(self, tmp_path_factory, toy_machine):
        registry_dir = tmp_path_factory.mktemp("stage-registry")
        registry = ArtifactRegistry(registry_dir)
        backend = PortModelBackend(toy_machine)
        palmed = Palmed(
            backend,
            toy_machine.benchmarkable_instructions(),
            fast_config(),
            registry=registry,
        )
        result = palmed.run()
        return registry, result

    def _hits(self, toy_machine, registry, config):
        backend = PortModelBackend(toy_machine)
        palmed = Palmed(
            backend,
            toy_machine.benchmarkable_instructions(),
            config,
            registry=registry,
            resume=True,
        )
        result = palmed.run()
        return result.stats.stage_checkpoint_hits, result

    def test_unrelated_config_change_hits_every_stage(self, characterized, toy_machine):
        """lp_parallelism/cache knobs are read by no stage: all five hit."""
        registry, _ = characterized
        hits, _ = self._hits(
            toy_machine, registry, fast_config(lp_parallelism=2, parallelism=2)
        )
        assert hits == {name: True for name in hits}

    def test_selection_field_reruns_only_downstream(self, characterized, toy_machine):
        """cluster_tolerance is read from selection onward: quadratic hits."""
        registry, _ = characterized
        hits, _ = self._hits(
            toy_machine, registry, fast_config(cluster_tolerance=0.04)
        )
        assert hits["quadratic"] is True
        assert hits["selection"] is False

    def test_lpaux_field_keeps_upstream_checkpoints(self, characterized, toy_machine):
        """l_repeat is read only by the complete stage: everything before hits."""
        registry, _ = characterized
        hits, _ = self._hits(toy_machine, registry, fast_config(l_repeat=3))
        assert hits["quadratic"] and hits["selection"] and hits["core"]
        assert hits["complete"] is False

    def test_identical_rerun_after_selection_change_converges(
        self, characterized, toy_machine
    ):
        """A re-run stage reproducing its output revalidates downstream.

        cluster_tolerance=0.05 is the default written as a different float
        expression; with the *same* value the selection hash changes only
        if the field value changed — here we re-run selection via force and
        check downstream stages still hit because the output hash matched.
        """
        registry, cold = characterized
        backend = PortModelBackend(toy_machine)
        palmed = Palmed(
            backend,
            toy_machine.benchmarkable_instructions(),
            fast_config(),
            registry=registry,
            resume=True,
            force_stages=("selection",),
        )
        result = palmed.run()
        hits = result.stats.stage_checkpoint_hits
        assert hits["selection"] is False  # forced
        assert hits["core"] is True  # same selection output -> same hash
        assert result.mapping.to_json() == cold.mapping.to_json()

    def test_instruction_subset_change_invalidates(
        self, characterized, toy_machine, tmp_path
    ):
        """Subsets differing only in *non-benchmarkable* instructions must
        not share checkpoints: the quadratic payload would coincide, but
        ``num_instructions_total`` (part of the deterministic stats) would
        not — the instruction set is therefore part of every stage's hash."""
        import shutil

        from repro.isa.instruction import Extension, Instruction, InstructionKind

        registry, _ = characterized
        # Work on a copy: this run writes its own (7-instruction)
        # checkpoints, which must not shadow the shared class registry.
        copied = ArtifactRegistry(
            shutil.copytree(registry.root, tmp_path / "registry-subset")
        )
        unbenchmarkable = Instruction(
            "FAKE_JMP", InstructionKind.JUMP, Extension.BASE, 64
        )
        backend = PortModelBackend(toy_machine)
        palmed = Palmed(
            backend,
            list(toy_machine.benchmarkable_instructions()) + [unbenchmarkable],
            fast_config(),
            registry=copied,
            resume=True,
        )
        result = palmed.run()
        assert not any(result.stats.stage_checkpoint_hits.values())
        assert result.stats.num_instructions_total == 7

    def test_machine_change_invalidates_everything(self, characterized):
        registry, _ = characterized
        from repro import build_small_isa, build_skylake_like_machine

        machine = build_skylake_like_machine(isa=build_small_isa(12, seed=3))
        backend = PortModelBackend(machine)
        palmed = Palmed(
            backend,
            machine.benchmarkable_instructions(),
            fast_config(n_basic_cap=6, max_resources=7),
            registry=registry,
            resume=True,
        )
        result = palmed.run()
        hits = result.stats.stage_checkpoint_hits
        assert hits == {name: False for name in hits}

    def test_final_outcome_loadable_from_checkpoints(self, characterized, toy_machine):
        registry, cold = characterized
        from repro.measure import backend_fingerprint

        fingerprint = backend_fingerprint(PortModelBackend(toy_machine))
        final = load_final_outcome(registry, fingerprint)
        assert final is not None
        assert final.mapping.to_json() == cold.mapping.to_json()
        assert final.stats.deterministic_dict() == cold.stats.deterministic_dict()

    def test_final_outcome_missing_returns_none(self, tmp_path):
        assert load_final_outcome(ArtifactRegistry(tmp_path), "f" * 64) is None


class TestCheckpointStore:
    def _checkpoint(self) -> StageCheckpoint:
        payload = {"value": 1.25, "_nondeterministic": {"wall": 0.7}}
        return StageCheckpoint(
            stage="quadratic",
            machine_fingerprint="a" * 64,
            input_hash="b" * 64,
            output_hash=payload_hash(payload),
            payload=payload,
            record={
                "stage": "quadratic",
                "wall_time": 0.5,
                "num_benchmarks": 3,
                "num_benchmarks_measured": 2,
                "num_benchmarks_cached": 1,
            },
        )

    def test_roundtrip(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        checkpoint = self._checkpoint()
        registry.save_stage(checkpoint)
        assert registry.has_stage("a" * 64, "quadratic", "b" * 64)
        loaded = registry.load_stage("a" * 64, "quadratic", "b" * 64)
        assert loaded.payload == checkpoint.payload
        assert loaded.output_hash == checkpoint.output_hash
        assert loaded.record["num_benchmarks"] == 3

    def test_corrupted_payload_refused(self, tmp_path):
        """An edited payload no longer matches output_hash and is refused."""
        import json

        registry = ArtifactRegistry(tmp_path)
        path = registry.save_stage(self._checkpoint())
        envelope = json.loads(path.read_text())
        envelope["payload"]["value"] = 9.75  # bit-flip the semantic content
        path.write_text(json.dumps(envelope))
        with pytest.raises(FingerprintMismatchError, match="corrupted or edited"):
            registry.load_stage("a" * 64, "quadratic", "b" * 64)

    def test_nondeterministic_edit_tolerated(self, tmp_path):
        """Editing the _nondeterministic section does not trip verification."""
        import json

        registry = ArtifactRegistry(tmp_path)
        path = registry.save_stage(self._checkpoint())
        envelope = json.loads(path.read_text())
        envelope["payload"]["_nondeterministic"]["wall"] = 123.0
        path.write_text(json.dumps(envelope))
        loaded = registry.load_stage("a" * 64, "quadratic", "b" * 64)
        assert loaded.payload["_nondeterministic"]["wall"] == 123.0

    def test_missing_raises_not_found(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        with pytest.raises(ArtifactNotFoundError):
            registry.load_stage("a" * 64, "quadratic", "b" * 64)

    def test_tampered_identity_refused(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        checkpoint = self._checkpoint()
        path = registry.save_stage(checkpoint)
        # Misplace the file under another stage's identity.
        target = registry.stage_path("a" * 64, "core", "b" * 64)
        target.write_text(path.read_text())
        with pytest.raises(FingerprintMismatchError):
            registry.load_stage("a" * 64, "core", "b" * 64)

    def test_delete_stage(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        registry.save_stage(self._checkpoint())
        assert registry.delete_stage("a" * 64, "quadratic") == 1
        assert not registry.has_stage("a" * 64, "quadratic", "b" * 64)

    def test_stage_entries_sorted(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        first = self._checkpoint()
        second = self._checkpoint()
        second.stage = "core"
        registry.save_stage(first)
        registry.save_stage(second)
        entries = registry.stage_entries("a" * 64)
        assert [entry.stage for entry in entries] == ["core", "quadratic"]


class TestStopAfter:
    def test_interrupt_saves_checkpoints_up_to_boundary(
        self, tmp_path, toy_machine
    ):
        registry = ArtifactRegistry(tmp_path)
        backend = PortModelBackend(toy_machine)
        palmed = Palmed(
            backend,
            toy_machine.benchmarkable_instructions(),
            fast_config(),
            registry=registry,
        )
        with pytest.raises(PipelineInterrupted):
            palmed.run(stop_after="selection")
        from repro.measure import backend_fingerprint

        fingerprint = backend_fingerprint(backend)
        stages_present = {cp.stage for cp in registry.stage_entries(fingerprint)}
        assert stages_present == {"quadratic", "selection"}
