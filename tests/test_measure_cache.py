"""Tests for the persistent measurement cache (:mod:`repro.measure`).

Covers hit/miss accounting, on-disk persistence across cache instances,
content-fingerprint invalidation (machine model and noise seed changes),
bitwise-exact round-tripping through JSON, and graceful handling of corrupt
stores.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    MeasurementCache,
    MeasurementNoise,
    Microkernel,
    PortModelBackend,
    build_toy_machine,
    build_zen_like_machine,
)
from repro.measure import backend_fingerprint, kernel_key, machine_fingerprint
from repro.palmed import PalmedConfig
from repro.palmed.benchmarks import BenchmarkRunner


@pytest.fixture
def kernel(toy_instructions):
    return Microkernel({toy_instructions["ADDSS"]: 2, toy_instructions["BSR"]: 1})


class TestAccounting:
    def test_miss_then_hit(self, kernel):
        cache = MeasurementCache()
        assert cache.lookup("fp", kernel) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.store("fp", kernel, 1.5)
        assert cache.lookup("fp", kernel) == 1.5
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_hit_rate_without_lookups_is_zero(self):
        assert MeasurementCache().hit_rate == 0.0

    def test_len_counts_entries_across_fingerprints(self, kernel, toy_instructions):
        cache = MeasurementCache()
        other = Microkernel.single(toy_instructions["BSR"])
        cache.store("fp-a", kernel, 1.0)
        cache.store("fp-a", other, 2.0)
        cache.store("fp-b", kernel, 3.0)
        assert len(cache) == 3
        assert ("fp-a", kernel) in cache
        assert ("fp-b", other) not in cache

    def test_reset_counters_keeps_entries(self, kernel):
        cache = MeasurementCache()
        cache.store("fp", kernel, 1.0)
        cache.lookup("fp", kernel)
        cache.reset_counters()
        assert (cache.hits, cache.misses) == (0, 0)
        assert len(cache) == 1

    def test_summary_mentions_hit_rate(self, kernel):
        cache = MeasurementCache()
        cache.store("fp", kernel, 1.0)
        cache.lookup("fp", kernel)
        assert "hit rate 100.0%" in cache.summary()


class TestPersistence:
    def test_round_trip_across_instances(self, tmp_path, kernel):
        path = tmp_path / "cache.json"
        first = MeasurementCache(path)
        value = 2.0 / 3.0  # not exactly representable in decimal
        first.store("fp", kernel, value)
        first.save()

        second = MeasurementCache(path)
        loaded = second.lookup("fp", kernel)
        assert loaded == value  # bitwise identical through JSON

    def test_save_without_path_is_noop(self, kernel):
        cache = MeasurementCache()
        cache.store("fp", kernel, 1.0)
        cache.save()  # must not raise

    def test_missing_file_starts_empty(self, tmp_path):
        cache = MeasurementCache(tmp_path / "absent.json")
        assert len(cache) == 0

    def test_corrupt_file_warns_and_starts_empty(self, tmp_path, kernel):
        path = tmp_path / "cache.json"
        path.write_text("{ not json", encoding="utf-8")
        with pytest.warns(UserWarning, match="unreadable measurement cache"):
            cache = MeasurementCache(path)
        assert len(cache) == 0
        # And the cache stays usable (and can overwrite the bad file).
        cache.store("fp", kernel, 1.0)
        cache.save()
        assert MeasurementCache(path).lookup("fp", kernel) == 1.0

    def test_unknown_version_is_rejected(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 999, "entries": {}}), encoding="utf-8")
        with pytest.warns(UserWarning, match="unreadable measurement cache"):
            cache = MeasurementCache(path)
        assert len(cache) == 0

    def test_concurrent_writers_merge_instead_of_clobbering(self, tmp_path, kernel, toy_instructions):
        # Two cache instances share one path (two concurrent runs): the
        # second save must not wipe what the first one persisted.
        path = tmp_path / "cache.json"
        other = Microkernel.single(toy_instructions["BSR"])
        writer_a = MeasurementCache(path)
        writer_b = MeasurementCache(path)  # opened before A saved anything
        writer_a.store("fp", kernel, 1.0)
        writer_a.save()
        writer_b.store("fp", other, 2.0)
        writer_b.save()

        merged = MeasurementCache(path)
        assert merged.lookup("fp", kernel) == 1.0
        assert merged.lookup("fp", other) == 2.0

    def test_save_creates_parent_directories(self, tmp_path, kernel):
        path = tmp_path / "nested" / "dir" / "cache.json"
        cache = MeasurementCache(path)
        cache.store("fp", kernel, 1.0)
        cache.save()
        assert path.exists()


class TestFingerprints:
    def test_kernel_key_distinguishes_multiplicities(self, toy_instructions):
        addss = toy_instructions["ADDSS"]
        bsr = toy_instructions["BSR"]
        one = Microkernel({addss: 1, bsr: 1})
        two = Microkernel({addss: 2, bsr: 1})
        assert kernel_key(one) != kernel_key(two)
        assert kernel_key(two) == kernel_key(Microkernel({bsr: 1, addss: 2}))

    def test_machine_change_invalidates(self, toy_machine):
        zen = build_zen_like_machine()
        assert machine_fingerprint(toy_machine) != machine_fingerprint(zen)
        assert (
            backend_fingerprint(PortModelBackend(toy_machine))
            != backend_fingerprint(PortModelBackend(zen))
        )

    def test_noise_seed_change_invalidates(self, toy_machine):
        noisy_a = PortModelBackend(toy_machine, noise=MeasurementNoise(0.02, seed=0))
        noisy_b = PortModelBackend(toy_machine, noise=MeasurementNoise(0.02, seed=1))
        assert backend_fingerprint(noisy_a) != backend_fingerprint(noisy_b)

    def test_front_end_view_changes_fingerprint(self, toy_machine):
        with_fe = PortModelBackend(toy_machine, include_front_end=True)
        without_fe = PortModelBackend(toy_machine, include_front_end=False)
        assert backend_fingerprint(with_fe) != backend_fingerprint(without_fe)

    def test_fingerprint_is_stable_across_instances(self, toy_machine):
        a = PortModelBackend(toy_machine)
        b = PortModelBackend(build_toy_machine())
        assert backend_fingerprint(a) == backend_fingerprint(b)

    def test_backend_without_fingerprint_yields_none(self):
        class Anonymous:
            pass

        assert backend_fingerprint(Anonymous()) is None

    def test_measurement_latency_does_not_change_fingerprint(self, toy_machine):
        instant = PortModelBackend(toy_machine)
        slow = PortModelBackend(toy_machine, measurement_latency=0.01)
        assert backend_fingerprint(instant) == backend_fingerprint(slow)


class TestRunnerIntegration:
    """The cache as used by :class:`BenchmarkRunner` across runs."""

    def test_warm_runner_serves_from_cache(self, toy_machine, kernel, tmp_path):
        path = tmp_path / "cache.json"
        config = PalmedConfig(cache_path=str(path))

        cold = BenchmarkRunner(PortModelBackend(toy_machine), config)
        cold_value = cold.ipc(kernel)
        assert cold.num_benchmarks_measured == 1
        assert cold.num_benchmarks_cached == 0
        cold.flush_cache()

        warm_backend = PortModelBackend(toy_machine)
        warm = BenchmarkRunner(warm_backend, config)
        assert warm.ipc(kernel) == cold_value
        assert warm.num_benchmarks_measured == 0
        assert warm.num_benchmarks_cached == 1
        # The backend itself was never consulted.
        assert warm_backend.measurement_count == 0

    def test_changed_noise_seed_misses(self, toy_machine, kernel, tmp_path):
        path = tmp_path / "cache.json"
        config = PalmedConfig(cache_path=str(path))
        noise_a = MeasurementNoise(relative_stddev=0.02, seed=0)
        noise_b = MeasurementNoise(relative_stddev=0.02, seed=1)

        first = BenchmarkRunner(PortModelBackend(toy_machine, noise=noise_a), config)
        first.ipc(kernel)
        first.flush_cache()

        second_backend = PortModelBackend(toy_machine, noise=noise_b)
        second = BenchmarkRunner(second_backend, config)
        second.ipc(kernel)
        assert second.num_benchmarks_measured == 1
        assert second.num_benchmarks_cached == 0
        assert second_backend.measurement_count == 1

    def test_changed_machine_misses(self, toy_machine, kernel, tmp_path):
        path = tmp_path / "cache.json"
        config = PalmedConfig(cache_path=str(path))
        first = BenchmarkRunner(PortModelBackend(toy_machine), config)
        first.ipc(kernel)
        first.flush_cache()

        zen = build_zen_like_machine()
        zen_kernel = Microkernel.single(zen.benchmarkable_instructions()[0])
        second = BenchmarkRunner(PortModelBackend(zen), config)
        second.ipc(zen_kernel)
        assert second.num_benchmarks_cached == 0
        assert second.num_benchmarks_measured == 1
