"""Property-based suite for the rendezvous shard map.

The three properties the cluster's routing correctness leans on
(:mod:`repro.cluster.shard`):

* **deterministic across processes** — scores are pure ``blake2b``
  digests: the same node table and fingerprint produce the same
  assignment in this process, in a fresh subprocess with a different
  ``PYTHONHASHSEED``, and whatever order the node table was written in;
* **balanced within bounds** — over a fixed corpus of content-hash
  fingerprints, every node's primary share stays within generous
  uniformity bounds (no node starves, none is a hotspot);
* **minimally disturbed** — removing a node reassigns only the
  fingerprints it owned; adding a node only claims fingerprints for
  itself.  No unrelated key ever moves.

Like :mod:`test_roundtrip_property`, runs are derandomized so CI cannot
flake on an unlucky draw.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.cluster.shard import ShardMap, rendezvous_score  # noqa: E402

#: A fixed, content-derived fingerprint corpus: what registry keys look
#: like (hex content hashes), deterministic across runs and processes.
CORPUS = [
    hashlib.sha256(f"block-{index}".encode()).hexdigest() for index in range(600)
]

node_ids = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=12,
    ),
    min_size=2,
    max_size=8,
    unique=True,
)

fingerprints = st.sampled_from(CORPUS)


@settings(derandomize=True, max_examples=60, deadline=None)
@given(nodes=node_ids, fingerprint=fingerprints)
def test_assignment_deterministic_and_order_insensitive(nodes, fingerprint):
    """The same node *set* assigns identically, however it was listed."""
    forward = ShardMap(nodes, replicas=2)
    reversed_table = ShardMap(list(reversed(nodes)), replicas=2)
    assert forward.assign(fingerprint) == reversed_table.assign(fingerprint)
    assert forward.preference(fingerprint) == reversed_table.preference(
        fingerprint
    )
    # Recomputing is pure: no hidden per-instance or per-call state.
    assert forward.assign(fingerprint) == forward.assign(fingerprint)


@settings(derandomize=True, max_examples=60, deadline=None)
@given(nodes=node_ids, fingerprint=fingerprints)
def test_preference_is_total_and_assign_is_its_prefix(nodes, fingerprint):
    shard_map = ShardMap(nodes, replicas=2)
    preference = shard_map.preference(fingerprint)
    assert sorted(preference) == sorted(nodes)  # a permutation of the table
    assignment = shard_map.assign(fingerprint)
    assert assignment == preference[: shard_map.replicas]
    assert assignment[0] == shard_map.primary(fingerprint)
    assert len(set(assignment)) == len(assignment)  # replicas are distinct


@settings(derandomize=True, max_examples=25, deadline=None)
@given(nodes=node_ids)
def test_primary_shares_balanced_within_bounds(nodes):
    """Every node serves neither ~zero nor a multiple of its fair share.

    The corpus is fixed (content hashes, like real registry keys) and the
    bounds are generous — a quarter of the fair share up to 2.5x — so the
    property pins down "no starvation, no hotspot" without turning the
    test into a statistical flake.
    """
    shard_map = ShardMap(nodes, replicas=1)
    layout = shard_map.placement(CORPUS)
    fair = len(CORPUS) / len(nodes)
    for node_id, owned in layout.items():
        assert len(owned) >= fair / 4, (node_id, len(owned), fair)
        assert len(owned) <= fair * 2.5, (node_id, len(owned), fair)


@settings(derandomize=True, max_examples=40, deadline=None)
@given(nodes=node_ids)
def test_removing_a_node_disturbs_only_its_own_keys(nodes):
    full = ShardMap(nodes, replicas=1)
    removed = nodes[0]
    survivors = ShardMap(nodes[1:], replicas=1) if len(nodes) > 1 else None
    if survivors is None:
        return
    for fingerprint in CORPUS[:120]:
        before = full.primary(fingerprint)
        after = survivors.primary(fingerprint)
        if before != removed:
            assert after == before, (fingerprint, before, after)


@settings(derandomize=True, max_examples=40, deadline=None)
@given(nodes=node_ids, newcomer=st.text(min_size=1, max_size=12))
def test_adding_a_node_only_claims_keys_for_itself(nodes, newcomer):
    hypothesis.assume(newcomer not in nodes)
    before_map = ShardMap(nodes, replicas=1)
    after_map = ShardMap(list(nodes) + [newcomer], replicas=1)
    for fingerprint in CORPUS[:120]:
        before = before_map.primary(fingerprint)
        after = after_map.primary(fingerprint)
        assert after in (before, newcomer), (fingerprint, before, after)


def test_scores_identical_in_a_fresh_subprocess():
    """Cross-process determinism: the property the whole cluster rests on.

    Every coordinator (and restart) must compute the identical shard
    layout; a different ``PYTHONHASHSEED`` in the child rules out any
    accidental dependence on Python's randomized ``hash()``.
    """
    nodes = ["n0", "n1", "n2", "edge-γ"]
    sample = CORPUS[:50]
    local = {
        fingerprint: ShardMap(nodes, replicas=2).assign(fingerprint)
        for fingerprint in sample
    }
    script = (
        "import json, sys\n"
        "from repro.cluster.shard import ShardMap\n"
        "nodes, sample = json.load(sys.stdin)\n"
        "print(json.dumps({f: ShardMap(nodes, replicas=2).assign(f)"
        " for f in sample}))\n"
    )
    src = Path(__file__).resolve().parent.parent / "src"
    result = subprocess.run(
        [sys.executable, "-c", script],
        input=json.dumps([nodes, sample]),
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "12345"},
        check=True,
    )
    assert json.loads(result.stdout) == local
