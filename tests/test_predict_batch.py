"""Differential suite: ``predict_batch`` is bitwise-equal to scalar ``predict``.

The batch-prediction engine (:mod:`repro.predictors.batch`) carries the
same contract as the batched measurement layer: however a suite is
scheduled — scalar loop, on-the-fly lowering, pre-built
:class:`~repro.predictors.batch.SuiteMatrix` — the returned predictions
must be bitwise-identical floats.  These tests pin that down on random
kernels for every predictor family, plus the engine's structural
invariants (ρ matrix, suite lowering, edge cases).
"""

from __future__ import annotations

import random
import struct

import numpy as np
import pytest

from repro import Microkernel, PortModelBackend
from repro.predictors import (
    LlvmMcaPredictor,
    MappingMatrix,
    PalmedPredictor,
    PMEvoConfig,
    SuiteMatrix,
    UopsInfoPredictor,
    predict_batch_serial,
    train_pmevo,
)
from repro.workloads import generate_spec_like_suite


def bits(value):
    """Exact bit pattern of a float (distinguishes 0.0 from -0.0, etc.)."""
    return struct.pack("<d", value)


def assert_bitwise_equal(left, right):
    assert len(left) == len(right)
    for index, (a, b) in enumerate(zip(left, right)):
        assert (a.ipc is None) == (b.ipc is None), f"kernel {index}: {a} vs {b}"
        if a.ipc is not None:
            assert bits(a.ipc) == bits(b.ipc), f"kernel {index}: ipc bits differ"
        assert bits(a.supported_fraction) == bits(b.supported_fraction), (
            f"kernel {index}: fraction bits differ"
        )


def random_kernels(instructions, n, seed, max_distinct=12):
    """Random kernels with fractional multiplicities (the paper rounds to 5%)."""
    rng = random.Random(seed)
    kernels = []
    for _ in range(n):
        distinct = rng.randint(1, min(max_distinct, len(instructions)))
        chosen = rng.sample(list(instructions), distinct)
        kernels.append(
            Microkernel(
                {
                    inst: rng.choice([0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 7.0])
                    for inst in chosen
                }
            )
        )
    return kernels


@pytest.fixture(scope="module")
def skl_kernels(small_skl_machine):
    return random_kernels(small_skl_machine.benchmarkable_instructions(), 300, seed=11)


class TestDifferentialBitwise:
    def test_palmed_predictor(self, small_skl_machine, skl_kernels):
        predictor = PalmedPredictor(
            small_skl_machine.true_conjunctive(include_front_end=True)
        )
        scalar = [predictor.predict(kernel) for kernel in skl_kernels]
        assert_bitwise_equal(scalar, predictor.predict_batch(skl_kernels))
        assert_bitwise_equal(scalar, predictor.predict_batch(SuiteMatrix(skl_kernels)))

    def test_palmed_predictor_partial_coverage(self, small_skl_machine, skl_kernels):
        """Kernels with unmapped instructions: fractions and None cases match."""
        instructions = small_skl_machine.benchmarkable_instructions()
        mapping = small_skl_machine.true_conjunctive(include_front_end=True)
        predictor = PalmedPredictor(mapping.restricted(instructions[: len(instructions) // 3]))
        scalar = [predictor.predict(kernel) for kernel in skl_kernels]
        assert any(p.ipc is None for p in scalar), "want some unsupported kernels"
        assert any(0 < p.supported_fraction < 1 for p in scalar)
        assert_bitwise_equal(scalar, predictor.predict_batch(skl_kernels))

    def test_uops_info_predictor(self, small_skl_machine, skl_kernels):
        predictor = UopsInfoPredictor(
            small_skl_machine,
            supported_instructions=small_skl_machine.benchmarkable_instructions()[:30],
        )
        scalar = [predictor.predict(kernel) for kernel in skl_kernels]
        assert_bitwise_equal(scalar, predictor.predict_batch(skl_kernels))

    def test_serial_fallback_predictors(self, small_skl_machine, skl_kernels):
        """Expert analyzers use the generic loop — trivially identical."""
        predictor = LlvmMcaPredictor(small_skl_machine, unsupported_rate=0.2)
        scalar = [predictor.predict(kernel) for kernel in skl_kernels]
        assert_bitwise_equal(scalar, predictor.predict_batch(skl_kernels))
        assert_bitwise_equal(scalar, predict_batch_serial(predictor, skl_kernels))

    def test_pmevo_predictor(self, toy_machine, skl_kernels):
        backend = PortModelBackend(toy_machine)
        config = PMEvoConfig(
            num_ports=3, population_size=20, generations=5, coverage_fraction=0.5, seed=0
        )
        predictor = train_pmevo(backend, toy_machine.benchmarkable_instructions(), config)
        kernels = random_kernels(toy_machine.benchmarkable_instructions(), 100, seed=3)
        scalar = [predictor.predict(kernel) for kernel in kernels]
        assert_bitwise_equal(scalar, predictor.predict_batch(kernels))

    def test_generated_suite(self, small_skl_machine):
        """The real workload shape: a generated SPEC-like suite."""
        suite = generate_spec_like_suite(
            small_skl_machine.instructions, n_blocks=200, seed=5
        )
        kernels = [block.kernel for block in suite]
        predictor = PalmedPredictor(
            small_skl_machine.true_conjunctive(include_front_end=True)
        )
        scalar = [predictor.predict(kernel) for kernel in kernels]
        assert_bitwise_equal(scalar, predictor.predict_batch(SuiteMatrix(kernels)))

    def test_batch_independence(self, small_skl_machine, skl_kernels):
        """Results must not depend on which kernels share a batch."""
        predictor = PalmedPredictor(
            small_skl_machine.true_conjunctive(include_front_end=True)
        )
        whole = predictor.predict_batch(skl_kernels)
        halves = predictor.predict_batch(
            skl_kernels[: len(skl_kernels) // 2]
        ) + predictor.predict_batch(skl_kernels[len(skl_kernels) // 2 :])
        singles = [predictor.predict_batch([kernel])[0] for kernel in skl_kernels]
        assert_bitwise_equal(whole, halves)
        assert_bitwise_equal(whole, singles)


class TestEdgeCases:
    """Degenerate inputs, bitwise-differential for every predictor family.

    Each case compares the compiled batch path, the generic serial
    fallback and the scalar loop on the same kernels.
    """

    @pytest.fixture(scope="class")
    def predictors(self, small_skl_machine, toy_machine):
        """One predictor per family: compiled full/partial, oracle, expert."""
        instructions = small_skl_machine.benchmarkable_instructions()
        mapping = small_skl_machine.true_conjunctive(include_front_end=True)
        return [
            PalmedPredictor(mapping),
            PalmedPredictor(
                mapping.restricted(instructions[: len(instructions) // 4]),
                name="Palmed-partial",
            ),
            UopsInfoPredictor(
                small_skl_machine, supported_instructions=instructions[:20]
            ),
            LlvmMcaPredictor(small_skl_machine, unsupported_rate=0.3),
        ]

    def test_empty_suite_for_every_predictor(self, predictors):
        for predictor in predictors:
            assert predictor.predict_batch([]) == []
            assert predictor.predict_batch(SuiteMatrix([])) == []
            assert predict_batch_serial(predictor, []) == []

    def test_zero_supported_instructions_kernel(self, predictors, small_skl_machine):
        """Kernels made only of instructions each predictor cannot model."""
        instructions = small_skl_machine.benchmarkable_instructions()
        for predictor in predictors:
            unsupported = [
                inst for inst in instructions if not predictor.supports(inst)
            ]
            if not unsupported:
                continue
            kernels = random_kernels(unsupported, 10, seed=21)
            scalar = [predictor.predict(kernel) for kernel in kernels]
            assert all(p.ipc is None for p in scalar)
            assert all(bits(p.supported_fraction) == bits(0.0) for p in scalar)
            assert_bitwise_equal(scalar, predictor.predict_batch(kernels))
            assert_bitwise_equal(scalar, predictor.predict_batch(SuiteMatrix(kernels)))
            assert_bitwise_equal(scalar, predict_batch_serial(predictor, kernels))

    def test_single_instruction_kernels(self, predictors, small_skl_machine):
        """One kernel per instruction, one instruction per kernel."""
        kernels = [
            Microkernel.single(inst, count)
            for inst in small_skl_machine.benchmarkable_instructions()
            for count in (0.25, 1.0, 7.0)
        ]
        for predictor in predictors:
            scalar = [predictor.predict(kernel) for kernel in kernels]
            assert_bitwise_equal(scalar, predictor.predict_batch(kernels))
            assert_bitwise_equal(scalar, predictor.predict_batch(SuiteMatrix(kernels)))
            assert_bitwise_equal(scalar, predict_batch_serial(predictor, kernels))
            singles = [predictor.predict_batch([kernel])[0] for kernel in kernels]
            assert_bitwise_equal(scalar, singles)


class TestSuiteMatrix:
    def test_is_a_sequence_of_its_kernels(self, skl_kernels):
        lowered = SuiteMatrix(skl_kernels)
        assert len(lowered) == len(skl_kernels)
        assert list(lowered) == skl_kernels
        assert lowered[0] is skl_kernels[0]

    def test_coo_matches_kernel_counts(self, skl_kernels):
        lowered = SuiteMatrix(skl_kernels)
        assert lowered.kernel_ids.shape == lowered.counts.shape
        # Rebuild kernel 0's counts from the triplets.
        first = {
            lowered.instructions[col]: count
            for k, col, count in zip(
                lowered.kernel_ids, lowered.column_ids, lowered.counts
            )
            if k == 0
        }
        assert first == skl_kernels[0].counts

    def test_sizes_match(self, skl_kernels):
        lowered = SuiteMatrix(skl_kernels)
        for size, kernel in zip(lowered.sizes, skl_kernels):
            assert bits(float(size)) == bits(kernel.size)

    def test_empty_suite(self):
        lowered = SuiteMatrix([])
        assert lowered.num_kernels == 0
        assert lowered.counts.size == 0


class TestMappingMatrix:
    def test_rho_matrix_matches_mapping(self, toy_machine):
        mapping = toy_machine.true_conjunctive(include_front_end=True)
        matrix = MappingMatrix(mapping)
        rho = matrix.rho_matrix()
        assert rho.shape == (len(matrix.resources), len(matrix.instructions))
        for col, instruction in enumerate(matrix.instructions):
            for row, resource in enumerate(matrix.resources):
                assert rho[row, col] == pytest.approx(
                    mapping.rho(instruction, resource)
                )

    def test_loads_equal_rho_times_counts(self, toy_machine):
        """The lowering really is the matrix form of Definition IV.2."""
        mapping = toy_machine.true_conjunctive(include_front_end=True)
        matrix = MappingMatrix(mapping)
        kernels = random_kernels(toy_machine.benchmarkable_instructions(), 50, seed=9)
        rho = matrix.rho_matrix()
        column = {inst: i for i, inst in enumerate(matrix.instructions)}
        for kernel in kernels:
            counts = np.zeros(len(matrix.instructions))
            for inst, count in kernel.items():
                counts[column[inst]] = count
            loads = rho @ counts
            assert float(loads.max()) == pytest.approx(mapping.cycles(kernel))

    def test_supported_restriction(self, toy_machine):
        mapping = toy_machine.true_conjunctive(include_front_end=True)
        allowed = toy_machine.benchmarkable_instructions()[:2]
        matrix = MappingMatrix(mapping, supported=allowed)
        assert set(matrix.instructions) == set(allowed)
        other = toy_machine.benchmarkable_instructions()[2]
        assert not matrix.supports(other)

    def test_empty_batch(self, toy_machine):
        matrix = MappingMatrix(toy_machine.true_conjunctive())
        assert matrix.predict_batch([]) == []

    def test_fully_unsupported_batch(self, toy_machine, small_skl_machine):
        """Kernels whose instructions the mapping has never seen."""
        matrix = MappingMatrix(toy_machine.true_conjunctive())
        foreign = random_kernels(
            [
                inst
                for inst in small_skl_machine.benchmarkable_instructions()
                if not matrix.supports(inst)
            ][:10],
            20,
            seed=2,
        )
        for prediction in matrix.predict_batch(foreign):
            assert prediction.ipc is None
            assert prediction.supported_fraction == 0.0
