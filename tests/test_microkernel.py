"""Tests for the Microkernel multiset."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Extension, Instruction, InstructionKind
from repro.mapping import Microkernel


def make_inst(name: str) -> Instruction:
    return Instruction(name, InstructionKind.INT_ALU, Extension.BASE, 64)


A = make_inst("A_OP")
B = make_inst("B_OP")
C = make_inst("C_OP")


class TestConstruction:
    def test_single(self):
        kernel = Microkernel.single(A)
        assert kernel.size == 1.0
        assert kernel.multiplicity(A) == 1.0

    def test_single_with_count(self):
        kernel = Microkernel.single(A, 2.5)
        assert kernel.size == 2.5

    def test_from_instructions_counts_repetitions(self):
        kernel = Microkernel.from_instructions([A, B, A, A])
        assert kernel.multiplicity(A) == 3.0
        assert kernel.multiplicity(B) == 1.0

    def test_pair_constructor(self):
        kernel = Microkernel.pair(A, 2, B, 1)
        assert kernel.size == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Microkernel({})

    def test_zero_counts_dropped(self):
        kernel = Microkernel({A: 1.0, B: 0.0})
        assert B not in kernel
        assert A in kernel

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            Microkernel({A: 0.0})

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Microkernel({A: -1.0})

    def test_non_instruction_key_rejected(self):
        with pytest.raises(TypeError):
            Microkernel({"ADD": 1.0})  # type: ignore[dict-item]


class TestAccessors:
    def test_instructions_sorted(self):
        kernel = Microkernel({C: 1, A: 1, B: 1})
        assert [inst.name for inst in kernel.instructions] == ["A_OP", "B_OP", "C_OP"]

    def test_size_and_distinct(self):
        kernel = Microkernel({A: 2, B: 3})
        assert kernel.size == 5.0
        assert kernel.num_distinct == 2
        assert len(kernel) == 2

    def test_multiplicity_of_absent_instruction_is_zero(self):
        kernel = Microkernel({A: 2})
        assert kernel.multiplicity(B) == 0.0

    def test_items_sorted(self):
        kernel = Microkernel({B: 2, A: 1})
        assert [(inst.name, count) for inst, count in kernel.items()] == [
            ("A_OP", 1.0),
            ("B_OP", 2.0),
        ]

    def test_counts_returns_copy(self):
        kernel = Microkernel({A: 1})
        counts = kernel.counts
        counts[A] = 99
        assert kernel.multiplicity(A) == 1.0


class TestAlgebra:
    def test_scaled(self):
        kernel = Microkernel({A: 2, B: 1}).scaled(3)
        assert kernel.multiplicity(A) == 6.0
        assert kernel.multiplicity(B) == 3.0

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Microkernel({A: 1}).scaled(0)

    def test_combined_adds_counts(self):
        kernel = Microkernel({A: 1, B: 1}).combined(Microkernel({B: 2, C: 1}))
        assert kernel.multiplicity(B) == 3.0
        assert kernel.multiplicity(C) == 1.0

    def test_add_operator(self):
        kernel = Microkernel({A: 1}) + Microkernel({A: 1})
        assert kernel.multiplicity(A) == 2.0

    def test_rounded(self):
        kernel = Microkernel({A: 1.0000004}).rounded()
        assert kernel.multiplicity(A) == 1.0


class TestEqualityAndNotation:
    def test_equality_and_hash(self):
        assert Microkernel({A: 2, B: 1}) == Microkernel({B: 1, A: 2})
        assert hash(Microkernel({A: 2, B: 1})) == hash(Microkernel({B: 1, A: 2}))

    def test_inequality(self):
        assert Microkernel({A: 2}) != Microkernel({A: 3})

    def test_usable_as_dict_key(self):
        table = {Microkernel({A: 1}): "x"}
        assert table[Microkernel({A: 1})] == "x"

    def test_notation(self):
        assert Microkernel({A: 2, B: 1}).notation() == "A_OP^2 B_OP"
        assert "A_OP^0.5" in Microkernel({A: 0.5}).notation()

    def test_repr_contains_notation(self):
        assert "A_OP" in repr(Microkernel({A: 1}))


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        counts=st.dictionaries(
            st.sampled_from([A, B, C]),
            st.floats(min_value=0.1, max_value=10.0),
            min_size=1,
            max_size=3,
        ),
        factor=st.floats(min_value=0.1, max_value=5.0),
    )
    def test_scaling_scales_size_linearly(self, counts, factor):
        kernel = Microkernel(counts)
        scaled = kernel.scaled(factor)
        assert scaled.size == pytest.approx(kernel.size * factor)

    @settings(max_examples=50, deadline=None)
    @given(
        left=st.dictionaries(
            st.sampled_from([A, B, C]), st.floats(min_value=0.1, max_value=5.0),
            min_size=1, max_size=3,
        ),
        right=st.dictionaries(
            st.sampled_from([A, B, C]), st.floats(min_value=0.1, max_value=5.0),
            min_size=1, max_size=3,
        ),
    )
    def test_combination_is_commutative_and_additive(self, left, right):
        k_left = Microkernel(left)
        k_right = Microkernel(right)
        combined = k_left + k_right
        assert combined == k_right + k_left
        assert combined.size == pytest.approx(k_left.size + k_right.size)
