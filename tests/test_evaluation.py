"""Tests for the evaluation metrics, harness, heatmaps and reporting."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Microkernel, PortModelBackend
from repro.evaluation import (
    PAPER_FIG4B,
    build_heatmap,
    coverage,
    evaluate_predictors,
    format_accuracy_table,
    format_comparison_with_paper,
    format_table2_comparison,
    kendall_tau,
    rms_error,
)
from repro.machines import build_toy_machine
from repro.machines.toy import TOY_INSTRUCTIONS
from repro.predictors import PalmedPredictor, UopsInfoPredictor
from repro.workloads import BasicBlock, BenchmarkSuite


class TestRmsError:
    def test_perfect_prediction_is_zero(self):
        assert rms_error([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_known_value(self):
        # Single sample, 50% over-prediction.
        assert rms_error([3.0], [2.0]) == pytest.approx(0.5)

    def test_weighting(self):
        # The heavily weighted exact sample dominates the error.
        unweighted = rms_error([2.0, 4.0], [2.0, 2.0])
        weighted = rms_error([2.0, 4.0], [2.0, 2.0], weights=[99.0, 1.0])
        assert weighted < unweighted

    def test_input_validation(self):
        with pytest.raises(ValueError):
            rms_error([], [])
        with pytest.raises(ValueError):
            rms_error([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            rms_error([1.0], [0.0])
        with pytest.raises(ValueError):
            rms_error([1.0], [1.0], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            rms_error([1.0], [1.0], weights=[0.0])

    @settings(max_examples=40, deadline=None)
    @given(
        natives=st.lists(st.floats(min_value=0.1, max_value=8.0), min_size=1, max_size=20),
        scale=st.floats(min_value=0.5, max_value=2.0),
    )
    def test_uniform_scaling_gives_constant_relative_error(self, natives, scale):
        predicted = [value * scale for value in natives]
        assert rms_error(predicted, natives) == pytest.approx(abs(scale - 1.0), rel=1e-6)


class TestKendallTau:
    def test_perfect_correlation(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert kendall_tau([4, 3, 2, 1], [1, 2, 3, 4]) == pytest.approx(-1.0)

    def test_matches_scipy(self):
        from scipy import stats

        predicted = [1.0, 3.0, 2.0, 5.0, 4.0, 4.0]
        native = [1.0, 2.0, 3.0, 4.0, 5.0, 4.5]
        expected = stats.kendalltau(predicted, native).statistic
        assert kendall_tau(predicted, native) == pytest.approx(expected, abs=1e-9)

    def test_constant_sequence_returns_zero(self):
        assert kendall_tau([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            kendall_tau([1.0], [1.0])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=15))
    def test_bounded_in_minus_one_one(self, values):
        reference = list(range(len(values)))
        tau = kendall_tau(values, reference)
        assert -1.0 - 1e-9 <= tau <= 1.0 + 1e-9


class TestCoverage:
    def test_basic(self):
        assert coverage(50, 100) == 0.5
        assert coverage(0, 10) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage(1, 0)
        with pytest.raises(ValueError):
            coverage(5, 4)
        with pytest.raises(ValueError):
            coverage(-1, 4)


@pytest.fixture(scope="module")
def toy_evaluation():
    machine = build_toy_machine()
    backend = PortModelBackend(machine)
    addss = TOY_INSTRUCTIONS["ADDSS"]
    bsr = TOY_INSTRUCTIONS["BSR"]
    divps = TOY_INSTRUCTIONS["DIVPS"]
    suite = BenchmarkSuite(
        "toy-suite",
        [
            BasicBlock("b0", Microkernel({addss: 2, bsr: 1}), weight=5.0),
            BasicBlock("b1", Microkernel({addss: 1, bsr: 2}), weight=2.0),
            BasicBlock("b2", Microkernel({divps: 2, addss: 2}), weight=1.0),
            BasicBlock("b3", Microkernel({bsr: 1, divps: 1}), weight=1.0),
        ],
    )
    perfect = PalmedPredictor(machine.true_conjunctive(include_front_end=True), name="Palmed")
    partial = PalmedPredictor(
        machine.true_conjunctive(include_front_end=True).restricted([addss, bsr]),
        name="partial",
    )
    uops = UopsInfoPredictor(machine)
    result = evaluate_predictors(backend, suite, [perfect, partial, uops], machine_name="toy")
    return machine, suite, result


class TestHarness:
    def test_record_count(self, toy_evaluation):
        _, suite, result = toy_evaluation
        assert len(result.records) == len(suite)
        assert result.suite_name == "toy-suite"

    def test_perfect_predictor_metrics(self, toy_evaluation):
        _, _, result = toy_evaluation
        metrics = result.metrics("Palmed")
        assert metrics.coverage == pytest.approx(1.0)
        assert metrics.rms_error == pytest.approx(0.0, abs=1e-9)
        assert metrics.kendall_tau > 0.9

    def test_partial_predictor_coverage(self, toy_evaluation):
        _, _, result = toy_evaluation
        metrics = result.metrics("partial")
        assert metrics.coverage == pytest.approx(1.0)  # degraded mode still processes
        assert metrics.rms_error > 0.0

    def test_ratios_for_heatmap(self, toy_evaluation):
        _, _, result = toy_evaluation
        ratios = result.ratios("Palmed")
        assert len(ratios) == len(result.records)
        assert all(ratio == pytest.approx(1.0) for ratio in ratios)

    def test_all_metrics_lists_every_tool(self, toy_evaluation):
        _, _, result = toy_evaluation
        tools = {metrics.tool for metrics in result.all_metrics()}
        assert tools == {"Palmed", "partial", "uops.info"}


class TestHeatmap:
    def test_perfect_tool_mass_on_diagonal(self, toy_evaluation):
        _, _, result = toy_evaluation
        heatmap = build_heatmap(result, "Palmed", x_bins=10, y_bins=10)
        assert heatmap.total_weight == pytest.approx(9.0)
        assert heatmap.mass_within(0.9, 1.1) == pytest.approx(1.0)
        # The mean ratio is computed from bin centers, so it can be off by up
        # to half a bin width (0.1 here) even for a perfect predictor.
        assert heatmap.mean_ratio() == pytest.approx(1.0, abs=0.11)

    def test_ascii_rendering(self, toy_evaluation):
        _, _, result = toy_evaluation
        heatmap = build_heatmap(result, "Palmed", x_bins=8, y_bins=6)
        text = heatmap.render_ascii()
        assert len(text.splitlines()) == 6

    def test_empty_tool(self, toy_evaluation):
        _, _, result = toy_evaluation
        heatmap = build_heatmap(result, "nonexistent-tool")
        assert heatmap.total_weight == 0.0
        assert math.isnan(heatmap.mean_ratio())


class TestReporting:
    def test_accuracy_table_contains_all_tools(self, toy_evaluation):
        _, _, result = toy_evaluation
        table = format_accuracy_table([result])
        assert "Palmed" in table and "uops.info" in table
        assert "Err. (%)" in table

    def test_paper_comparison_line(self, toy_evaluation):
        _, _, result = toy_evaluation
        line = format_comparison_with_paper(result.metrics("Palmed"), "SKL-SP", "SPEC2017")
        assert "paper" in line and "7.8" in line

    def test_paper_comparison_unknown_cell(self, toy_evaluation):
        _, _, result = toy_evaluation
        line = format_comparison_with_paper(result.metrics("partial"), "SKL-SP", "SPEC2017")
        assert "not reported" in line

    def test_table2_comparison(self):
        text = format_table2_comparison({"Resources found": 7}, "SKL-SP")
        assert "Resources found" in text
        assert "17" in text and "7" in text

    def test_paper_reference_table_covers_both_machines(self):
        machines = {key[0] for key in PAPER_FIG4B}
        assert machines == {"SKL-SP", "ZEN1"}
