"""Tests for the disjunctive and conjunctive mapping models (Sec. IV)."""

from __future__ import annotations

import pytest

from repro.isa import Extension, Instruction, InstructionKind
from repro.mapping import (
    ConjunctiveResourceMapping,
    DisjunctivePortMapping,
    Microkernel,
    MicroOp,
    UnknownInstructionError,
)


def make_inst(name: str) -> Instruction:
    return Instruction(name, InstructionKind.FP_ADD, Extension.SSE, 128)


ADDSS = make_inst("T_ADDSS")
BSR = make_inst("T_BSR")
DIVPS = make_inst("T_DIVPS")
STORE = make_inst("T_STORE")


@pytest.fixture
def simple_disjunctive() -> DisjunctivePortMapping:
    return DisjunctivePortMapping(
        ports=("p0", "p1", "p6"),
        mapping={
            ADDSS: (MicroOp.on("p0", "p1"),),
            BSR: (MicroOp.on("p1"),),
            DIVPS: (MicroOp.on("p0", occupancy=4.0),),
            STORE: (MicroOp.on("p0", "p6"), MicroOp.on("p6")),
        },
    )


class TestMicroOp:
    def test_requires_ports(self):
        with pytest.raises(ValueError):
            MicroOp(frozenset())

    def test_requires_positive_occupancy(self):
        with pytest.raises(ValueError):
            MicroOp.on("p0", occupancy=0.0)

    def test_on_constructor(self):
        uop = MicroOp.on("p1", "p0")
        assert uop.ports == frozenset({"p0", "p1"})
        assert uop.occupancy == 1.0


class TestDisjunctiveMapping:
    def test_validation_of_unknown_ports(self):
        with pytest.raises(ValueError):
            DisjunctivePortMapping(("p0",), {ADDSS: (MicroOp.on("p9"),)})

    def test_validation_of_empty_uop_list(self):
        with pytest.raises(ValueError):
            DisjunctivePortMapping(("p0",), {ADDSS: ()})

    def test_duplicate_port_names_rejected(self):
        with pytest.raises(ValueError):
            DisjunctivePortMapping(("p0", "p0"), {ADDSS: (MicroOp.on("p0"),)})

    def test_single_instruction_throughput(self, simple_disjunctive):
        # ADDSS can dual-issue on p0/p1.
        assert simple_disjunctive.ipc(Microkernel.single(ADDSS, 2)) == pytest.approx(2.0)
        # BSR is limited to p1.
        assert simple_disjunctive.ipc(Microkernel.single(BSR, 2)) == pytest.approx(1.0)

    def test_non_pipelined_occupancy(self, simple_disjunctive):
        # The divider occupies p0 for 4 cycles per instruction.
        assert simple_disjunctive.ipc(Microkernel.single(DIVPS)) == pytest.approx(0.25)

    def test_paper_example_throughputs(self, simple_disjunctive):
        assert simple_disjunctive.ipc(Microkernel({ADDSS: 2, BSR: 1})) == pytest.approx(2.0)
        assert simple_disjunctive.ipc(Microkernel({ADDSS: 1, BSR: 2})) == pytest.approx(1.5)

    def test_multi_uop_instruction(self, simple_disjunctive):
        # STORE = one µOP on p0/p6 plus one µOP on p6: the scheduler routes
        # the flexible µOPs to p0, so two stores take 2 cycles (p6 holds the
        # two fixed µOPs), not 4.
        assert simple_disjunctive.cycles(Microkernel.single(STORE, 2)) == pytest.approx(2.0)
        assert simple_disjunctive.ipc(Microkernel.single(STORE, 2)) == pytest.approx(1.0)

    def test_optimal_assignment_is_consistent(self, simple_disjunctive):
        kernel = Microkernel({ADDSS: 2, BSR: 1})
        assignment = simple_disjunctive.optimal_assignment(kernel)
        total_addss = sum(
            value for (inst, _, _), value in assignment.items() if inst == ADDSS
        )
        assert total_addss == pytest.approx(2.0)

    def test_unknown_instruction_raises(self, simple_disjunctive):
        other = make_inst("T_OTHER")
        with pytest.raises(KeyError):
            simple_disjunctive.cycles(Microkernel.single(other))

    def test_port_sets_and_restriction(self, simple_disjunctive):
        assert frozenset({"p1"}) in simple_disjunctive.port_sets()
        restricted = simple_disjunctive.restricted([ADDSS, BSR])
        assert set(restricted.instructions) == {ADDSS, BSR}


class TestConjunctiveMapping:
    @pytest.fixture
    def fig1b_mapping(self) -> ConjunctiveResourceMapping:
        """The (non-normalized) mapping of Fig. 1b restricted to ADDSS/BSR."""
        return ConjunctiveResourceMapping(
            resources={"r1": 1.0, "r01": 2.0, "r016": 3.0},
            usage={
                ADDSS: {"r01": 1.0, "r016": 1.0},
                BSR: {"r1": 1.0, "r01": 1.0, "r016": 1.0},
            },
        )

    def test_paper_worked_example(self, fig1b_mapping):
        # Section IV: t(ADDSS^2 BSR) = 1.5 cycles, throughput 2 IPC.
        kernel = Microkernel({ADDSS: 2, BSR: 1})
        assert fig1b_mapping.cycles(kernel) == pytest.approx(1.5)
        assert fig1b_mapping.ipc(kernel) == pytest.approx(2.0)
        # t(ADDSS BSR^2) = 2 cycles (bottleneck r1), throughput 1.5 IPC.
        kernel2 = Microkernel({ADDSS: 1, BSR: 2})
        assert fig1b_mapping.cycles(kernel2) == pytest.approx(2.0)
        assert fig1b_mapping.ipc(kernel2) == pytest.approx(1.5)
        assert fig1b_mapping.bottlenecks(kernel2) == ("r1",)

    def test_normalization_preserves_throughput(self, fig1b_mapping):
        normalized = fig1b_mapping.normalized()
        kernel = Microkernel({ADDSS: 2, BSR: 1})
        assert normalized.cycles(kernel) == pytest.approx(fig1b_mapping.cycles(kernel))
        assert normalized.throughput_of("r01") == 1.0
        assert normalized.rho(ADDSS, "r01") == pytest.approx(0.5)
        assert normalized.rho(ADDSS, "r016") == pytest.approx(1.0 / 3.0)

    def test_rho_of_unused_resource_is_zero(self, fig1b_mapping):
        assert fig1b_mapping.rho(ADDSS, "r1") == 0.0

    def test_unknown_instruction_raises(self, fig1b_mapping):
        with pytest.raises(UnknownInstructionError):
            fig1b_mapping.cycles(Microkernel.single(DIVPS))

    def test_unknown_resource_in_usage_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveResourceMapping({"r0": 1.0}, {ADDSS: {"r9": 1.0}})

    def test_non_positive_throughput_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveResourceMapping({"r0": 0.0}, {})

    def test_negative_usage_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveResourceMapping({"r0": 1.0}, {ADDSS: {"r0": -1.0}})

    def test_with_resource_adds_front_end(self, fig1b_mapping):
        # A narrow (1.5-wide) front-end becomes the bottleneck for ADDSS-only
        # kernels, which are otherwise limited to 2 IPC by the r01 pressure.
        extended = fig1b_mapping.with_resource(
            "FrontEnd", 1.5, {ADDSS: 1.0, BSR: 1.0}
        )
        assert "FrontEnd" in extended.resources
        kernel = Microkernel({ADDSS: 8})
        assert extended.ipc(kernel) == pytest.approx(1.5)
        assert fig1b_mapping.ipc(kernel) == pytest.approx(2.0)
        assert extended.bottlenecks(kernel) == ("FrontEnd",)

    def test_with_resource_duplicate_rejected(self, fig1b_mapping):
        with pytest.raises(ValueError):
            fig1b_mapping.with_resource("r1", 1.0, {})

    def test_with_instruction(self, fig1b_mapping):
        extended = fig1b_mapping.with_instruction(DIVPS, {"r01": 2.0})
        assert extended.supports(DIVPS)
        assert extended.rho(DIVPS, "r01") == pytest.approx(1.0)

    def test_restricted(self, fig1b_mapping):
        restricted = fig1b_mapping.restricted([ADDSS])
        assert restricted.supports(ADDSS)
        assert not restricted.supports(BSR)
        with pytest.raises(UnknownInstructionError):
            fig1b_mapping.restricted([DIVPS])

    def test_serialization_round_trip(self, fig1b_mapping):
        payload = fig1b_mapping.to_json()
        recovered = ConjunctiveResourceMapping.from_json(payload)
        kernel = Microkernel({ADDSS: 2, BSR: 1})
        assert recovered.ipc(kernel) == pytest.approx(fig1b_mapping.ipc(kernel))
        assert set(recovered.resources) == set(fig1b_mapping.resources)

    def test_table_rendering(self, fig1b_mapping):
        table = fig1b_mapping.table()
        assert "T_ADDSS" in table
        assert "r01" in table

    def test_load_per_resource(self, fig1b_mapping):
        loads = fig1b_mapping.load_per_resource(Microkernel({ADDSS: 2, BSR: 1}))
        assert loads["r01"] == pytest.approx(1.5)
        assert loads["r1"] == pytest.approx(1.0)
        assert loads["r016"] == pytest.approx(1.0)
