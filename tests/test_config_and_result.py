"""Tests for PalmedConfig validation and the result/stats objects."""

from __future__ import annotations

import pytest

from repro.palmed import PalmedConfig
from repro.palmed.result import PalmedStats


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = PalmedConfig()
        assert config.low_ipc_threshold == pytest.approx(0.95)

    def test_n_basic_bounds(self):
        with pytest.raises(ValueError):
            PalmedConfig(n_basic=1)
        with pytest.raises(ValueError):
            PalmedConfig(n_basic_cap=1)
        assert PalmedConfig(n_basic=None).n_basic is None

    def test_epsilon_bounds(self):
        with pytest.raises(ValueError):
            PalmedConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            PalmedConfig(epsilon=1.0)

    def test_lp2_mode_validation(self):
        with pytest.raises(ValueError):
            PalmedConfig(lp2_mode="magic")
        with pytest.raises(ValueError):
            PalmedConfig(lpaux_mode="magic")

    def test_max_resources_validation(self):
        with pytest.raises(ValueError):
            PalmedConfig(max_resources=1)

    def test_repeat_validation(self):
        with pytest.raises(ValueError):
            PalmedConfig(m_repeat=1)
        with pytest.raises(ValueError):
            PalmedConfig(l_repeat=0)

    def test_target_basic_count(self):
        auto = PalmedConfig(n_basic=None, n_basic_cap=10)
        assert auto.target_basic_count(6) == 6
        assert auto.target_basic_count(25) == 10
        explicit = PalmedConfig(n_basic=4)
        assert explicit.target_basic_count(25) == 4

    def test_fast_test_config_is_valid_and_cheaper(self):
        config = PalmedConfig().for_fast_tests()
        assert config.lp1_max_iterations <= PalmedConfig().lp1_max_iterations
        assert config.lp1_time_limit <= PalmedConfig().lp1_time_limit


class TestStatsFormatting:
    def test_table_contains_all_rows(self):
        stats = PalmedStats(
            machine_name="SKL-like",
            num_instructions_total=100,
            num_benchmarkable=95,
            num_instructions_mapped=90,
            num_basic_instructions=12,
            num_resources=9,
            num_benchmarks=1234,
            num_equivalence_classes=14,
            num_low_ipc=3,
            lp1_iterations=2,
            benchmarking_time=1.5,
            lp_time=20.0,
            total_time=22.0,
        )
        table = stats.format_table()
        assert "SKL-like" in table
        assert "1234" in table
        assert "Resources found" in table
        rows = dict(stats.as_table_rows())
        assert rows["Instructions mapped"] == "90"
        assert rows["Basic instructions"] == "12"
