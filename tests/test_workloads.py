"""Tests for the synthetic basic-block suites."""

from __future__ import annotations

import pytest

from repro import Microkernel, PortModelBackend
from repro.isa import Extension, Instruction, InstructionKind, build_default_isa
from repro.workloads import (
    BasicBlock,
    BenchmarkSuite,
    KERNEL_SPECS,
    generate_polybench_like_suite,
    generate_spec_like_suite,
    lower_kernel,
)


@pytest.fixture(scope="module")
def isa():
    return build_default_isa(160, seed=0)


def make_block(name: str, weight: float = 1.0) -> BasicBlock:
    inst = Instruction(f"{name}_OP", InstructionKind.INT_ALU, Extension.BASE, 64)
    return BasicBlock(name=name, kernel=Microkernel.single(inst), weight=weight)


class TestBasicBlockAndSuite:
    def test_weight_must_be_positive(self):
        inst = Instruction("W_OP", InstructionKind.INT_ALU, Extension.BASE, 64)
        with pytest.raises(ValueError):
            BasicBlock(name="bad", kernel=Microkernel.single(inst), weight=0.0)

    def test_duplicate_names_rejected(self):
        suite = BenchmarkSuite(name="s", blocks=[make_block("a")])
        with pytest.raises(ValueError):
            suite.add(make_block("a"))
        with pytest.raises(ValueError):
            BenchmarkSuite(name="s", blocks=[make_block("a"), make_block("a")])

    def test_total_weight_and_len(self):
        suite = BenchmarkSuite("s", [make_block("a", 2.0), make_block("b", 3.0)])
        assert len(suite) == 2
        assert suite.total_weight == pytest.approx(5.0)

    def test_filtered_and_restricted(self):
        suite = BenchmarkSuite("s", [make_block("a", 2.0), make_block("b", 3.0)])
        heavy = suite.filtered(lambda block: block.weight > 2.5)
        assert [block.name for block in heavy] == ["b"]
        allowed = list(suite.blocks[0].instructions())
        restricted = suite.restricted_to(allowed)
        assert [block.name for block in restricted] == ["a"]

    def test_histogram_and_summary(self):
        suite = BenchmarkSuite("s", [make_block("a", 2.0)])
        histogram = suite.instruction_histogram()
        assert sum(histogram.values()) == pytest.approx(2.0)
        assert "1 blocks" in suite.summary()


class TestSpecLikeSuite:
    def test_deterministic(self, isa):
        first = generate_spec_like_suite(isa, n_blocks=50, seed=3)
        second = generate_spec_like_suite(isa, n_blocks=50, seed=3)
        assert [block.kernel for block in first] == [block.kernel for block in second]

    def test_block_count_and_sizes(self, isa):
        suite = generate_spec_like_suite(isa, n_blocks=80, seed=0)
        assert len(suite) == 80
        for block in suite:
            assert 3 <= block.num_instructions <= 24

    def test_no_avx_and_no_jumps(self, isa):
        suite = generate_spec_like_suite(isa, n_blocks=60, seed=1)
        for block in suite:
            for instruction in block.instructions():
                assert instruction.extension is not Extension.AVX
                assert instruction.is_benchmarkable

    def test_integer_dominated_mix(self, isa):
        suite = generate_spec_like_suite(isa, n_blocks=120, seed=0)
        histogram = suite.instruction_histogram()
        total = sum(histogram.values())
        fp_weight = sum(
            count for inst, count in histogram.items() if inst.kind.is_floating_point
        )
        assert fp_weight / total < 0.1

    def test_rejects_zero_blocks(self, isa):
        with pytest.raises(ValueError):
            generate_spec_like_suite(isa, n_blocks=0)

    def test_blocks_run_on_machines(self, isa, small_skl_machine):
        suite = generate_spec_like_suite(small_skl_machine.instructions, n_blocks=20, seed=5)
        backend = PortModelBackend(small_skl_machine)
        for block in suite:
            assert backend.ipc(block.kernel) > 0


class TestKernelLowering:
    def test_all_specs_lower_on_default_isa(self, isa):
        for spec in KERNEL_SPECS.values():
            kernel = lower_kernel(spec, isa, vector_extension=Extension.SSE)
            assert kernel.size >= spec.loads + spec.stores

    def test_no_mixed_extensions(self, isa):
        for extension in (Extension.SSE, Extension.AVX):
            for spec in KERNEL_SPECS.values():
                kernel = lower_kernel(spec, isa, vector_extension=extension)
                extensions = {inst.extension for inst in kernel.instructions}
                assert not ({Extension.SSE, Extension.AVX} <= extensions)

    def test_gemm_contains_fma_in_avx(self, isa):
        kernel = lower_kernel(KERNEL_SPECS["gemm"], isa, vector_extension=Extension.AVX)
        kinds = {inst.kind for inst in kernel.instructions}
        assert InstructionKind.FP_FMA in kinds

    def test_gemm_scalar_falls_back_to_mul_add(self, isa):
        sse_only = [inst for inst in isa if inst.extension is not Extension.AVX]
        kernel = lower_kernel(KERNEL_SPECS["gemm"], sse_only, vector_extension=Extension.SSE)
        kinds = {inst.kind for inst in kernel.instructions}
        assert InstructionKind.FP_MUL in kinds
        assert InstructionKind.FP_FMA not in kinds

    def test_unloweable_kernel_raises(self):
        with pytest.raises(ValueError):
            lower_kernel(KERNEL_SPECS["gemm"], [], vector_extension=Extension.SSE)


class TestPolybenchLikeSuite:
    def test_contains_all_kernels(self, isa):
        suite = generate_polybench_like_suite(isa, seed=0)
        sources = {block.source for block in suite}
        assert set(KERNEL_SPECS) <= sources

    def test_sse_and_avx_variants(self, isa):
        suite = generate_polybench_like_suite(isa, seed=0, include_avx=True)
        names = [block.name for block in suite]
        assert any(name.endswith(".sse") for name in names)
        assert any(name.endswith(".avx") for name in names)
        without_avx = generate_polybench_like_suite(isa, seed=0, include_avx=False)
        assert not any(block.name.endswith(".avx") for block in without_avx)

    def test_fp_dominated_mix(self, isa):
        suite = generate_polybench_like_suite(isa, seed=0)
        histogram = suite.instruction_histogram()
        total = sum(histogram.values())
        fp_or_mem = sum(
            count
            for inst, count in histogram.items()
            if inst.kind.is_floating_point or inst.kind.is_memory
        )
        assert fp_or_mem / total > 0.5

    def test_deterministic(self, isa):
        first = generate_polybench_like_suite(isa, seed=2)
        second = generate_polybench_like_suite(isa, seed=2)
        assert [block.kernel for block in first] == [block.kernel for block in second]

    def test_blocks_run_on_machines(self, small_skl_machine):
        suite = generate_polybench_like_suite(
            small_skl_machine.instructions, seed=0, bookkeeping_blocks=5
        )
        backend = PortModelBackend(small_skl_machine)
        for block in suite:
            assert backend.ipc(block.kernel) > 0
