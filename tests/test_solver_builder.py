"""Tests for the sparse solver layer: ModelBuilder, ModelTemplate, stats.

The contract under test: the template path solves the same problems as the
expression-based :class:`Model` front-end (identical optima), rebinding a
template's data is equivalent to building the model fresh (bitwise-equal
solutions), and the statistics layer reports template reuse as
``model_builds`` < ``solves``.
"""

from __future__ import annotations

import math

import pytest

from repro.isa.instruction import Extension, Instruction, InstructionKind
from repro.palmed import PalmedConfig
from repro.palmed.lp1_shape import KernelObservation
from repro.palmed.lp2_weights import (
    WeightModelCache,
    WeightProblem,
    solve_weights_exact,
    solve_weights_heuristic,
)
from repro.mapping.microkernel import Microkernel
from repro.solvers import (
    InfeasibleError,
    Model,
    ModelBuilder,
    SolverError,
    SolveStats,
    SolveStatus,
    UnboundedError,
    use_stats,
)


class TestModelBuilder:
    def test_simple_lp_matches_model_front_end(self):
        # max 2x + 3y  s.t.  x + 2y <= 4, 3x + y <= 6  (same LP as the
        # Model-based test in test_solvers_lp.py).
        builder = ModelBuilder("lp")
        x = builder.add_variable(0.0)
        y = builder.add_variable(0.0)
        builder.add_row_entries([x, y], [1.0, 2.0], hi=4.0)
        builder.add_row_entries([x, y], [3.0, 1.0], hi=6.0)
        builder.set_objective({x: 2.0, y: 3.0}, maximize=True)
        solution = builder.build().solve()
        assert solution.is_optimal
        assert solution.objective == pytest.approx(6.8, abs=1e-6)
        assert solution[x] == pytest.approx(1.6, abs=1e-6)
        assert solution[y] == pytest.approx(1.2, abs=1e-6)

    def test_binary_knapsack(self):
        values = [10, 13, 18, 31, 7, 15]
        weights = [2, 3, 4, 5, 1, 4]
        builder = ModelBuilder("knapsack")
        items = [builder.add_binary() for _ in values]
        builder.add_row_entries(items, [float(w) for w in weights], hi=10.0)
        builder.set_objective(
            {col: float(v) for col, v in zip(items, values)}, maximize=True
        )
        solution = builder.build().solve()
        assert solution.objective == pytest.approx(56.0)
        chosen = [i for i, col in enumerate(items) if solution[col] > 0.5]
        assert chosen == [2, 3, 4]

    def test_infeasible_and_unbounded_raise(self):
        builder = ModelBuilder("infeasible")
        x = builder.add_variable(0.0, 1.0)
        builder.add_row_entries([x], [1.0], lo=2.0)
        builder.set_objective({x: 1.0})
        with pytest.raises(InfeasibleError):
            builder.build().solve()

        builder = ModelBuilder("unbounded")
        x = builder.add_variable(0.0)
        builder.set_objective({x: 1.0}, maximize=True)
        with pytest.raises(UnboundedError):
            builder.build().solve()

    def test_empty_model_solves_trivially(self):
        solution = ModelBuilder("empty").build().solve()
        assert solution.is_optimal
        assert solution.objective == 0.0

    def test_duplicate_entries_rejected(self):
        builder = ModelBuilder("dup")
        x = builder.add_variable()
        row = builder.add_row(hi=1.0)
        builder.add_entry(row, x, 1.0)
        builder.add_entry(row, x, 2.0)
        with pytest.raises(SolverError):
            builder.build()

    def test_invalid_bounds_rejected(self):
        builder = ModelBuilder("bounds")
        with pytest.raises(SolverError):
            builder.add_variable(lb=2.0, ub=1.0)


class TestModelTemplate:
    def _capacity_template(self):
        """max x + y  s.t.  a*x + b*y <= C with rebindable a, b, C."""
        builder = ModelBuilder("capacity")
        x = builder.add_variable(0.0)
        y = builder.add_variable(0.0)
        row = builder.add_row(hi=4.0)
        h_x = builder.add_entry(row, x, 1.0)
        h_y = builder.add_entry(row, y, 2.0)
        builder.set_objective({x: 1.0, y: 1.0}, maximize=True)
        return builder.build(), (x, y, row, h_x, h_y)

    def test_rebinding_matches_fresh_build(self):
        template, (x, y, row, h_x, h_y) = self._capacity_template()
        first = template.solve()
        assert first.objective == pytest.approx(4.0)

        # Rebind coefficients and RHS, re-solve the same structure.
        template.set_entry(h_x, 2.0)
        template.set_entry(h_y, 1.0)
        template.set_row_bounds(row, -math.inf, 6.0)
        rebound = template.solve()

        fresh = ModelBuilder("fresh")
        fx = fresh.add_variable(0.0)
        fy = fresh.add_variable(0.0)
        fresh.add_row_entries([fx, fy], [2.0, 1.0], hi=6.0)
        fresh.set_objective({fx: 1.0, fy: 1.0}, maximize=True)
        reference = fresh.build().solve()

        assert rebound.objective == reference.objective
        assert list(rebound.x) == list(reference.x)
        assert template.solve_count == 2

    def test_variable_bound_and_objective_rebinding(self):
        builder = ModelBuilder("box")
        x = builder.add_variable(0.0, 1.0)
        builder.set_objective({x: 1.0}, maximize=True)
        template = builder.build()
        assert template.solve().objective == pytest.approx(1.0)
        template.set_variable_bounds(x, 0.0, 5.0)
        assert template.solve().objective == pytest.approx(5.0)
        template.set_objective_coeff(x, 2.0)
        assert template.solve().objective == pytest.approx(10.0)

    def test_integer_values_rounded(self):
        builder = ModelBuilder("int")
        b = builder.add_binary()
        builder.add_row_entries([b], [1.0], lo=0.5)
        builder.set_objective({b: 1.0})
        solution = builder.build().solve()
        assert solution[b] == 1.0


class TestWarmStartMemo:
    """The incumbent memo: exact hits, strict keys, OPTIMAL-only storage."""

    def _box_template(self, warm_start: bool = True):
        builder = ModelBuilder("memo")
        x = builder.add_variable(0.0, 1.0)
        builder.set_objective({x: 1.0}, maximize=True)
        return builder.build(warm_start=warm_start), x

    def test_identical_request_served_from_memo(self):
        template, _ = self._box_template()
        stats = SolveStats()
        with use_stats(stats):
            cold = template.solve()
            warm = template.solve()
        assert template.warm_start_hits == 1
        assert template.memo_size == 1
        # Bitwise equality with the cold solve, not approximate.
        assert warm.objective == cold.objective
        assert list(warm.x) == list(cold.x)
        assert warm.status is cold.status
        # The request counter includes the hit; the backend count does not.
        assert stats.solves == 2
        assert stats.warm_start_hits == 1
        assert stats.backend_solves == 1

    def test_rebinding_misses_then_returning_hits(self):
        template, x = self._box_template()
        first = template.solve()
        template.set_variable_bounds(x, 0.0, 5.0)
        assert template.solve().objective == pytest.approx(5.0)
        assert template.warm_start_hits == 0
        assert template.memo_size == 2
        # Returning to the original binding hits the first memo entry.
        template.set_variable_bounds(x, 0.0, 1.0)
        assert template.solve().objective == first.objective
        assert template.warm_start_hits == 1

    def test_solve_options_are_part_of_the_key(self):
        template, _ = self._box_template()
        template.solve()
        template.solve(time_limit=30.0)
        assert template.warm_start_hits == 0
        assert template.memo_size == 2

    def test_memo_disabled_by_default(self):
        template, _ = self._box_template(warm_start=False)
        template.solve()
        template.solve()
        assert template.warm_start_hits == 0
        assert template.memo_size == 0

    def test_limit_solutions_never_memoized(self, monkeypatch):
        # A LIMIT incumbent depends on how far the solver got before the
        # limit — machine-speed dependent, so replaying it from a memo
        # would break the determinism contract.
        import numpy as np
        from scipy import optimize

        def fake_milp(*args, **kwargs):
            class Result:
                status = 1  # time limit with incumbent
                message = "limit reached"
                x = np.array([2.0])
            return Result()

        monkeypatch.setattr(optimize, "milp", fake_milp)
        builder = ModelBuilder("limit-memo")
        x = builder.add_variable(0.0, 3.0, integer=True)
        builder.set_objective({x: 1.0}, maximize=True)
        template = builder.build(warm_start=True)
        solution = template.solve(time_limit=1.0)
        assert solution.status is SolveStatus.LIMIT
        assert template.memo_size == 0
        assert template.warm_start_hits == 0


class TestSolveStats:
    def test_builds_and_solves_recorded(self):
        stats = SolveStats()
        with use_stats(stats):
            builder = ModelBuilder("stats")
            x = builder.add_variable(0.0, 2.0)
            builder.set_objective({x: 1.0}, maximize=True)
            template = builder.build()
            template.solve()
            template.solve()
        assert stats.model_builds == 1
        assert stats.solves == 2
        assert stats.template_reuses == 1
        assert stats.solve_time >= 0.0

    def test_model_front_end_counts_one_build_per_solve(self):
        stats = SolveStats()
        with use_stats(stats):
            for _ in range(3):
                model = Model("m")
                x = model.add_variable("x", lb=0.0, ub=1.0)
                model.maximize(x)
                model.solve()
        assert stats.model_builds == 3
        assert stats.solves == 3

    def test_merge_and_copy(self):
        a = SolveStats(model_builds=1, solves=2, build_time=0.5, solve_time=1.5)
        b = a.copy()
        b.merge(SolveStats(model_builds=2, solves=3, build_time=0.25, solve_time=0.5))
        assert (b.model_builds, b.solves) == (3, 5)
        assert b.build_time == pytest.approx(0.75)
        assert (a.model_builds, a.solves) == (1, 2)
        assert a.as_dict()["solves"] == 2

    def test_merge_semantics_across_workers(self):
        # Two worker-side records merged into the parent: counters and
        # times accumulate; worker counts and the MIP-gap bound fold with
        # max (they are decisions/bounds, not quantities).
        a = SolveStats(
            model_builds=1,
            solves=4,
            warm_start_hits=1,
            rebinds=3,
            lp_chunks=2,
            limit_solves=1,
            worst_mip_gap=0.25,
            build_time=0.5,
            solve_time=1.5,
            rebind_time=0.1,
            lp_workers_requested=4,
            lp_workers_effective=4,
        )
        b = SolveStats(
            model_builds=2,
            solves=3,
            warm_start_hits=2,
            rebinds=1,
            lp_chunks=1,
            limit_solves=0,
            worst_mip_gap=0.75,
            build_time=0.25,
            solve_time=0.5,
            rebind_time=0.2,
            lp_workers_requested=2,
            lp_workers_effective=1,
        )
        merged = a.copy().merge(b)
        assert merged.model_builds == 3
        assert merged.solves == 7
        assert merged.warm_start_hits == 3
        assert merged.rebinds == 4
        assert merged.lp_chunks == 3
        assert merged.limit_solves == 1
        assert merged.worst_mip_gap == 0.75
        assert merged.lp_workers_requested == 4
        assert merged.lp_workers_effective == 4
        assert merged.build_time == pytest.approx(0.75)
        assert merged.rebind_time == pytest.approx(0.3)
        assert merged.backend_solves == 4
        assert merged.template_reuses == 4
        # The originals are untouched (merge works on the copy).
        assert a.worst_mip_gap == 0.25 and b.lp_chunks == 1


def _weight_problem(seed_ipc: float, num_resources: int = 3) -> WeightProblem:
    """An LPAUX-shaped problem: one free instruction, frozen core, K kernels."""
    free = Instruction("FREE", InstructionKind.INT_ALU, Extension.BASE)
    frozen = Instruction("CORE", InstructionKind.FP_ADD, Extension.BASE)
    observations = [
        KernelObservation(kernel=Microkernel.single(free), ipc=seed_ipc),
        KernelObservation(
            kernel=Microkernel({free: 1.0, frozen: 4.0}), ipc=seed_ipc + 0.5
        ),
    ]
    return WeightProblem(
        observations=observations,
        num_resources=num_resources,
        free_edges={free: set(range(num_resources))},
        frozen_rho={frozen: {0: 0.9, 1: 0.2}},
        rho_upper_bound=None,
        soft_capacity=True,
    )


class TestWeightModelCache:
    @pytest.mark.parametrize("solver", [solve_weights_exact, solve_weights_heuristic])
    def test_cached_solutions_bitwise_equal_fresh(self, solver):
        config = PalmedConfig()
        cache = WeightModelCache()
        for index in range(4):
            problem = _weight_problem(1.0 + 0.2 * index)
            cached = solver(problem, config, cache)
            fresh = solver(problem, config, None)
            assert cached.rho == fresh.rho
            assert cached.total_error == fresh.total_error
        # Four identically-shaped problems share one compiled template.
        assert cache.num_templates == 1
        assert cache.num_solves >= 4

    def test_template_reuse_visible_in_stats(self):
        config = PalmedConfig()
        cache = WeightModelCache()
        stats = SolveStats()
        with use_stats(stats):
            for index in range(5):
                solve_weights_exact(_weight_problem(1.0 + 0.1 * index), config, cache)
        assert stats.solves == 5
        assert stats.model_builds == 1
        assert stats.model_builds < stats.solves

    def test_different_shapes_get_different_templates(self):
        config = PalmedConfig()
        cache = WeightModelCache()
        solve_weights_exact(_weight_problem(1.0, num_resources=3), config, cache)
        solve_weights_exact(_weight_problem(1.0, num_resources=4), config, cache)
        assert cache.num_templates == 2

    def test_warm_start_cache_bitwise_equal_and_counted(self):
        # A byte-identical repeat solve is answered from the incumbent
        # memo, counted as a request plus a hit, and equals a fresh solve
        # bitwise.
        config = PalmedConfig()
        warm = WeightModelCache(warm_start=True)
        problem = _weight_problem(1.0)
        stats = SolveStats()
        with use_stats(stats):
            first = solve_weights_exact(problem, config, warm)
            second = solve_weights_exact(problem, config, warm)
        fresh = solve_weights_exact(problem, config, None)
        assert first.rho == second.rho == fresh.rho
        assert first.total_error == second.total_error == fresh.total_error
        assert warm.num_warm_hits == 1
        assert stats.solves == 2
        assert stats.warm_start_hits == 1
        assert stats.backend_solves == 1
        assert stats.rebinds == 2  # every request still rebinds its data


class TestStatusHandling:
    def _one_var_milp(self):
        model = Model("limit")
        x = model.add_variable("x", lb=0.0, ub=3.0, integer=True)
        model.add_constraint(x <= 2.5)
        model.maximize(x)
        return model, x

    def test_limit_status_returns_incumbent(self, monkeypatch):
        import numpy as np
        from scipy import optimize

        def fake_milp(*args, **kwargs):
            class Result:
                status = 1  # iteration/time limit
                message = "limit reached"
                x = np.array([2.0])
            return Result()

        monkeypatch.setattr(optimize, "milp", fake_milp)
        model, x = self._one_var_milp()
        solution = model.solve(time_limit=1.0)
        assert solution.status is SolveStatus.LIMIT
        assert not solution.is_optimal
        assert solution[x] == 2.0

    def test_limit_without_incumbent_raises(self, monkeypatch):
        from scipy import optimize

        def fake_milp(*args, **kwargs):
            class Result:
                status = 1
                message = "limit reached, no incumbent"
                x = None
            return Result()

        monkeypatch.setattr(optimize, "milp", fake_milp)
        model, _ = self._one_var_milp()
        with pytest.raises(SolverError):
            model.solve(time_limit=1.0)

    def test_error_status_raises(self, monkeypatch):
        from scipy import optimize

        def fake_milp(*args, **kwargs):
            class Result:
                status = 4  # "other" -> ERROR
                message = "numerical trouble"
                x = None
            return Result()

        monkeypatch.setattr(optimize, "milp", fake_milp)
        model, _ = self._one_var_milp()
        with pytest.raises(SolverError):
            model.solve()
