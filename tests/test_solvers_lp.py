"""Tests for the LP/MILP modeling layer."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers import (
    InfeasibleError,
    LinearExpression,
    Model,
    SolverError,
    SolveStatus,
    UnboundedError,
    lin_sum,
)


class TestExpressions:
    def test_variable_arithmetic_builds_expression(self):
        model = Model()
        x = model.add_variable("x")
        expr = 2 * x + 3
        assert isinstance(expr, LinearExpression)
        assert expr.terms[x] == 2.0
        assert expr.constant == 3.0

    def test_expression_addition_merges_terms(self):
        model = Model()
        x = model.add_variable("x")
        y = model.add_variable("y")
        expr = (x + y) + (x - y)
        assert expr.terms[x] == 2.0
        assert expr.terms.get(y, 0.0) == 0.0

    def test_subtraction_and_negation(self):
        model = Model()
        x = model.add_variable("x")
        expr = 5 - 2 * x
        assert expr.constant == 5.0
        assert expr.terms[x] == -2.0
        negated = -expr
        assert negated.constant == -5.0
        assert negated.terms[x] == 2.0

    def test_lin_sum_handles_mixed_items(self):
        model = Model()
        x = model.add_variable("x")
        y = model.add_variable("y")
        expr = lin_sum([x, 2 * y, 3.5])
        assert expr.terms[x] == 1.0
        assert expr.terms[y] == 2.0
        assert expr.constant == 3.5

    def test_lin_sum_rejects_bad_items(self):
        with pytest.raises(TypeError):
            lin_sum(["not-a-variable"])

    def test_scaling_by_non_number_rejected(self):
        model = Model()
        x = model.add_variable("x")
        with pytest.raises(TypeError):
            (x + 1) * "2"  # type: ignore[operator]

    def test_expression_value_evaluation(self):
        model = Model()
        x = model.add_variable("x")
        y = model.add_variable("y")
        expr = 2 * x + 3 * y + 1
        assert expr.value({x: 1.0, y: 2.0}) == pytest.approx(9.0)


class TestModelBasics:
    def test_duplicate_variable_name_rejected(self):
        model = Model()
        model.add_variable("x")
        with pytest.raises(SolverError):
            model.add_variable("x")

    def test_invalid_bounds_rejected(self):
        model = Model()
        with pytest.raises(SolverError):
            model.add_variable("x", lb=2.0, ub=1.0)

    def test_constraint_from_other_model_rejected(self):
        left = Model("left")
        right = Model("right")
        x = left.add_variable("x")
        with pytest.raises(SolverError):
            right.add_constraint(x <= 1.0)

    def test_add_constraint_requires_constraint_object(self):
        model = Model()
        model.add_variable("x")
        with pytest.raises(TypeError):
            model.add_constraint("x <= 1")  # type: ignore[arg-type]

    def test_counts(self):
        model = Model()
        x = model.add_variable("x")
        b = model.add_binary("b")
        model.add_constraint(x + b <= 1.0)
        assert model.num_variables == 2
        assert model.num_integer_variables == 1
        assert model.num_constraints == 1

    def test_empty_model_solves_trivially(self):
        model = Model()
        solution = model.solve()
        assert solution.is_optimal
        assert solution.objective == 0.0


class TestSolving:
    def test_simple_lp_maximization(self):
        model = Model()
        x = model.add_variable("x", lb=0.0)
        y = model.add_variable("y", lb=0.0)
        model.add_constraint(x + 2 * y <= 4.0)
        model.add_constraint(3 * x + y <= 6.0)
        model.maximize(2 * x + 3 * y)
        solution = model.solve()
        assert solution.is_optimal
        assert solution.objective == pytest.approx(6.8, abs=1e-6)
        assert solution[x] == pytest.approx(1.6, abs=1e-6)
        assert solution[y] == pytest.approx(1.2, abs=1e-6)

    def test_simple_lp_minimization_with_equality(self):
        model = Model()
        x = model.add_variable("x", lb=0.0)
        y = model.add_variable("y", lb=0.0)
        model.add_equality(x + y, 10.0)
        model.minimize(3 * x + y)
        solution = model.solve()
        assert solution.objective == pytest.approx(10.0)
        assert solution[x] == pytest.approx(0.0, abs=1e-9)
        assert solution[y] == pytest.approx(10.0)

    def test_infeasible_raises(self):
        model = Model()
        x = model.add_variable("x", lb=0.0, ub=1.0)
        model.add_constraint(x >= 2.0)
        model.minimize(x)
        with pytest.raises(InfeasibleError):
            model.solve()

    def test_unbounded_raises(self):
        model = Model()
        x = model.add_variable("x", lb=0.0)
        model.maximize(x)
        with pytest.raises(UnboundedError):
            model.solve()

    def test_binary_knapsack(self):
        model = Model()
        values = [10, 13, 18, 31, 7, 15]
        weights = [2, 3, 4, 5, 1, 4]
        items = [model.add_binary(f"item{i}") for i in range(len(values))]
        model.add_constraint(
            lin_sum(items[i] * float(weights[i]) for i in range(len(items))) <= 10.0
        )
        model.maximize(lin_sum(items[i] * float(values[i]) for i in range(len(items))))
        solution = model.solve()
        assert solution.objective == pytest.approx(56.0)
        chosen = [i for i, var in enumerate(items) if solution[var] > 0.5]
        assert chosen == [2, 3, 4]  # weights 4+5+1 = 10, values 18+31+7 = 56

    def test_integer_rounding_in_solution(self):
        model = Model()
        b = model.add_binary("b")
        model.add_constraint(b >= 0.5)
        model.minimize(b)
        solution = model.solve()
        assert solution[b] == 1.0

    def test_solution_value_of_expression(self):
        model = Model()
        x = model.add_variable("x", lb=0.0, ub=2.0)
        model.maximize(x)
        solution = model.solve()
        assert solution.value(3 * x + 1) == pytest.approx(7.0)

    def test_indicator_leq_enforced_when_active(self):
        model = Model()
        b = model.add_binary("b")
        x = model.add_variable("x", lb=0.0, ub=10.0)
        model.add_indicator_leq(b, x, 3.0, big_m=10.0)
        model.add_constraint(b >= 1.0)
        model.maximize(x)
        solution = model.solve()
        assert solution[x] == pytest.approx(3.0)

    def test_indicator_leq_relaxed_when_inactive(self):
        model = Model()
        b = model.add_binary("b")
        x = model.add_variable("x", lb=0.0, ub=10.0)
        model.add_indicator_leq(b, x, 3.0, big_m=10.0)
        model.add_constraint(b <= 0.0)
        model.maximize(x)
        solution = model.solve()
        assert solution[x] == pytest.approx(10.0)

    def test_indicator_geq(self):
        model = Model()
        b = model.add_binary("b")
        x = model.add_variable("x", lb=0.0, ub=10.0)
        model.add_indicator_geq(b, x, 7.0, big_m=10.0)
        model.add_constraint(b >= 1.0)
        model.minimize(x)
        solution = model.solve()
        assert solution[x] == pytest.approx(7.0)

    def test_indicator_leq_big_m_is_tight(self):
        # The relaxation slack with b = 0 must be *exactly* big_m: the
        # encoded constraint is expr <= rhs + M * (1 - b), so with b = 0 the
        # maximum of expr is min(ub, rhs + M).  A looser encoding (slack
        # beyond M) would weaken the LP relaxation of LP1's exists-blocks.
        for big_m in (1.0, 2.5, 6.0):
            model = Model()
            b = model.add_binary("b")
            x = model.add_variable("x", lb=0.0, ub=100.0)
            model.add_indicator_leq(b, x, 3.0, big_m=big_m)
            model.add_constraint(b <= 0.0)
            model.maximize(x)
            solution = model.solve()
            assert solution[x] == pytest.approx(3.0 + big_m)

    def test_indicator_leq_default_big_m(self):
        model = Model()
        b = model.add_binary("b")
        x = model.add_variable("x", lb=0.0)
        constraint = model.add_indicator_leq(b, x, 1.0)
        # expr + M*b <= rhs + M with the documented default M.
        assert constraint.expr.terms[b] == pytest.approx(Model.DEFAULT_BIG_M)
        _, upper = constraint.bounds()
        assert upper == pytest.approx(1.0 + Model.DEFAULT_BIG_M)

    def test_indicator_leq_encoding_coefficients(self):
        model = Model()
        b = model.add_binary("b")
        x = model.add_variable("x", lb=0.0, ub=1.0)
        y = model.add_variable("y", lb=0.0, ub=1.0)
        constraint = model.add_indicator_leq(b, x + 2 * y, 1.5, big_m=2.0)
        assert constraint.sense == "<="
        assert constraint.expr.terms[x] == pytest.approx(1.0)
        assert constraint.expr.terms[y] == pytest.approx(2.0)
        assert constraint.expr.terms[b] == pytest.approx(2.0)
        _, upper = constraint.bounds()
        assert upper == pytest.approx(3.5)

    def test_indicator_requires_binary(self):
        model = Model()
        x = model.add_variable("x", lb=0.0, ub=1.0)
        y = model.add_variable("y")
        with pytest.raises(SolverError):
            model.add_indicator_leq(x, y, 1.0)

    def test_add_exists_requires_selectors(self):
        model = Model()
        with pytest.raises(SolverError):
            model.add_exists([])

    def test_add_exists_forces_one_selector(self):
        model = Model()
        selectors = [model.add_binary(f"s{i}") for i in range(3)]
        model.add_exists(selectors)
        model.minimize(lin_sum(selectors))
        solution = model.solve()
        assert sum(solution[s] for s in selectors) == pytest.approx(1.0)

    def test_add_exists_single_selector_is_forced(self):
        model = Model()
        only = model.add_binary("only")
        model.add_exists([only])
        model.minimize(only)
        solution = model.solve()
        assert solution[only] == 1.0

    def test_add_exists_combined_with_indicators(self):
        # The LP1 pattern: each selector implies a cap on its resource's
        # load; "exists" forces at least one cap to be active.
        model = Model()
        selectors = [model.add_binary(f"sel{i}") for i in range(2)]
        loads = [model.add_variable(f"load{i}", lb=0.0, ub=10.0) for i in range(2)]
        for selector, load in zip(selectors, loads):
            model.add_indicator_leq(selector, load, 1.0, big_m=9.0)
        model.add_exists(selectors)
        model.maximize(lin_sum(loads))
        solution = model.solve()
        # Exactly one load is capped at 1, the other reaches its bound.
        assert sorted(solution[load] for load in loads) == pytest.approx([1.0, 10.0])


class TestStatusMapping:
    def test_status_codes(self):
        assert Model._map_status(0) is SolveStatus.OPTIMAL
        assert Model._map_status(1) is SolveStatus.LIMIT
        assert Model._map_status(2) is SolveStatus.INFEASIBLE
        assert Model._map_status(3) is SolveStatus.UNBOUNDED
        assert Model._map_status(99) is SolveStatus.ERROR


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        capacity=st.floats(min_value=1.0, max_value=50.0),
        coefficients=st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=6
        ),
    )
    def test_single_constraint_lp_optimum_is_analytic(self, capacity, coefficients):
        """max Σ x_i s.t. Σ c_i x_i <= C equals C / min(c_i) (put all mass on min)."""
        model = Model()
        variables = [model.add_variable(f"x{i}", lb=0.0) for i in range(len(coefficients))]
        model.add_constraint(
            lin_sum(v * c for v, c in zip(variables, coefficients)) <= capacity
        )
        model.maximize(lin_sum(variables))
        solution = model.solve()
        assert solution.objective == pytest.approx(capacity / min(coefficients), rel=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(
        bounds=st.lists(
            st.tuples(
                st.floats(min_value=-5.0, max_value=5.0),
                st.floats(min_value=0.0, max_value=5.0),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_box_lp_optimum_is_sum_of_upper_bounds(self, bounds):
        model = Model()
        variables = []
        expected = 0.0
        for index, (lower, width) in enumerate(bounds):
            upper = lower + width
            variables.append(model.add_variable(f"x{index}", lb=lower, ub=upper))
            expected += upper
        model.maximize(lin_sum(variables))
        solution = model.solve()
        assert solution.objective == pytest.approx(expected, abs=1e-6)
        assert math.isfinite(solution.objective)
