"""Crash/resume correctness of the checkpointed stage graph.

The acceptance contract of the resumable pipeline:

* a run interrupted at **any** stage boundary and then resumed produces a
  final mapping and statistics **bitwise identical** to an uninterrupted
  run (deterministic view: every count and the mapping; wall clocks are
  run-local by definition);
* a **fully-warm** re-run — every stage served from checkpoints — executes
  **zero** measurement batches on the backend and **zero** LP solves;
* replayed checkpoint measurements keep the Table II benchmark counters
  identical between cold and resumed runs (skipped stages restore their
  deltas; live stages see the exact memo state a cold run would have).
"""

from __future__ import annotations

import pytest

from repro import PortModelBackend, build_skylake_like_machine, build_small_isa
from repro.artifacts import ArtifactRegistry
from repro.palmed import Palmed, PalmedConfig
from repro.pipeline import PipelineInterrupted, palmed_stages
from repro.solvers import reset_solver_stats, solver_stats

#: A small-but-not-toy machine: it exercises the equivalence-class
#: clustering and a nonempty LPAUX phase (6 basic instructions, 6 more
#: mapped by the complete stage), so every stage has real work to
#: checkpoint — while the capped basic set keeps each LP1 solve far from
#: its time limit (sub-second, and deterministic because the solver
#: terminates by optimality, never by wall clock).
ISA_SIZE = 12
STAGE_NAMES = [stage.name for stage in palmed_stages()]


def build_machine():
    return build_skylake_like_machine(isa=build_small_isa(ISA_SIZE, seed=2))


def fast_config() -> PalmedConfig:
    import dataclasses

    return dataclasses.replace(
        PalmedConfig().for_fast_tests(),
        n_basic_cap=6,
        max_resources=7,
        lp1_time_limit=60.0,
    )


def characterize(machine, registry, resume=False, stop_after=None):
    """One pipeline run against a fresh backend; returns (result, backend)."""
    backend = PortModelBackend(machine)
    palmed = Palmed(
        backend,
        machine.benchmarkable_instructions(),
        fast_config(),
        registry=registry,
        resume=resume,
    )
    if stop_after is None:
        return palmed.run(), backend
    with pytest.raises(PipelineInterrupted):
        palmed.run(stop_after=stop_after)
    return None, backend


@pytest.fixture(scope="module")
def machine():
    return build_machine()


@pytest.fixture(scope="module")
def cold_reference(machine, tmp_path_factory):
    """An uninterrupted, checkpointed run — the bitwise reference."""
    registry = ArtifactRegistry(tmp_path_factory.mktemp("cold-registry"))
    result, _ = characterize(machine, registry)
    return result, registry


class TestCrashResume:
    """Kill after each stage boundary, resume, compare bitwise."""

    @pytest.mark.parametrize("boundary", STAGE_NAMES[:-1])
    def test_resume_after_boundary_is_bitwise_identical(
        self, boundary, machine, cold_reference, tmp_path
    ):
        cold, _ = cold_reference
        registry = ArtifactRegistry(tmp_path / f"registry-{boundary}")
        # "Crash" right after the boundary stage finished checkpointing.
        characterize(machine, registry, stop_after=boundary)
        resumed, _ = characterize(machine, registry, resume=True)

        assert resumed.mapping.to_json() == cold.mapping.to_json()
        assert resumed.stats.deterministic_dict() == cold.stats.deterministic_dict()
        # The stages up to (and including) the boundary were restored, the
        # rest ran live.
        hits = resumed.stats.stage_checkpoint_hits
        cut = STAGE_NAMES.index(boundary)
        for index, name in enumerate(STAGE_NAMES):
            assert hits[name] is (index <= cut), (name, hits)

    def test_resume_after_final_boundary_restores_everything(
        self, machine, cold_reference, tmp_path
    ):
        cold, _ = cold_reference
        registry = ArtifactRegistry(tmp_path / "registry-final")
        characterize(machine, registry, stop_after=STAGE_NAMES[-1])
        resumed, backend = characterize(machine, registry, resume=True)
        assert backend.measurement_count == 0
        assert resumed.mapping.to_json() == cold.mapping.to_json()
        assert resumed.stats.deterministic_dict() == cold.stats.deterministic_dict()


class TestFullyWarmRun:
    def test_zero_measurements_zero_solves(self, machine, cold_reference):
        """All five stages from checkpoints: no benchmark runs, no LP solves."""
        cold, registry = cold_reference
        reset_solver_stats()
        warm, backend = characterize(machine, registry, resume=True)

        assert backend.measurement_count == 0, "warm run hit the backend"
        delta = solver_stats()
        assert delta.solves == 0, "warm run solved an LP"
        assert delta.model_builds == 0

        assert warm.mapping.to_json() == cold.mapping.to_json()
        assert warm.stats.deterministic_dict() == cold.stats.deterministic_dict()
        # On a fully-warm run even the wall clocks are restored from the
        # checkpoints, so the *complete* stats match the cold run's.
        cold_stats = dict(cold.stats.to_dict())
        warm_stats = dict(warm.stats.to_dict())
        cold_stats.pop("stage_checkpoint_hits")
        warm_stats.pop("stage_checkpoint_hits")
        assert warm_stats == cold_stats
        assert all(warm.stats.stage_checkpoint_hits.values())

    def test_warm_benchmark_counters_match_cold(self, machine, cold_reference):
        cold, registry = cold_reference
        warm, _ = characterize(machine, registry, resume=True)
        assert warm.stats.num_benchmarks == cold.stats.num_benchmarks
        assert warm.stats.num_benchmarks_measured == cold.stats.num_benchmarks_measured
        assert warm.stats.lp_solves == cold.stats.lp_solves


class TestChunkedConfigResume:
    """The batched solver engine checkpoints and resumes with exact counters."""

    @staticmethod
    def chunked_config() -> PalmedConfig:
        import dataclasses

        return dataclasses.replace(
            fast_config(), lp_parallelism=3, lp_chunk_size=2, lp_warm_start=True
        )

    @staticmethod
    def run(machine, registry, config, resume=False, stop_after=None):
        backend = PortModelBackend(machine)
        palmed = Palmed(
            backend,
            machine.benchmarkable_instructions(),
            config,
            registry=registry,
            resume=resume,
        )
        if stop_after is None:
            return palmed.run()
        with pytest.raises(PipelineInterrupted):
            palmed.run(stop_after=stop_after)
        return None

    def test_chunked_run_resumes_with_exact_counters(self, machine, tmp_path):
        config = self.chunked_config()
        cold = self.run(machine, ArtifactRegistry(tmp_path / "cold"), config)
        assert cold.stats.lp_chunks > 1, "the config did not actually chunk"
        assert cold.stats.lp_warm_start_hits >= 0

        registry = ArtifactRegistry(tmp_path / "crash")
        self.run(machine, registry, config, stop_after="complete")
        resumed = self.run(machine, registry, config, resume=True)
        assert resumed.mapping.to_json() == cold.mapping.to_json()
        assert resumed.stats.deterministic_dict() == cold.stats.deterministic_dict()
        # The batched-engine counters specifically: restored from the
        # checkpoint payloads, not recomputed, and still exact.
        for name in (
            "lp_solves",
            "lp_model_builds",
            "lp_warm_start_hits",
            "lp_rebinds",
            "lp_chunks",
        ):
            assert getattr(resumed.stats, name) == getattr(cold.stats, name), name

    def test_execution_knobs_do_not_invalidate_checkpoints(self, machine, tmp_path):
        import dataclasses

        config = self.chunked_config()
        registry = ArtifactRegistry(tmp_path / "knobs")
        self.run(machine, registry, config)
        # Flip every execution knob: they change how solves are scheduled,
        # never what is computed, so all five stages must still hit.
        flipped = dataclasses.replace(
            config, lp_parallelism=0, lp_chunk_size=None, lp_warm_start=False
        )
        warm = self.run(machine, registry, flipped, resume=True)
        assert all(warm.stats.stage_checkpoint_hits.values()), (
            warm.stats.stage_checkpoint_hits
        )


class TestResultFidelity:
    """Restored intermediate results must round-trip structurally too."""

    def test_selection_and_core_restored(self, machine, cold_reference):
        cold, registry = cold_reference
        warm, _ = characterize(machine, registry, resume=True)
        assert [i.name for i in warm.selection.basic] == [
            i.name for i in cold.selection.basic
        ]
        assert warm.selection.num_classes == cold.selection.num_classes
        assert warm.core.num_resources == cold.core.num_resources
        assert {
            inst.name: dict(weights) for inst, weights in warm.core.basic_rho.items()
        } == {
            inst.name: dict(weights) for inst, weights in cold.core.basic_rho.items()
        }
        assert warm.saturating_kernels.keys() == cold.saturating_kernels.keys()
        for resource, kernel in warm.saturating_kernels.items():
            assert kernel == cold.saturating_kernels[resource]

    def test_resumed_result_predicts_identically(self, machine, cold_reference):
        from repro.mapping.microkernel import Microkernel

        cold, registry = cold_reference
        warm, _ = characterize(machine, registry, resume=True)
        for instruction in cold.mapping.instructions:
            kernel = Microkernel.single(instruction, 3)
            assert warm.predict_ipc(kernel) == cold.predict_ipc(kernel)
