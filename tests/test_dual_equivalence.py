"""Tests of the ∇-dual construction and the equivalence theorem (Appendix A).

The central theoretical claim of the paper is that the conjunctive dual of a
disjunctive port mapping predicts exactly the same steady-state execution
time, while replacing the scheduling LP by a closed formula.  These tests
check the construction on the paper's example and verify the equivalence on
randomly generated machines and kernels (property-based).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Extension, Instruction, InstructionKind
from repro.machines import build_skylake_like_machine, build_toy_machine, build_zen_like_machine
from repro.machines.toy import TOY_INSTRUCTIONS
from repro.mapping import (
    DisjunctivePortMapping,
    Microkernel,
    MicroOp,
    build_dual,
    nabla_closure,
    prune_redundant_resources,
)
from repro.mapping.dual import resource_name


class TestNablaClosure:
    def test_disjoint_sets_not_merged(self):
        closure = nabla_closure([frozenset({"p0"}), frozenset({"p1"})])
        assert closure == {frozenset({"p0"}), frozenset({"p1"})}

    def test_intersecting_sets_merged(self):
        closure = nabla_closure([frozenset({"p0", "p1"}), frozenset({"p1", "p6"})])
        assert frozenset({"p0", "p1", "p6"}) in closure

    def test_paper_example_closure(self):
        sets = [
            frozenset({"p0"}),
            frozenset({"p1"}),
            frozenset({"p6"}),
            frozenset({"p0", "p1"}),
            frozenset({"p0", "p6"}),
        ]
        closure = nabla_closure(sets)
        assert frozenset({"p0", "p1", "p6"}) in closure
        # r16 is *not* created: {p1} and {p6} never intersect another set
        # containing both.
        assert frozenset({"p1", "p6"}) not in closure

    def test_empty_input(self):
        assert nabla_closure([]) == set()

    def test_resource_name_is_canonical(self):
        assert resource_name(frozenset({"p1", "p0"})) == "r(p0+p1)"


class TestToyMachineDual:
    def test_fig1b_resources(self):
        machine = build_toy_machine()
        dual = machine.true_conjunctive(include_front_end=False)
        expected = {
            "r(p0)", "r(p1)", "r(p6)", "r(p0+p1)", "r(p0+p6)", "r(p0+p1+p6)",
        }
        assert set(dual.resources) == expected

    def test_fig1b_normalized_weights(self):
        machine = build_toy_machine()
        dual = machine.true_conjunctive(include_front_end=False).normalized()
        addss = TOY_INSTRUCTIONS["ADDSS"]
        bsr = TOY_INSTRUCTIONS["BSR"]
        vcvtt = TOY_INSTRUCTIONS["VCVTT"]
        assert dual.rho(addss, "r(p0+p1)") == pytest.approx(0.5)
        assert dual.rho(addss, "r(p0+p1+p6)") == pytest.approx(1.0 / 3.0)
        assert dual.rho(addss, "r(p0)") == 0.0
        assert dual.rho(bsr, "r(p1)") == pytest.approx(1.0)
        # VCVTT has two µOPs on p0/p1: one full use of the combined resource.
        assert dual.rho(vcvtt, "r(p0+p1)") == pytest.approx(1.0)

    def test_paper_throughputs_via_dual(self, addss_bsr_kernels):
        machine = build_toy_machine()
        dual = machine.true_conjunctive(include_front_end=False)
        k1, k2 = addss_bsr_kernels
        assert dual.ipc(k1) == pytest.approx(2.0)
        assert dual.ipc(k2) == pytest.approx(1.5)


class TestPruning:
    def test_dominated_resource_removed(self):
        inst = Instruction("X_OP", InstructionKind.INT_ALU, Extension.BASE, 64)
        disjunctive = DisjunctivePortMapping(
            ("p0", "p1"), {inst: (MicroOp.on("p0"),)}
        )
        # Without pruning both r(p0) and r(p0+p1) exist; the combined resource
        # is half-loaded by every kernel and can never be the bottleneck.
        unpruned = build_dual(disjunctive, prune=False)
        assert "r(p0+p1)" in unpruned.resources or len(unpruned.resources) == 1
        pruned = prune_redundant_resources(unpruned)
        assert "r(p0)" in pruned.resources

    def test_pruning_preserves_predictions(self):
        machine = build_skylake_like_machine(n_instructions=40)
        unpruned = build_dual(machine.port_mapping, prune=False)
        pruned = build_dual(machine.port_mapping, prune=True)
        instructions = machine.benchmarkable_instructions()[:10]
        for index, instruction in enumerate(instructions):
            kernel = Microkernel({instruction: 1 + index % 3})
            assert pruned.cycles(kernel) == pytest.approx(unpruned.cycles(kernel))
        assert len(pruned.resources) <= len(unpruned.resources)


def _random_kernels(machine, seed: int, count: int):
    import random

    rng = random.Random(seed)
    instructions = machine.benchmarkable_instructions()
    kernels = []
    for _ in range(count):
        chosen = {
            rng.choice(instructions): rng.randint(1, 4)
            for _ in range(rng.randint(1, 5))
        }
        kernels.append(Microkernel(chosen))
    return kernels


class TestEquivalenceOnMachines:
    """Theorem A.2: dual formula == disjunctive scheduling LP."""

    @pytest.mark.parametrize("builder", [build_toy_machine])
    def test_toy_machine_exhaustive_pairs(self, builder):
        machine = builder()
        instructions = machine.instructions
        dual = machine.true_conjunctive(include_front_end=False)
        for i, a in enumerate(instructions):
            for b in instructions[i:]:
                kernel = Microkernel({a: 2, b: 1} if a != b else {a: 3})
                lp_cycles = machine.port_mapping.cycles(kernel)
                assert dual.cycles(kernel) == pytest.approx(lp_cycles, rel=1e-6)

    def test_skylake_random_kernels(self, small_skl_machine):
        dual = small_skl_machine.true_conjunctive(include_front_end=False)
        for kernel in _random_kernels(small_skl_machine, seed=7, count=25):
            lp_cycles = small_skl_machine.port_mapping.cycles(kernel)
            assert dual.cycles(kernel) == pytest.approx(lp_cycles, rel=1e-6)

    def test_zen_random_kernels(self, small_zen_machine):
        dual = small_zen_machine.true_conjunctive(include_front_end=False)
        for kernel in _random_kernels(small_zen_machine, seed=11, count=25):
            lp_cycles = small_zen_machine.port_mapping.cycles(kernel)
            assert dual.cycles(kernel) == pytest.approx(lp_cycles, rel=1e-6)


@st.composite
def random_disjunctive_and_kernel(draw):
    """A random small disjunctive mapping plus a random kernel over it."""
    num_ports = draw(st.integers(min_value=2, max_value=4))
    ports = [f"p{i}" for i in range(num_ports)]
    num_instructions = draw(st.integers(min_value=1, max_value=4))
    mapping = {}
    for index in range(num_instructions):
        inst = Instruction(
            f"RND{index}", InstructionKind.INT_ALU, Extension.BASE, 64
        )
        num_uops = draw(st.integers(min_value=1, max_value=2))
        uops = []
        for _ in range(num_uops):
            subset = draw(
                st.sets(st.sampled_from(ports), min_size=1, max_size=num_ports)
            )
            occupancy = draw(st.sampled_from([1.0, 1.0, 1.0, 2.0, 4.0]))
            uops.append(MicroOp(frozenset(subset), occupancy=occupancy))
        mapping[inst] = tuple(uops)
    disjunctive = DisjunctivePortMapping(ports, mapping)
    counts = {
        inst: draw(st.integers(min_value=1, max_value=4))
        for inst in mapping
        if draw(st.booleans()) or True
    }
    return disjunctive, Microkernel(counts)


class TestEquivalenceProperty:
    @settings(max_examples=60, deadline=None)
    @given(random_disjunctive_and_kernel())
    def test_dual_equals_lp_on_random_machines(self, data):
        """Property: for arbitrary port mappings the dual formula matches the LP."""
        disjunctive, kernel = data
        dual = build_dual(disjunctive)
        assert dual.cycles(kernel) == pytest.approx(
            disjunctive.cycles(kernel), rel=1e-6, abs=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(random_disjunctive_and_kernel(), st.floats(min_value=0.5, max_value=4.0))
    def test_throughput_scale_invariance(self, data, factor):
        """Scaling every multiplicity scales cycles linearly (IPC unchanged)."""
        disjunctive, kernel = data
        dual = build_dual(disjunctive)
        base = dual.cycles(kernel)
        scaled = dual.cycles(kernel.scaled(factor))
        assert scaled == pytest.approx(base * factor, rel=1e-9)
