"""Shared fixtures for the test suite.

Everything here is deterministic: fixed seeds, no measurement noise, and a
small ISA so that the end-to-end PALMED pipeline stays fast enough for unit
testing.  The full-scale runs live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro import (
    Microkernel,
    PortModelBackend,
    build_skylake_like_machine,
    build_small_isa,
    build_toy_machine,
    build_zen_like_machine,
)
from repro.machines.toy import TOY_INSTRUCTIONS


@pytest.fixture(scope="session")
def toy_machine():
    """The 6-instruction, 3-port machine of Fig. 1."""
    return build_toy_machine()


@pytest.fixture(scope="session")
def toy_backend(toy_machine):
    return PortModelBackend(toy_machine)


@pytest.fixture(scope="session")
def toy_instructions():
    """The Fig. 1 instructions keyed by mnemonic."""
    return dict(TOY_INSTRUCTIONS)


@pytest.fixture(scope="session")
def small_isa():
    """A deterministic ~48-instruction ISA for fast tests."""
    return build_small_isa(48, seed=0)


@pytest.fixture(scope="session")
def small_skl_machine(small_isa):
    return build_skylake_like_machine(isa=small_isa)


@pytest.fixture(scope="session")
def small_zen_machine(small_isa):
    return build_zen_like_machine(isa=small_isa)


@pytest.fixture(scope="session")
def small_skl_backend(small_skl_machine):
    return PortModelBackend(small_skl_machine)


@pytest.fixture
def addss_bsr_kernels(toy_instructions):
    """The two kernels used throughout the paper's Section III/IV examples."""
    addss = toy_instructions["ADDSS"]
    bsr = toy_instructions["BSR"]
    return (
        Microkernel({addss: 2, bsr: 1}),
        Microkernel({addss: 1, bsr: 2}),
    )
