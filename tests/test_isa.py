"""Tests for the synthetic ISA substrate."""

from __future__ import annotations

import pytest

from repro.isa import (
    Extension,
    Instruction,
    InstructionKind,
    IsaGenerator,
    benchmarkable,
    build_default_isa,
    build_small_isa,
)


class TestInstruction:
    def test_equality_and_hash_by_name(self):
        a = Instruction("ADD_R64", InstructionKind.INT_ALU, Extension.BASE, 64)
        b = Instruction("ADD_R64", InstructionKind.INT_MUL, Extension.BASE, 64, variant=3)
        assert a == b
        assert hash(a) == hash(b)

    def test_ordering_by_name(self):
        a = Instruction("AAA", InstructionKind.INT_ALU, Extension.BASE, 64)
        b = Instruction("BBB", InstructionKind.INT_ALU, Extension.BASE, 64)
        assert a < b
        assert sorted([b, a]) == [a, b]

    def test_str_is_name(self):
        inst = Instruction("XOR_R32", InstructionKind.INT_ALU, Extension.BASE, 32)
        assert str(inst) == "XOR_R32"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Instruction("", InstructionKind.INT_ALU, Extension.BASE, 64)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            Instruction("ADD", InstructionKind.INT_ALU, Extension.BASE, 48)

    def test_jump_not_benchmarkable(self):
        jump = Instruction("JMP", InstructionKind.JUMP, Extension.BASE, 64)
        add = Instruction("ADD", InstructionKind.INT_ALU, Extension.BASE, 64)
        assert not jump.is_benchmarkable
        assert add.is_benchmarkable

    def test_kind_predicates(self):
        assert InstructionKind.LOAD.is_memory
        assert InstructionKind.STORE.is_memory
        assert not InstructionKind.INT_ALU.is_memory
        assert InstructionKind.FP_FMA.is_floating_point
        assert InstructionKind.SHUFFLE.is_simd
        assert InstructionKind.INT_DIV.is_division
        assert InstructionKind.FP_DIV.is_division
        assert InstructionKind.BRANCH.is_control_flow
        assert not InstructionKind.LEA.is_control_flow

    def test_extension_is_vector(self):
        assert Extension.SSE.is_vector
        assert Extension.AVX.is_vector
        assert not Extension.BASE.is_vector


class TestGenerator:
    def test_exact_count(self):
        for count in (25, 48, 100, 280):
            isa = IsaGenerator(seed=0).build(count)
            assert len(isa) == count

    def test_unique_names(self):
        isa = build_default_isa(280)
        names = [inst.name for inst in isa]
        assert len(names) == len(set(names))

    def test_deterministic_for_same_seed(self):
        first = build_default_isa(120, seed=3)
        second = build_default_isa(120, seed=3)
        assert first == second

    def test_sorted_by_name(self):
        isa = build_small_isa(48)
        names = [inst.name for inst in isa]
        assert names == sorted(names)

    def test_covers_all_kinds_when_large_enough(self):
        isa = build_default_isa(280)
        kinds = {inst.kind for inst in isa}
        assert kinds == set(InstructionKind)

    def test_tiny_isa_prefers_frequent_kinds(self):
        isa = IsaGenerator().build(5)
        assert len(isa) == 5
        kinds = {inst.kind for inst in isa}
        assert InstructionKind.INT_ALU in kinds

    def test_widths_match_extensions(self):
        isa = build_default_isa(280)
        for inst in isa:
            if inst.extension is Extension.SSE:
                assert inst.width == 128
            elif inst.extension is Extension.AVX:
                assert inst.width == 256
            else:
                assert inst.width in (32, 64)

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            IsaGenerator().build(0)

    def test_benchmarkable_filter_removes_jumps(self):
        isa = build_default_isa(280)
        filtered = benchmarkable(isa)
        assert all(inst.is_benchmarkable for inst in filtered)
        assert len(filtered) < len(isa)

    def test_small_isa_subset_of_families(self):
        small = build_small_isa(48)
        assert len({inst.kind for inst in small}) >= 15
