"""The telemetry layer: tracer, warehouse, queries, stats CLI.

Four contracts are pinned down here:

1. **Off means off** — with no session active, every hook degrades to a
   shared no-op object and nothing is recorded anywhere.
2. **Observational only** — a telemetry-on characterization produces a
   bitwise-identical mapping and identical deterministic counters to a
   telemetry-off run (the differential test).
3. **Never block the hot path** — a full writer queue drops (and counts)
   records; a broken warehouse path surfaces only at session close.
4. **The warehouse answers the canned questions** — stage wall clocks,
   serving percentiles, solver rates, cluster events and the committed
   bench trajectory all come back non-empty from real or synthetic runs.

The stats-merge edge cases (empty / partial snapshots, the SolveStats
max-vs-additive split) ride along, as does the republish-watcher fault
drill: a corrupted sync is logged, counted in ``ServingStats`` and does
not kill the watcher.
"""

from __future__ import annotations

import dataclasses
import json
import sqlite3
import time

import pytest

from repro import PortModelBackend, build_toy_machine
from repro.artifacts import ArtifactRegistry
from repro.cluster import ClusterNode, Failpoints, corrupt
from repro.palmed import Palmed, PalmedConfig
from repro.serving.stats import ServingStats
from repro.solvers.stats import SolveStats
from repro.telemetry import TRACER, TelemetryWriter, Warehouse, telemetry_session
from repro.telemetry.queries import (
    _weighted_percentiles,
    cluster_events,
    serving_latency,
    solver_rates,
    stage_wall_clocks,
)
from repro.telemetry.tracer import _NULL_SPAN, Tracer

from test_serving import make_artifact


class _ListSink:
    """An in-memory sink capturing what a tracer emits."""

    def __init__(self):
        self.spans = []
        self.metrics = []

    def emit_span(self, name, span_id, parent_id, start_s, duration_s, attrs):
        self.spans.append((name, span_id, parent_id, duration_s, dict(attrs)))

    def emit_metric(self, name, t_s, value, labels):
        self.metrics.append((name, value, dict(labels)))


class TestTracer:
    def test_disabled_tracer_returns_the_shared_null_span(self):
        tracer = Tracer()
        assert tracer.span("anything", key=1) is _NULL_SPAN
        assert tracer.span("other") is _NULL_SPAN
        with tracer.span("nested") as span:
            span.set(ignored=True)  # no-op, no error
        tracer.metric("some.metric", 1.0, label="x")  # no sink: no-op

    def test_global_tracer_starts_disabled(self):
        assert TRACER.enabled is False
        assert TRACER.span("x") is _NULL_SPAN

    def test_spans_nest_and_record_parents(self):
        tracer, sink = Tracer(), _ListSink()
        assert tracer.activate(sink)
        with tracer.span("outer", stage="a"):
            with tracer.span("inner") as inner:
                inner.set(rows=3)
        tracer.deactivate()
        # Children finish (and emit) before their parents.
        assert [name for name, *_ in sink.spans] == ["inner", "outer"]
        inner_record, outer_record = sink.spans
        assert outer_record[2] is None  # outer has no parent
        assert inner_record[2] == outer_record[1]  # inner's parent is outer
        assert inner_record[4] == {"rows": 3}
        assert outer_record[4] == {"stage": "a"}

    def test_exception_marks_the_span_and_propagates(self):
        tracer, sink = Tracer(), _ListSink()
        tracer.activate(sink)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        tracer.deactivate()
        (name, _, _, _, attrs), = sink.spans
        assert name == "doomed"
        assert attrs["error"] == "ValueError"

    def test_second_activation_loses(self):
        tracer = Tracer()
        first, second = _ListSink(), _ListSink()
        assert tracer.activate(first) is True
        assert tracer.activate(second) is False
        tracer.metric("m", 1.0)
        assert first.metrics and not second.metrics
        tracer.deactivate()
        tracer.deactivate()  # idempotent
        assert tracer.enabled is False

    def test_metrics_flow_to_the_sink(self):
        tracer, sink = Tracer(), _ListSink()
        tracer.activate(sink)
        tracer.metric("serving.flush", 2.5, lane="skl", kernels=4)
        tracer.deactivate()
        assert sink.metrics == [("serving.flush", 2.5, {"lane": "skl", "kernels": 4})]


class TestWriterAndSession:
    def test_session_round_trips_spans_and_metrics(self, tmp_path):
        db = tmp_path / "wh.sqlite"
        with telemetry_session(db, kind="unit", machine_name="toy") as writer:
            assert writer is not None
            assert TRACER.enabled
            with TRACER.span("stage:alpha") as span:
                with TRACER.span("measure.batch", kernels=7):
                    pass
                span.set(status="ran")
            TRACER.metric("solver.solves", 12, model="LP2")
        assert TRACER.enabled is False

        connection = sqlite3.connect(db)
        runs = connection.execute(
            "SELECT kind, machine_name, finished_at, dropped FROM runs"
        ).fetchall()
        assert runs == [("unit", "toy", runs[0][2], 0)]
        assert runs[0][2] is not None  # close() stamped the finish
        spans = connection.execute(
            "SELECT name, parent_id, attrs FROM spans ORDER BY span_id"
        ).fetchall()
        assert [name for name, *_ in spans] == ["stage:alpha", "measure.batch"]
        assert spans[0][1] is None and spans[1][1] is not None
        assert json.loads(spans[0][2]) == {"status": "ran"}
        metrics = connection.execute(
            "SELECT name, value, labels FROM metrics"
        ).fetchall()
        assert metrics == [("solver.solves", 12.0, '{"model": "LP2"}')]
        connection.close()

    def test_none_path_is_a_no_op_session(self, tmp_path):
        with telemetry_session(None, kind="unit") as writer:
            assert writer is None
            assert TRACER.enabled is False

    def test_inner_session_yields_none_outer_keeps_recording(self, tmp_path):
        outer_db, inner_db = tmp_path / "outer.sqlite", tmp_path / "inner.sqlite"
        with telemetry_session(outer_db, kind="serve") as outer:
            with telemetry_session(inner_db, kind="characterize") as inner:
                assert inner is None
                with TRACER.span("stage:solo"):
                    pass
            # The inner exit must not have torn the outer session down.
            assert TRACER.enabled
            assert outer is not None
        outer_rows = sqlite3.connect(outer_db).execute(
            "SELECT COUNT(*) FROM spans"
        ).fetchone()
        inner_rows = sqlite3.connect(inner_db).execute(
            "SELECT COUNT(*) FROM spans"
        ).fetchone()
        assert outer_rows == (1,)  # recorded once, by the outer writer
        assert inner_rows == (0,)

    def test_full_queue_drops_and_counts_instead_of_blocking(self, tmp_path):
        writer = TelemetryWriter(tmp_path / "wh.sqlite", "unit", queue_capacity=2)
        writer.close()  # writer thread gone: nothing drains the queue
        for index in range(5):
            writer.emit_metric("m", float(index), float(index), {})
        assert writer.dropped == 3  # 2 queued, 3 dropped — and no blocking

    def test_unwritable_warehouse_surfaces_at_close_not_in_hot_path(self, tmp_path):
        # A directory is not a valid sqlite file: the writer thread fails,
        # but emits stay non-blocking and the error waits for close().
        writer = TelemetryWriter(tmp_path, "unit")
        for index in range(100):
            writer.emit_metric("m", float(index), 1.0, {})
        with pytest.raises(sqlite3.OperationalError):
            writer.close()


class TestBenchIngestion:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload), encoding="utf-8")

    def test_leaves_flatten_with_inherited_stamps(self, tmp_path):
        record = {
            "recorded_at": "2026-08-08T00:00:00+0000",
            "hostname": "bench-host",
            "host_cpus": 8,
            "bench": "serving",  # non-numeric leaf: skipped
            "p50_ms": 1.5,
            "passed": True,
            "ladder": [{"concurrency": 1}, {"concurrency": 32}],
            "nested": {"hostname": "other-host", "speedup": 3.0},
        }
        self._write(tmp_path / "BENCH_x.json", record)
        with Warehouse(tmp_path / "wh.sqlite") as warehouse:
            count = warehouse.ingest_bench_file(tmp_path / "BENCH_x.json")
            _, rows = warehouse.query(
                "SELECT metric, value, hostname, host_cpus FROM bench_records "
                "ORDER BY metric"
            )
        by_metric = {metric: (value, hostname, cpus)
                     for metric, value, hostname, cpus in rows}
        assert count == len(rows)
        assert by_metric["p50_ms"] == (1.5, "bench-host", 8)
        assert by_metric["passed"] == (1.0, "bench-host", 8)
        assert by_metric["ladder[0].concurrency"] == (1.0, "bench-host", 8)
        assert by_metric["ladder[1].concurrency"] == (32.0, "bench-host", 8)
        # The nested dict's own stamp wins over the inherited one.
        assert by_metric["nested.speedup"] == (3.0, "other-host", 8)
        assert "bench" not in by_metric

    def test_unstamped_records_ingest_with_null_stamps(self, tmp_path):
        self._write(tmp_path / "BENCH_old.json", {"speedup": 2.0})
        with Warehouse(tmp_path / "wh.sqlite") as warehouse:
            assert warehouse.ingest_bench_file(tmp_path / "BENCH_old.json") == 1
            _, rows = warehouse.query(
                "SELECT recorded_at, hostname, host_cpus FROM bench_records"
            )
        assert rows == [(None, None, None)]

    def test_reingestion_is_idempotent(self, tmp_path):
        self._write(tmp_path / "BENCH_a.json", {"x": 1, "y": 2})
        self._write(tmp_path / "BENCH_b.json", {"z": 3})
        with Warehouse(tmp_path / "wh.sqlite") as warehouse:
            first = warehouse.ingest_bench_dir(tmp_path)
            assert first == {"BENCH_a.json": 2, "BENCH_b.json": 1}
            # Re-run after one file changed: replaced, never duplicated.
            self._write(tmp_path / "BENCH_a.json", {"x": 10})
            second = warehouse.ingest_bench_dir(tmp_path)
            assert second == {"BENCH_a.json": 1, "BENCH_b.json": 1}
            _, rows = warehouse.query(
                "SELECT source, metric, value FROM bench_records ORDER BY metric"
            )
        assert rows == [
            ("BENCH_a.json", "x", 10.0),
            ("BENCH_b.json", "z", 3.0),
        ]


class TestQueries:
    def test_weighted_percentiles(self):
        # 99 kernels at 1 ms, one 512-kernel flush at 9 ms: the big flush
        # dominates the upper quantiles.
        samples = [(1.0, 99.0), (9.0, 512.0)]
        p50, p95, p99 = _weighted_percentiles(samples, (50.0, 95.0, 99.0))
        assert (p50, p95, p99) == (9.0, 9.0, 9.0)
        flat = [(float(value), 1.0) for value in range(1, 101)]
        assert _weighted_percentiles(flat, (50.0,)) == [50.0]
        assert _weighted_percentiles(flat, (100.0,)) == [100.0]

    def test_canned_queries_over_a_synthetic_run(self, tmp_path):
        db = tmp_path / "wh.sqlite"
        with telemetry_session(db, kind="unit", machine_name="toy"):
            with TRACER.span("stage:quadratic"):
                time.sleep(0.01)
            with TRACER.span("stage:finalize"):
                pass
            TRACER.metric("serving.flush", 1.0, kernels=99, failed=0)
            TRACER.metric("serving.flush", 9.0, kernels=512, failed=2)
            TRACER.metric("solver.solves", 10)
            TRACER.metric("solver.warm_start_hits", 4)
            TRACER.metric("cluster.failover", 1, node="n1")
            TRACER.metric("cluster.sync_failure", 1, node="n2")
        with Warehouse(db) as warehouse:
            columns, stages = stage_wall_clocks(warehouse)
            assert columns[2:] == ["stage", "executions", "wall_s", "mean_s"]
            assert [row[2] for row in stages] == ["quadratic", "finalize"]
            assert stages[0][4] >= 0.01

            columns, latency = serving_latency(warehouse)
            (row,) = latency
            by_column = dict(zip(columns, row))
            assert by_column["flushes"] == 2
            assert by_column["kernels"] == 611
            assert by_column["p50_ms"] == 9.0  # occupancy-weighted
            assert by_column["max_ms"] == 9.0
            assert by_column["failed"] == 2

            columns, solver = solver_rates(warehouse)
            (row,) = solver
            by_column = dict(zip(columns, row))
            assert by_column["solves"] == 10
            assert by_column["warm_hit_rate"] == pytest.approx(0.4)

            columns, cluster = cluster_events(warehouse)
            (row,) = cluster
            by_column = dict(zip(columns, row))
            assert by_column["failovers"] == 1
            assert by_column["sync_failures"] == 1


def _characterize(tmp_path, label, telemetry):
    machine = build_toy_machine()
    backend = PortModelBackend(machine)
    config = dataclasses.replace(
        PalmedConfig().for_fast_tests(), telemetry=telemetry
    )
    registry = ArtifactRegistry(tmp_path / label)
    return Palmed(
        backend, machine.benchmarkable_instructions(), config, registry=registry
    ).run()


class TestDifferential:
    """Telemetry is observational: on vs off changes no output bit."""

    def test_characterization_is_bitwise_identical_on_vs_off(self, tmp_path):
        db = tmp_path / "wh.sqlite"
        traced = _characterize(tmp_path, "on", telemetry=str(db))
        plain = _characterize(tmp_path, "off", telemetry=None)
        assert traced.mapping.to_json() == plain.mapping.to_json()
        assert (
            traced.stats.deterministic_dict() == plain.stats.deterministic_dict()
        )
        # ... and the traced run actually recorded something queryable.
        with Warehouse(db) as warehouse:
            _, runs = warehouse.query(
                "SELECT kind, machine_name, finished_at FROM runs"
            )
            assert runs and runs[0][0] == "characterize"
            assert runs[0][2] is not None
            _, stages = stage_wall_clocks(warehouse)
            assert len(stages) >= 3
            _, solver = solver_rates(warehouse)
            assert solver and solver[0][1] > 0  # solves counted

    def test_config_telemetry_never_invalidates_checkpoints(self):
        from repro.pipeline import palmed_stages

        config_off = PalmedConfig().for_fast_tests()
        config_on = dataclasses.replace(config_off, telemetry="/tmp/wh.sqlite")
        for stage in palmed_stages():
            assert "telemetry" not in stage.config_fields
            assert config_on.config_hash(stage.config_fields) == (
                config_off.config_hash(stage.config_fields)
            ), stage.name


class TestStatsMergeEdgeCases:
    """Satellite: merge semantics under empty / partial inputs."""

    def test_merge_snapshot_of_empty_dict_changes_nothing(self):
        stats = ServingStats()
        stats.record_admitted("fp", count=2, pending=5)
        stats.record_sync_failure()
        before = stats.snapshot()
        stats.merge_snapshot({})
        assert stats.snapshot() == before

    def test_merge_snapshot_partial_wire_dict(self):
        # A truncated snapshot (an old node, or a hand-built dict) merges
        # what it has; missing keys default to zero contribution.
        stats = ServingStats()
        stats.merge_snapshot(
            {
                "requests_admitted": 3,
                "latency_max_ms": 250.0,
                "replica_sync_failures": 2,
            }
        )
        snap = stats.snapshot()
        assert snap["requests_admitted"] == 3
        assert snap["latency_max_ms"] == pytest.approx(250.0)
        assert snap["replica_sync_failures"] == 2
        assert snap["requests_refused"] == 0
        assert snap["requests_by_fingerprint"] == {}

    def test_sync_failures_merge_additively_not_as_watermarks(self):
        assert "replica_sync_failures" not in ServingStats.WATERMARK_FIELDS
        left, right = ServingStats(), ServingStats()
        for _ in range(2):
            left.record_sync_failure()
        for _ in range(3):
            right.record_sync_failure()
        merged = left.merge(right).snapshot()
        assert merged["replica_sync_failures"] == 5
        # And across the wire path too.
        wire = ServingStats()
        wire.merge_snapshot(merged)
        wire.merge_snapshot(merged)
        assert wire.snapshot()["replica_sync_failures"] == 10

    def test_solve_stats_merge_with_empty_record_is_identity(self):
        record = SolveStats(
            model_builds=2, solves=5, warm_start_hits=3, worst_mip_gap=0.01,
            build_time=0.5, solve_time=1.5, lp_workers_requested=4,
            lp_workers_effective=2,
        )
        before = dataclasses.asdict(record)
        record.merge(SolveStats())
        assert dataclasses.asdict(record) == before
        # Identity also holds the other way around.
        empty = SolveStats()
        empty.merge(record)
        assert dataclasses.asdict(empty) == before

    def test_solve_stats_additive_vs_max_split(self):
        left = SolveStats(
            solves=5, warm_start_hits=2, worst_mip_gap=0.02,
            solve_time=1.0, lp_workers_requested=8, lp_workers_effective=8,
        )
        right = SolveStats(
            solves=3, warm_start_hits=1, worst_mip_gap=0.05,
            solve_time=0.5, lp_workers_requested=2, lp_workers_effective=1,
        )
        left.merge(right)
        assert left.solves == 8
        assert left.warm_start_hits == 3
        assert left.solve_time == pytest.approx(1.5)
        assert left.backend_solves == 5
        # Bounds and decisions take the max, never the sum.
        assert left.worst_mip_gap == 0.05
        assert left.lp_workers_requested == 8
        assert left.lp_workers_effective == 8


def _wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestWatcherSurvivesSyncFailures:
    """Satellite: a corrupted republish sync is loud but survivable."""

    def test_failed_sync_is_counted_logged_and_recovered_from(
        self, tmp_path, toy_machine, caplog
    ):
        source = tmp_path / "source"
        registry = ArtifactRegistry(source)
        registry.save(make_artifact(toy_machine))
        name = next(source.glob("mapping-*.json")).name

        failpoints = Failpoints()
        node = ClusterNode(
            "n0",
            source,
            tmp_path / "replica",
            republish_poll_s=0.05,
            failpoints=failpoints,
        )
        with caplog.at_level("WARNING", logger="repro.cluster.node"), node:
            # Publish v2 but corrupt exactly one sync of it: the watcher's
            # next poll fails, the one after repairs the replica.
            registry.save(make_artifact(toy_machine, include_front_end=False))
            failpoints.arm(("sync.copy", name), corrupt(offset=40), times=1)
            service = node.service
            assert _wait_until(
                lambda: service.stats.snapshot()["replica_sync_failures"] >= 1
            ), "watcher never recorded the failed sync"
            assert _wait_until(lambda: node.last_sync_error is None), (
                "watcher never recovered after the failpoint was spent"
            )
            assert failpoints.hits(("sync.copy", name)) == 1
            # The watcher survived, and the next clean poll repaired the
            # replica byte-for-byte (v2 installed despite the corruption).
            assert node._watcher_thread.is_alive()
            assert _wait_until(
                lambda: (tmp_path / "replica" / name).read_bytes()
                == (source / name).read_bytes()
            ), "recovered sync never repaired the replica"
        snap = service.stats.snapshot()
        assert snap["replica_sync_failures"] >= 1
        assert any(
            "replica sync" in record.getMessage() for record in caplog.records
        )


class TestStatsCli:
    def _main(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_reports_and_sql_and_json(self, tmp_path, capsys):
        db = tmp_path / "wh.sqlite"
        with telemetry_session(db, kind="unit", machine_name="toy"):
            with TRACER.span("stage:quadratic"):
                pass
            TRACER.metric("serving.flush", 2.0, kernels=3, failed=0)
        assert self._main("stats", "--db", str(db), "runs") == 0
        output = capsys.readouterr().out
        assert "unit" in output and "(1 row)" in output

        assert self._main("stats", "--db", str(db), "stages") == 0
        assert "quadratic" in capsys.readouterr().out

        assert self._main("stats", "--db", str(db), "serving", "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        row = dict(zip(payload["columns"], payload["rows"][0]))
        assert row["flushes"] == 1 and row["kernels"] == 3

        assert (
            self._main(
                "stats", "--db", str(db), "--sql",
                "SELECT COUNT(*) AS spans FROM spans",
            )
            == 0
        )
        assert "1" in capsys.readouterr().out

    def test_ingest_then_bench_report(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_x.json").write_text(
            json.dumps({"speedup": 4.0, "hostname": "h", "host_cpus": 2}),
            encoding="utf-8",
        )
        db = tmp_path / "wh.sqlite"
        assert (
            self._main(
                "stats", "--db", str(db), "bench",
                "--ingest", str(results), "--like", "%speedup%",
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "1 bench file(s)" in captured.err  # ingestion report on stderr
        assert "speedup" in captured.out and "4" in captured.out

    def test_no_report_requested_is_an_error(self, tmp_path, capsys):
        assert self._main("stats", "--db", str(tmp_path / "wh.sqlite")) == 2
        assert "report" in capsys.readouterr().err.lower()
