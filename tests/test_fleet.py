"""FleetRunner: many machines, one registry, any worker count."""

from __future__ import annotations

import dataclasses

import pytest

from repro.artifacts import ArtifactRegistry
from repro.measure.fingerprint import machine_fingerprint
from repro.palmed import PalmedConfig
from repro.pipeline import FleetMachine, FleetRunner


def fleet_config() -> PalmedConfig:
    """Small caps keep every LP solve optimal (never time-limited)."""
    return dataclasses.replace(
        PalmedConfig().for_fast_tests(),
        n_basic_cap=6,
        max_resources=7,
        lp1_time_limit=60.0,
    )


SPECS = [
    FleetMachine("toy"),
    FleetMachine("skl", isa_size=12, seed=2),
]


@pytest.fixture(scope="module")
def sequential_outcomes(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet-seq")
    runner = FleetRunner(str(root), fleet_config(), workers=0)
    return runner.characterize(SPECS), root


class TestFleetRunner:
    def test_outcomes_in_input_order(self, sequential_outcomes):
        outcomes, _ = sequential_outcomes
        assert [outcome.spec.machine for outcome in outcomes] == ["toy", "skl"]
        assert outcomes[0].machine_name == "toy-skl-p016"

    def test_artifacts_and_checkpoints_saved(self, sequential_outcomes):
        outcomes, root = sequential_outcomes
        registry = ArtifactRegistry(root)
        for outcome in outcomes:
            artifact = registry.load(outcome.machine_fingerprint)
            assert artifact.machine_name == outcome.machine_name
            assert (
                artifact.stats.deterministic_dict()
                == outcome.stats.deterministic_dict()
            )
        assert len(registry.entries()) == 2

    def test_parallel_fleet_matches_sequential(self, sequential_outcomes, tmp_path):
        outcomes, _ = sequential_outcomes
        runner = FleetRunner(str(tmp_path / "fleet-par"), fleet_config(), workers=2)
        parallel = runner.characterize(SPECS)
        assert len(parallel) == len(outcomes)
        for seq, par in zip(outcomes, parallel):
            assert par.machine_fingerprint == seq.machine_fingerprint
            assert par.stats.deterministic_dict() == seq.stats.deterministic_dict()

    def test_resubmitted_fleet_resumes_from_checkpoints(self, sequential_outcomes):
        outcomes, root = sequential_outcomes
        rerun = FleetRunner(str(root), fleet_config(), workers=0).characterize(SPECS)
        for cold, warm in zip(outcomes, rerun):
            assert warm.num_checkpoint_hits == len(warm.checkpoint_hits)
            assert warm.stats.deterministic_dict() == cold.stats.deterministic_dict()

    def test_no_resume_reruns_everything(self, sequential_outcomes):
        outcomes, root = sequential_outcomes
        rerun = FleetRunner(
            str(root), fleet_config(), workers=0, resume=False
        ).characterize(SPECS)
        for cold, warm in zip(outcomes, rerun):
            assert warm.num_checkpoint_hits == 0
            assert warm.stats.deterministic_dict() == cold.stats.deterministic_dict()

    def test_fingerprints_match_machine_content(self, sequential_outcomes):
        from repro import build_machine

        outcomes, _ = sequential_outcomes
        toy = build_machine("toy")
        assert outcomes[0].machine_fingerprint == machine_fingerprint(toy)

    def test_format_table_lists_every_machine(self, sequential_outcomes):
        outcomes, _ = sequential_outcomes
        table = FleetRunner.format_table(outcomes)
        assert "toy-skl-p016" in table
        assert "ckpt hits" in table
        assert len(table.splitlines()) == 1 + len(outcomes)

    def test_display_name_defaults(self):
        assert FleetMachine("skl", isa_size=24).display_name == "skl/isa24/s0"
        assert FleetMachine("toy", label="lab-42").display_name == "lab-42"
