"""Tests for the predictors (Palmed wrapper and the baselines of Sec. VI)."""

from __future__ import annotations

import pytest

from repro import Microkernel, PortModelBackend
from repro.isa import InstructionKind
from repro.machines import build_toy_machine
from repro.machines.toy import TOY_INSTRUCTIONS
from repro.mapping import ConjunctiveResourceMapping
from repro.predictors import (
    IacaLikePredictor,
    LlvmMcaPredictor,
    PMEvoConfig,
    PalmedPredictor,
    Prediction,
    Predictor,
    UopsInfoPredictor,
    train_pmevo,
)


class TestPredictionDataclass:
    def test_full_support(self):
        assert Prediction(ipc=2.0, supported_fraction=1.0).is_full_support
        assert not Prediction(ipc=2.0, supported_fraction=0.5).is_full_support
        assert not Prediction(ipc=None, supported_fraction=0.0).is_full_support


class TestPalmedPredictor:
    @pytest.fixture(scope="class")
    def mapping(self):
        machine = build_toy_machine()
        return machine.true_conjunctive(include_front_end=True)

    def test_wraps_bare_mapping(self, mapping, addss_bsr_kernels):
        predictor = PalmedPredictor(mapping, name="Palmed")
        assert isinstance(predictor, Predictor)
        k1, k2 = addss_bsr_kernels
        assert predictor.predict(k1).ipc == pytest.approx(2.0)
        assert predictor.predict(k2).ipc == pytest.approx(1.5)
        assert predictor.predict_ipc(k1) == pytest.approx(2.0)

    def test_partial_support(self, mapping, addss_bsr_kernels):
        restricted = mapping.restricted([TOY_INSTRUCTIONS["ADDSS"]])
        predictor = PalmedPredictor(restricted)
        k1, _ = addss_bsr_kernels
        prediction = predictor.predict(k1)
        assert prediction.supported_fraction == pytest.approx(2.0 / 3.0)
        assert prediction.ipc is not None

    def test_no_support(self, mapping):
        restricted = mapping.restricted([TOY_INSTRUCTIONS["ADDSS"]])
        predictor = PalmedPredictor(restricted)
        kernel = Microkernel.single(TOY_INSTRUCTIONS["BSR"])
        prediction = predictor.predict(kernel)
        assert prediction.ipc is None
        assert prediction.supported_fraction == 0.0


class TestUopsInfoPredictor:
    def test_overestimates_front_end_bound_kernels(self, small_skl_machine):
        """The paper's observation: port-only tools over-estimate high-IPC kernels."""
        predictor = UopsInfoPredictor(small_skl_machine)
        backend = PortModelBackend(small_skl_machine)
        alu = [
            inst for inst in small_skl_machine.instructions
            if inst.kind is InstructionKind.INT_ALU and inst.variant == 0
        ][:4]
        loads = [
            inst for inst in small_skl_machine.instructions
            if inst.kind is InstructionKind.LOAD
        ][:2]
        kernel = Microkernel({**{i: 2 for i in alu}, **{i: 1 for i in loads}})
        native = backend.ipc(kernel)
        predicted = predictor.predict(kernel).ipc
        assert predicted > native

    def test_exact_on_port_bound_kernels(self, toy_machine, addss_bsr_kernels):
        predictor = UopsInfoPredictor(toy_machine)
        k1, k2 = addss_bsr_kernels
        assert predictor.predict(k1).ipc == pytest.approx(2.0)
        assert predictor.predict(k2).ipc == pytest.approx(1.5)

    def test_restricted_support(self, toy_machine):
        predictor = UopsInfoPredictor(
            toy_machine, supported_instructions=[TOY_INSTRUCTIONS["ADDSS"]]
        )
        assert predictor.supports(TOY_INSTRUCTIONS["ADDSS"])
        assert not predictor.supports(TOY_INSTRUCTIONS["BSR"])


class TestExpertPredictors:
    def test_iaca_rejects_non_intel_machines(self, small_zen_machine):
        with pytest.raises(ValueError):
            IacaLikePredictor(small_zen_machine)

    def test_iaca_supports_skl(self, small_skl_machine):
        predictor = IacaLikePredictor(small_skl_machine)
        assert predictor.name == "IACA"
        instruction = small_skl_machine.benchmarkable_instructions()[0]
        assert predictor.predict(Microkernel.single(instruction, 2)).ipc is not None

    def test_llvm_mca_supports_both(self, small_skl_machine, small_zen_machine):
        for machine in (small_skl_machine, small_zen_machine):
            predictor = LlvmMcaPredictor(machine)
            instruction = machine.benchmarkable_instructions()[0]
            assert predictor.predict(Microkernel.single(instruction, 2)).ipc is not None

    def test_llvm_mca_has_coverage_gaps(self, small_skl_machine):
        predictor = LlvmMcaPredictor(small_skl_machine, unsupported_rate=0.2)
        supported = [
            inst for inst in small_skl_machine.benchmarkable_instructions()
            if predictor.supports(inst)
        ]
        assert 0 < len(supported) < len(small_skl_machine.benchmarkable_instructions())

    def test_expert_with_zero_error_matches_native(self, small_skl_machine):
        predictor = LlvmMcaPredictor(
            small_skl_machine, table_error_rate=0.0, unsupported_rate=0.0
        )
        backend = PortModelBackend(small_skl_machine)
        instruction = small_skl_machine.benchmarkable_instructions()[3]
        kernel = Microkernel.single(instruction, 3)
        assert predictor.predict(kernel).ipc == pytest.approx(backend.ipc(kernel))

    def test_table_errors_shift_predictions(self, small_skl_machine):
        exact = LlvmMcaPredictor(small_skl_machine, table_error_rate=0.0, unsupported_rate=0.0)
        noisy = LlvmMcaPredictor(small_skl_machine, table_error_rate=1.0, unsupported_rate=0.0)
        backend = PortModelBackend(small_skl_machine)
        differences = 0
        for instruction in small_skl_machine.benchmarkable_instructions()[:20]:
            kernel = Microkernel.single(instruction, 4)
            if abs(noisy.predict(kernel).ipc - exact.predict(kernel).ipc) > 1e-9:
                differences += 1
        assert differences > 0
        del backend


class TestPMEvo:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PMEvoConfig(num_ports=0)
        with pytest.raises(ValueError):
            PMEvoConfig(coverage_fraction=0.0)
        with pytest.raises(ValueError):
            PMEvoConfig(population_size=4, elite=3)

    def test_training_on_toy_machine(self, toy_machine, addss_bsr_kernels):
        backend = PortModelBackend(toy_machine)
        config = PMEvoConfig(
            num_ports=4, population_size=30, generations=30, coverage_fraction=1.0, seed=1
        )
        predictor = train_pmevo(backend, toy_machine.benchmarkable_instructions(), config)
        assert predictor.name == "PMEvo"
        k1, _ = addss_bsr_kernels
        prediction = predictor.predict(k1)
        assert prediction.ipc is not None
        # The evolved mapping should be in the right ballpark on trained pairs.
        assert prediction.ipc == pytest.approx(2.0, rel=0.5)

    def test_coverage_gap(self, toy_machine):
        backend = PortModelBackend(toy_machine)
        config = PMEvoConfig(
            num_ports=3, population_size=20, generations=10, coverage_fraction=0.5, seed=0
        )
        predictor = train_pmevo(backend, toy_machine.benchmarkable_instructions(), config)
        supported = [
            inst for inst in toy_machine.benchmarkable_instructions()
            if predictor.supports(inst)
        ]
        assert 0 < len(supported) < len(toy_machine.benchmarkable_instructions())
        unsupported = [
            inst for inst in toy_machine.benchmarkable_instructions()
            if not predictor.supports(inst)
        ]
        prediction = predictor.predict(Microkernel.single(unsupported[0]))
        assert prediction.ipc is None

    def test_determinism(self, toy_machine):
        backend = PortModelBackend(toy_machine)
        config = PMEvoConfig(num_ports=3, population_size=20, generations=10, seed=4)
        first = train_pmevo(backend, toy_machine.benchmarkable_instructions(), config)
        second = train_pmevo(backend, toy_machine.benchmarkable_instructions(), config)
        kernel = Microkernel.single(toy_machine.benchmarkable_instructions()[0], 2)
        assert first.predict(kernel).ipc == second.predict(kernel).ipc
