#!/usr/bin/env python3
"""Characterize a Skylake-like machine and evaluate prediction accuracy.

This is a scaled-down version of the paper's SKL-SP experiment:

* build a Skylake-like machine over a synthetic ISA (unified scheduler,
  4-wide front-end, non-pipelined dividers);
* run PALMED to infer its resource mapping from cycle measurements only;
* evaluate the inferred mapping against the uops.info-like port-mapping
  oracle and the llvm-mca-like expert model on a SPEC-like basic-block
  suite, reporting the coverage / RMS error / Kendall's τ columns of
  Fig. 4b.

Run with:  python examples/skylake_characterization.py [--instructions N]
(N defaults to 60 to keep the example under a couple of minutes.)
"""

from __future__ import annotations

import argparse

from repro import PortModelBackend, build_skylake_like_machine, build_small_isa
from repro.evaluation import evaluate_predictors, format_accuracy_table, format_comparison_with_paper
from repro.palmed import Palmed, PalmedConfig
from repro.predictors import LlvmMcaPredictor, PalmedPredictor, UopsInfoPredictor
from repro.workloads import generate_spec_like_suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instructions", type=int, default=60,
                        help="size of the synthetic ISA (default: 60)")
    parser.add_argument("--blocks", type=int, default=150,
                        help="number of SPEC-like basic blocks (default: 150)")
    args = parser.parse_args()

    isa = build_small_isa(args.instructions, seed=0)
    machine = build_skylake_like_machine(isa=isa)
    backend = PortModelBackend(machine)
    print(machine.summary())
    print()

    print("Running PALMED (this is the LP-heavy part)...")
    result = Palmed(backend, machine.benchmarkable_instructions(), PalmedConfig()).run()
    print(result.stats.format_table())
    print()

    suite = generate_spec_like_suite(machine.instructions, n_blocks=args.blocks, seed=0)
    print(suite.summary())
    predictors = [
        PalmedPredictor(result),
        UopsInfoPredictor(machine),
        LlvmMcaPredictor(machine),
    ]
    evaluation = evaluate_predictors(backend, suite, predictors, machine_name=machine.name)

    print()
    print("=== Accuracy (Fig. 4b analogue, SKL-like / SPEC-like) ===")
    print(format_accuracy_table([evaluation]))
    print()
    print("Comparison with the paper's SKL-SP / SPEC2017 row:")
    for metrics in evaluation.all_metrics():
        print(" ", format_comparison_with_paper(metrics, "SKL-SP", "SPEC2017"))


if __name__ == "__main__":
    main()
