#!/usr/bin/env python3
"""Quickstart: infer a resource mapping for the paper's toy machine.

This walks through the full PALMED flow on the 6-instruction, 3-port machine
of Fig. 1 of the paper (Skylake instructions restricted to ports 0, 1 and 6):

1. build the ground-truth machine and a measurement backend ("the hardware");
2. run the PALMED pipeline, which only ever sees elapsed-cycle measurements;
3. inspect the inferred conjunctive resource mapping;
4. predict the throughput of the paper's example kernels and compare with
   the machine's true behaviour.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Microkernel, PortModelBackend, build_toy_machine
from repro.machines.toy import TOY_INSTRUCTIONS
from repro.palmed import Palmed, PalmedConfig


def main() -> None:
    # 1. The "hardware": a ground-truth port model PALMED never looks inside.
    machine = build_toy_machine()
    backend = PortModelBackend(machine)
    print(machine.summary())
    print()

    # 2. Run the inference.  The toy machine is small enough that the default
    #    configuration finishes in about a second.
    palmed = Palmed(backend, machine.benchmarkable_instructions(), PalmedConfig())
    result = palmed.run()

    print("=== Inference statistics (Table II analogue) ===")
    print(result.stats.format_table())
    print()

    # 3. The inferred conjunctive mapping: instructions -> abstract resources.
    print("=== Inferred resource mapping (normalized, cf. Fig. 1c) ===")
    print(result.mapping.table())
    print()
    print("Saturating kernels per resource:")
    for resource, kernel in sorted(result.saturating_kernels.items()):
        print(f"  {resource}: {kernel.notation()}")
    print()

    # 4. Throughput predictions for the paper's running examples.
    addss = TOY_INSTRUCTIONS["ADDSS"]
    bsr = TOY_INSTRUCTIONS["BSR"]
    examples = {
        "ADDSS^2 BSR  (Fig. 2a)": Microkernel({addss: 2, bsr: 1}),
        "ADDSS BSR^2  (Fig. 2b)": Microkernel({addss: 1, bsr: 2}),
    }
    print("=== Throughput predictions ===")
    for label, kernel in examples.items():
        predicted = result.predict_ipc(kernel)
        native = machine.true_ipc(kernel)
        print(f"{label}: predicted IPC = {predicted:.3f}, native IPC = {native:.3f}")
    print()
    print(result.explain(examples["ADDSS BSR^2  (Fig. 2b)"]))


if __name__ == "__main__":
    main()
