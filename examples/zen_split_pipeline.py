#!/usr/bin/env python3
"""Why PALMED is less accurate on Zen1: the split-pipeline effect.

Section VI of the paper observes that PALMED's error is higher on the AMD
Zen1 machine than on Skylake because Zen splits its execution engine into
independent integer and floating-point clusters; the resource-minimizing
inference tends to merge them, so IPC is under-predicted for kernels that
mix both clusters.

This example reproduces the phenomenon on the Zen1-like model:

* it runs PALMED on a Zen1-like machine,
* compares the predicted vs native IPC for integer-only, FP-only and mixed
  kernels,
* and prints the per-suite accuracy next to the paper's Zen1 row.

Run with:  python examples/zen_split_pipeline.py
"""

from __future__ import annotations

from repro import Microkernel, PortModelBackend, build_small_isa, build_zen_like_machine
from repro.evaluation import evaluate_predictors, format_accuracy_table
from repro.isa import InstructionKind
from repro.palmed import Palmed, PalmedConfig
from repro.predictors import LlvmMcaPredictor, PalmedPredictor
from repro.workloads import generate_polybench_like_suite, generate_spec_like_suite


def main() -> None:
    isa = build_small_isa(48, seed=0)
    machine = build_zen_like_machine(isa=isa)
    backend = PortModelBackend(machine)
    print(machine.summary())
    print()

    print("Running PALMED on the Zen1-like machine...")
    result = Palmed(backend, machine.benchmarkable_instructions(), PalmedConfig()).run()
    print(result.stats.format_table())
    print()

    # Hand-picked kernels showing the cluster-merge effect.
    mapped = [inst for inst in machine.benchmarkable_instructions() if result.supports(inst)]
    int_insts = [i for i in mapped if i.kind is InstructionKind.INT_ALU][:3]
    fp_insts = [i for i in mapped if i.kind in (InstructionKind.FP_MUL, InstructionKind.FP_ADD)][:3]
    if int_insts and fp_insts:
        kernels = {
            "integer-only": Microkernel({inst: 2 for inst in int_insts}),
            "fp-only": Microkernel({inst: 2 for inst in fp_insts}),
            "mixed int+fp": Microkernel(
                {**{inst: 2 for inst in int_insts}, **{inst: 2 for inst in fp_insts}}
            ),
        }
        print("=== Split-pipeline effect ===")
        for label, kernel in kernels.items():
            native = machine.true_ipc(kernel)
            predicted = result.predict_ipc(kernel)
            print(f"  {label:14s}: native {native:5.2f} IPC, Palmed {predicted:5.2f} IPC")
        print("  (the mixed kernel is the one the merged-resource model under-predicts)")
        print()

    predictors = [PalmedPredictor(result), LlvmMcaPredictor(machine)]
    evaluations = []
    for suite in (
        generate_spec_like_suite(machine.instructions, n_blocks=120, seed=0),
        generate_polybench_like_suite(machine.instructions, seed=0, bookkeeping_blocks=15),
    ):
        evaluations.append(
            evaluate_predictors(backend, suite, predictors, machine_name=machine.name)
        )
    print("=== Accuracy on the Zen1-like machine (Fig. 4b analogue) ===")
    print(format_accuracy_table(evaluations))
    print()
    print("Paper (ZEN1): Palmed err 29.9% (SPEC) / 32.6% (Polybench); "
          "llvm-mca 33.4% / 28.6%")


if __name__ == "__main__":
    main()
