#!/usr/bin/env python3
"""Characterize once, predict forever: artifacts + vectorized batch serving.

This walks the full serving workflow documented in ``docs/serving.md``:

1. run the PALMED inference on the toy machine of Fig. 1 ("characterize");
2. save the inferred mapping as a versioned artifact keyed by the machine's
   content fingerprint (:mod:`repro.artifacts`);
3. reload the artifact as a *fresh process* would — by fingerprint, with no
   access to the original ``PalmedResult``;
4. serve batched throughput predictions for a 500-block synthetic suite
   through the vectorized engine, and check them against the scalar path
   (they are bitwise-identical, not just close);
5. time scalar vs batched serving on this machine.

Run with:  python examples/batch_prediction.py
"""

from __future__ import annotations

import tempfile
import time

from repro import Palmed, PortModelBackend, build_toy_machine
from repro.artifacts import ArtifactRegistry, MappingArtifact
from repro.palmed import PalmedConfig
from repro.predictors import PalmedPredictor
from repro.predictors.batch import SuiteMatrix
from repro.workloads import generate_spec_like_suite


def main() -> None:
    # 1. Characterize: the expensive step (hours on real hardware, Table II).
    machine = build_toy_machine()
    backend = PortModelBackend(machine)
    palmed = Palmed(
        backend, machine.benchmarkable_instructions(), PalmedConfig().for_fast_tests()
    )
    result = palmed.run()
    print(f"characterized {machine.name}: "
          f"{result.stats.num_instructions_mapped} instructions mapped, "
          f"{result.stats.num_resources} resources")

    # 2. Persist the mapping, keyed by the machine's content fingerprint.
    registry_dir = tempfile.mkdtemp(prefix="palmed-artifacts-")
    registry = ArtifactRegistry(registry_dir)
    path = registry.save(MappingArtifact.from_result(result, machine))
    print(f"artifact saved to {path}")

    # 3. Reload as a fresh process would: a new registry handle, lookup by
    #    the machine's *current* fingerprint.  A changed machine model would
    #    change the fingerprint and refuse the stale artifact.
    artifact = ArtifactRegistry(registry_dir).load_for_machine(machine)
    predictor = PalmedPredictor(artifact.mapping)
    print(f"loaded mapping for {artifact.machine_name} "
          f"(fingerprint {artifact.machine_fingerprint[:16]}…)")

    # 4. Serve a whole suite: lower it once, predict it in one batch.
    suite = generate_spec_like_suite(machine.instructions, n_blocks=500, seed=0)
    lowered = SuiteMatrix([block.kernel for block in suite])
    predictions = predictor.predict_batch(lowered)

    scalar = [predictor.predict(block.kernel) for block in suite]
    assert predictions == scalar, "batch serving must be bitwise-identical"
    processed = [p for p in predictions if p.ipc is not None]
    print(f"served {len(predictions)} blocks "
          f"({len(processed)} processed, mean predicted IPC "
          f"{sum(p.ipc for p in processed) / len(processed):.3f}); "
          f"bitwise-equal to the scalar loop")

    # 5. Scalar vs vectorized serving throughput on this machine.
    start = time.perf_counter()
    for block in suite:
        predictor.predict(block.kernel)
    scalar_time = time.perf_counter() - start
    start = time.perf_counter()
    predictor.predict_batch(lowered)
    batch_time = time.perf_counter() - start
    print(f"scalar loop {scalar_time * 1e3:.1f} ms, "
          f"lowered batch {batch_time * 1e3:.1f} ms "
          f"({scalar_time / batch_time:.1f}x) — see "
          f"benchmarks/bench_predict_throughput.py for the asserted numbers")


if __name__ == "__main__":
    main()
