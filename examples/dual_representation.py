#!/usr/bin/env python3
"""The dual representation of Section III/IV and Fig. 1, step by step.

This example does not run the inference at all: it demonstrates the
theoretical contribution of the paper — the equivalence between the
classical disjunctive port mapping (whose throughput needs a scheduling LP)
and the conjunctive resource mapping (whose throughput is a closed formula).

It reproduces, numerically:
* the port mapping of Fig. 1a and its ∇-dual of Fig. 1b/1c;
* the schedules of Fig. 2 (ADDSS^2 BSR at IPC 2, ADDSS BSR^2 at IPC 1.5);
* the worked computation of t(K) from Section IV;
* the equivalence theorem checked on every pair of toy instructions.

Run with:  python examples/dual_representation.py
"""

from __future__ import annotations

from repro import Microkernel, build_dual, build_toy_machine
from repro.machines.toy import TOY_INSTRUCTIONS


def main() -> None:
    machine = build_toy_machine()
    disjunctive = machine.port_mapping

    print("=== Disjunctive port mapping (Fig. 1a) ===")
    for instruction in disjunctive.instructions:
        uops = disjunctive.uops(instruction)
        description = " + ".join("{" + ",".join(sorted(uop.ports)) + "}" for uop in uops)
        print(f"  {instruction.name:6s} -> {description}")
    print()

    dual = build_dual(disjunctive)
    print("=== Conjunctive dual (Fig. 1b, non-normalized) ===")
    print(dual.table())
    print()
    print("Resource throughputs:",
          {resource: dual.throughput_of(resource) for resource in dual.resources})
    print()

    normalized = dual.normalized()
    addss = TOY_INSTRUCTIONS["ADDSS"]
    bsr = TOY_INSTRUCTIONS["BSR"]
    print("=== Normalized form (Fig. 1c) ===")
    print(f"rho(ADDSS, r01)  = {normalized.rho(addss, 'r(p0+p1)'):.3f}   (paper: 1/2)")
    print(f"rho(ADDSS, r016) = {normalized.rho(addss, 'r(p0+p1+p6)'):.3f}   (paper: 1/3)")
    print(f"rho(BSR,   r1)   = {normalized.rho(bsr, 'r(p1)'):.3f}   (paper: 1)")
    print()

    print("=== Worked example of Section IV ===")
    kernel = Microkernel({addss: 2, bsr: 1})
    loads = normalized.load_per_resource(kernel)
    for resource in sorted(loads, key=lambda r: -loads[r]):
        print(f"  load({resource:14s}) = {loads[resource]:.3f}")
    print(f"  t(ADDSS^2 BSR) = {normalized.cycles(kernel):.3f} cycles   (paper: 1.5)")
    print(f"  throughput     = {normalized.ipc(kernel):.3f} IPC      (paper: 2)")
    print()

    print("=== Equivalence theorem check (dual formula vs scheduling LP) ===")
    instructions = machine.instructions
    worst_gap = 0.0
    checked = 0
    for i, a in enumerate(instructions):
        for b in instructions[i:]:
            kernel = Microkernel({a: 2, b: 1}) if a != b else Microkernel({a: 3})
            lp_cycles = disjunctive.cycles(kernel)
            dual_cycles = dual.cycles(kernel)
            worst_gap = max(worst_gap, abs(lp_cycles - dual_cycles))
            checked += 1
    print(f"  {checked} kernels checked, largest |LP - dual| gap: {worst_gap:.2e} cycles")


if __name__ == "__main__":
    main()
