"""The tool-comparison harness producing the rows of Fig. 4b.

For every basic block of a suite the harness measures the native IPC of the
corresponding microkernel on the machine backend, queries every predictor,
and aggregates the per-tool coverage, weighted RMS error and Kendall's τ —
exactly the three columns reported per (machine, suite, tool) in the paper.

Both sides of the comparison are batched.  Native measurements go through
the batched measurement layer (:mod:`repro.measure`): the whole suite is
measured in one batch, optionally fanned out over worker processes and
served from a persistent :class:`~repro.measure.MeasurementCache`, so
re-evaluating suites against a machine that a PALMED run already
characterized costs no re-measurement.  Predictions go through
``predict_batch``: the suite is lowered once to its sparse count matrix
(:class:`~repro.predictors.batch.SuiteMatrix`) and shared by every tool, so
mapping-backed predictors evaluate the whole suite with a few numpy
operations instead of one Python call per block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.measure import MeasurementCache, ParallelDispatcher, backend_fingerprint
from repro.predictors.base import Prediction, Predictor
from repro.predictors.batch import SuiteMatrix, predict_batch_serial
from repro.evaluation.metrics import coverage as coverage_metric
from repro.evaluation.metrics import kendall_tau, rms_error
from repro.simulator.backend import MeasurementBackend
from repro.workloads.basic_block import BasicBlock, BenchmarkSuite


@dataclass
class BlockRecord:
    """Native measurement and per-tool predictions for one basic block."""

    block: BasicBlock
    native_ipc: float
    predictions: Dict[str, Prediction] = field(default_factory=dict)

    def ratio(self, tool: str) -> Optional[float]:
        """Predicted/native IPC ratio for one tool (None if unsupported)."""
        prediction = self.predictions.get(tool)
        if prediction is None or prediction.ipc is None or self.native_ipc <= 0:
            return None
        return prediction.ipc / self.native_ipc


@dataclass
class ToolMetrics:
    """Aggregated accuracy of one tool over one suite (a cell group of Fig. 4b)."""

    tool: str
    coverage: float
    rms_error: float
    kendall_tau: float
    num_blocks: int
    num_processed: int

    def as_row(self) -> Dict[str, float]:
        return {
            "coverage_percent": 100.0 * self.coverage,
            "rms_error_percent": 100.0 * self.rms_error,
            "kendall_tau": self.kendall_tau,
        }


@dataclass
class EvaluationResult:
    """All records plus per-tool aggregated metrics for one (machine, suite) pair."""

    machine_name: str
    suite_name: str
    records: List[BlockRecord]
    tools: List[str]

    def metrics(self, tool: str) -> ToolMetrics:
        """Aggregate coverage / error / correlation for one tool."""
        processed_records = [
            record
            for record in self.records
            if record.predictions.get(tool) is not None
            and record.predictions[tool].ipc is not None
        ]
        predicted = [record.predictions[tool].ipc for record in processed_records]
        native = [record.native_ipc for record in processed_records]
        weights = [record.block.weight for record in processed_records]
        if processed_records:
            error = rms_error(predicted, native, weights)
            tau = kendall_tau(predicted, native) if len(processed_records) >= 2 else 0.0
        else:
            error = float("nan")
            tau = float("nan")
        return ToolMetrics(
            tool=tool,
            coverage=coverage_metric(len(processed_records), len(self.records)),
            rms_error=error,
            kendall_tau=tau,
            num_blocks=len(self.records),
            num_processed=len(processed_records),
        )

    def all_metrics(self) -> List[ToolMetrics]:
        return [self.metrics(tool) for tool in self.tools]

    def ratios(self, tool: str) -> List[float]:
        """Predicted/native ratios of every processed block (heatmap input)."""
        values = []
        for record in self.records:
            ratio = record.ratio(tool)
            if ratio is not None:
                values.append(ratio)
        return values


def _native_ipcs(
    backend: MeasurementBackend,
    blocks: List[BasicBlock],
    dispatcher: ParallelDispatcher,
    cache: Optional[MeasurementCache],
) -> List[Optional[float]]:
    """Native IPC of every block (``None`` where unmeasurable), batched.

    Persistent-cache hits skip the backend entirely; everything else is
    measured in one dispatcher call.  Failed kernels (an instruction the
    machine does not implement) are never cached.
    """
    fingerprint = backend_fingerprint(backend) if cache is not None else None
    values: List[Optional[float]] = [None] * len(blocks)
    missing: List[int] = []
    for index, block in enumerate(blocks):
        if fingerprint is not None:
            cached = cache.lookup(fingerprint, block.kernel)
            if cached is not None:
                values[index] = cached
                continue
        missing.append(index)
    measured = dispatcher.measure_safe(backend, [blocks[i].kernel for i in missing])
    for index, value in zip(missing, measured):
        values[index] = value
        if value is not None and fingerprint is not None:
            cache.store(fingerprint, blocks[index].kernel, value)
    if cache is not None:
        cache.save()
    return values


def evaluate_predictors(
    backend: MeasurementBackend,
    suite: BenchmarkSuite,
    predictors: Sequence[Predictor],
    machine_name: str = "",
    workers: int = 0,
    cache: Optional[MeasurementCache] = None,
    dispatcher: Optional[ParallelDispatcher] = None,
) -> EvaluationResult:
    """Run every predictor on every block of a suite against native execution.

    Blocks whose native IPC cannot be measured (e.g. they contain an
    instruction the machine does not implement) are skipped, mirroring the
    paper's restriction to the blocks its back-end can generate.

    Parameters
    ----------
    workers:
        Worker processes for the native measurements (``0``/``1`` =
        in-process, the historical behaviour).  Ignored when an explicit
        ``dispatcher`` is given.
    cache:
        Optional persistent measurement cache; re-running the harness (or
        running it after a PALMED run that used the same cache and backend)
        then skips every already-measured kernel.
    """
    if dispatcher is None:
        dispatcher = ParallelDispatcher(workers=workers)
    blocks = list(suite)
    natives = _native_ipcs(backend, blocks, dispatcher, cache)
    records: List[BlockRecord] = [
        BlockRecord(block=block, native_ipc=native_ipc)
        for block, native_ipc in zip(blocks, natives)
        if native_ipc is not None
    ]
    # Lower the measurable blocks once; every predictor serves the whole
    # suite from the same sparse count matrix (bitwise-equal to the scalar
    # per-block loop by the predict_batch contract).
    lowered = SuiteMatrix([record.block.kernel for record in records])
    for predictor in predictors:
        batch = getattr(predictor, "predict_batch", None)
        if batch is None:  # pre-batch third-party predictor
            predictions = predict_batch_serial(predictor, lowered)
        else:
            predictions = batch(lowered)
        if len(predictions) != len(records):
            raise ValueError(
                f"predictor {predictor.name!r} returned {len(predictions)} "
                f"predictions for {len(records)} blocks; predict_batch must "
                f"answer every kernel in input order"
            )
        for record, prediction in zip(records, predictions):
            record.predictions[predictor.name] = prediction
    return EvaluationResult(
        machine_name=machine_name or getattr(getattr(backend, "machine", None), "name", ""),
        suite_name=suite.name,
        records=records,
        tools=[predictor.name for predictor in predictors],
    )
