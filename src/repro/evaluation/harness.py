"""The tool-comparison harness producing the rows of Fig. 4b.

For every basic block of a suite the harness measures the native IPC of the
corresponding microkernel on the machine backend, queries every predictor,
and aggregates the per-tool coverage, weighted RMS error and Kendall's τ —
exactly the three columns reported per (machine, suite, tool) in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.predictors.base import Prediction, Predictor
from repro.evaluation.metrics import coverage as coverage_metric
from repro.evaluation.metrics import kendall_tau, rms_error
from repro.simulator.backend import MeasurementBackend
from repro.workloads.basic_block import BasicBlock, BenchmarkSuite


@dataclass
class BlockRecord:
    """Native measurement and per-tool predictions for one basic block."""

    block: BasicBlock
    native_ipc: float
    predictions: Dict[str, Prediction] = field(default_factory=dict)

    def ratio(self, tool: str) -> Optional[float]:
        """Predicted/native IPC ratio for one tool (None if unsupported)."""
        prediction = self.predictions.get(tool)
        if prediction is None or prediction.ipc is None or self.native_ipc <= 0:
            return None
        return prediction.ipc / self.native_ipc


@dataclass
class ToolMetrics:
    """Aggregated accuracy of one tool over one suite (a cell group of Fig. 4b)."""

    tool: str
    coverage: float
    rms_error: float
    kendall_tau: float
    num_blocks: int
    num_processed: int

    def as_row(self) -> Dict[str, float]:
        return {
            "coverage_percent": 100.0 * self.coverage,
            "rms_error_percent": 100.0 * self.rms_error,
            "kendall_tau": self.kendall_tau,
        }


@dataclass
class EvaluationResult:
    """All records plus per-tool aggregated metrics for one (machine, suite) pair."""

    machine_name: str
    suite_name: str
    records: List[BlockRecord]
    tools: List[str]

    def metrics(self, tool: str) -> ToolMetrics:
        """Aggregate coverage / error / correlation for one tool."""
        processed_records = [
            record
            for record in self.records
            if record.predictions.get(tool) is not None
            and record.predictions[tool].ipc is not None
        ]
        predicted = [record.predictions[tool].ipc for record in processed_records]
        native = [record.native_ipc for record in processed_records]
        weights = [record.block.weight for record in processed_records]
        if processed_records:
            error = rms_error(predicted, native, weights)
            tau = kendall_tau(predicted, native) if len(processed_records) >= 2 else 0.0
        else:
            error = float("nan")
            tau = float("nan")
        return ToolMetrics(
            tool=tool,
            coverage=coverage_metric(len(processed_records), len(self.records)),
            rms_error=error,
            kendall_tau=tau,
            num_blocks=len(self.records),
            num_processed=len(processed_records),
        )

    def all_metrics(self) -> List[ToolMetrics]:
        return [self.metrics(tool) for tool in self.tools]

    def ratios(self, tool: str) -> List[float]:
        """Predicted/native ratios of every processed block (heatmap input)."""
        values = []
        for record in self.records:
            ratio = record.ratio(tool)
            if ratio is not None:
                values.append(ratio)
        return values


def evaluate_predictors(
    backend: MeasurementBackend,
    suite: BenchmarkSuite,
    predictors: Sequence[Predictor],
    machine_name: str = "",
) -> EvaluationResult:
    """Run every predictor on every block of a suite against native execution.

    Blocks whose native IPC cannot be measured (e.g. they contain an
    instruction the machine does not implement) are skipped, mirroring the
    paper's restriction to the blocks its back-end can generate.
    """
    records: List[BlockRecord] = []
    for block in suite:
        try:
            native_ipc = backend.ipc(block.kernel)
        except KeyError:
            continue
        record = BlockRecord(block=block, native_ipc=native_ipc)
        for predictor in predictors:
            record.predictions[predictor.name] = predictor.predict(block.kernel)
        records.append(record)
    return EvaluationResult(
        machine_name=machine_name or getattr(getattr(backend, "machine", None), "name", ""),
        suite_name=suite.name,
        records=records,
        tools=[predictor.name for predictor in predictors],
    )
