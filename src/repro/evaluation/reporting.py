"""Plain-text rendering of the evaluation tables.

The benchmark harness prints these tables so that each bench regenerates the
corresponding paper artifact (Fig. 4b rows, Table II) in a directly
comparable textual form; the regenerated tables are written under
``benchmarks/results/`` and ``docs/paper_map.md`` records which bench
reproduces which paper artifact.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.evaluation.harness import EvaluationResult, ToolMetrics

#: Reference values of Fig. 4b of the paper (coverage %, RMS error %, Kendall τ),
#: keyed by (machine, suite, tool).  ``None`` marks the paper's N/A cells.
PAPER_FIG4B: Dict[tuple, Optional[tuple]] = {
    ("SKL-SP", "SPEC2017", "Palmed"): (None, 7.8, 0.90),
    ("SKL-SP", "SPEC2017", "uops.info"): (99.9, 40.3, 0.71),
    ("SKL-SP", "SPEC2017", "PMEvo"): (71.3, 28.1, 0.47),
    ("SKL-SP", "SPEC2017", "IACA"): (100.0, 8.7, 0.80),
    ("SKL-SP", "SPEC2017", "llvm-mca"): (96.8, 20.1, 0.73),
    ("SKL-SP", "Polybench", "Palmed"): (None, 24.4, 0.78),
    ("SKL-SP", "Polybench", "uops.info"): (100.0, 68.1, 0.29),
    ("SKL-SP", "Polybench", "PMEvo"): (66.8, 46.7, 0.14),
    ("SKL-SP", "Polybench", "IACA"): (100.0, 15.1, 0.67),
    ("SKL-SP", "Polybench", "llvm-mca"): (99.5, 15.3, 0.65),
    ("ZEN1", "SPEC2017", "Palmed"): (None, 29.9, 0.68),
    ("ZEN1", "SPEC2017", "PMEvo"): (71.3, 36.5, 0.43),
    ("ZEN1", "SPEC2017", "llvm-mca"): (96.8, 33.4, 0.75),
    ("ZEN1", "Polybench", "Palmed"): (None, 32.6, 0.46),
    ("ZEN1", "Polybench", "PMEvo"): (66.8, 38.5, 0.11),
    ("ZEN1", "Polybench", "llvm-mca"): (99.5, 28.6, 0.40),
}

#: Reference values of Table II of the paper.
PAPER_TABLE2: Dict[str, Dict[str, object]] = {
    "SKL-SP": {
        "Benchmarking time": "8h",
        "LP solving time": "2h",
        "Overall time": "10h",
        "Gen. microbenchmarks": "~1,000,000",
        "Resources found": 17,
        "uops' inst. supported": 3313,
        "Instructions mapped": 2586,
    },
    "ZEN1": {
        "Benchmarking time": "6h",
        "LP solving time": "2h",
        "Overall time": "8h",
        "Gen. microbenchmarks": "~1,000,000",
        "Resources found": 17,
        "uops' inst. supported": 1104,
        "Instructions mapped": 2596,
    },
}


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))


def format_accuracy_table(results: Iterable[EvaluationResult]) -> str:
    """Render Fig. 4b-style rows: one line per (machine, suite, tool)."""
    header = ["Machine", "Suite", "Tool", "Cov. (%)", "Err. (%)", "Kendall tau"]
    rows: List[List[str]] = [header]
    for result in results:
        for metrics in result.all_metrics():
            rows.append(
                [
                    result.machine_name,
                    result.suite_name,
                    metrics.tool,
                    f"{100.0 * metrics.coverage:.1f}",
                    f"{100.0 * metrics.rms_error:.1f}",
                    f"{metrics.kendall_tau:.2f}",
                ]
            )
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = [_format_row(row, widths) for row in rows]
    lines.insert(1, "-" * len(lines[0]))
    return "\n".join(lines)


def format_comparison_with_paper(
    metrics: ToolMetrics,
    machine_key: str,
    suite_key: str,
) -> str:
    """One-line comparison of measured metrics against the paper's Fig. 4b cell."""
    reference = PAPER_FIG4B.get((machine_key, suite_key, metrics.tool))
    measured = (
        f"measured: cov {100.0 * metrics.coverage:.1f}%  "
        f"err {100.0 * metrics.rms_error:.1f}%  tau {metrics.kendall_tau:.2f}"
    )
    if reference is None:
        return f"{metrics.tool:10s} {measured}   paper: (not reported)"
    cov, err, tau = reference
    cov_text = "N/A" if cov is None else f"{cov:.1f}%"
    return (
        f"{metrics.tool:10s} {measured}   "
        f"paper: cov {cov_text}  err {err:.1f}%  tau {tau:.2f}"
    )


def format_table2_comparison(measured: Mapping[str, object], machine_key: str) -> str:
    """Side-by-side Table II comparison (paper's scale vs the reproduction's)."""
    paper = PAPER_TABLE2.get(machine_key, {})
    keys = list(dict.fromkeys(list(paper.keys()) + list(measured.keys())))
    width = max((len(key) for key in keys), default=10)
    lines = [f"{'feature'.ljust(width)}  {'paper':>15}  {'reproduction':>15}"]
    for key in keys:
        paper_value = str(paper.get(key, "-"))
        measured_value = str(measured.get(key, "-"))
        lines.append(f"{key.ljust(width)}  {paper_value:>15}  {measured_value:>15}")
    return "\n".join(lines)
