"""Evaluation harness: the metrics, tables and heatmaps of Section VI.

* :mod:`repro.evaluation.metrics` — weighted root-mean-square IPC error,
  Kendall's τ rank correlation, coverage;
* :mod:`repro.evaluation.harness` — run a set of predictors over a
  benchmark suite against native execution and collect per-tool metrics
  (the rows of Fig. 4b); both sides are batched — native IPCs go through
  the parallel/cached measurement layer, predictions through
  ``predict_batch`` over one shared suite lowering;
* :mod:`repro.evaluation.heatmap` — the predicted/native IPC-ratio
  density profiles of Fig. 4a;
* :mod:`repro.evaluation.reporting` — plain-text rendering of the tables.
"""

from repro.evaluation.metrics import coverage, kendall_tau, rms_error
from repro.evaluation.harness import (
    BlockRecord,
    EvaluationResult,
    ToolMetrics,
    evaluate_predictors,
)
from repro.evaluation.heatmap import Heatmap, build_heatmap
from repro.evaluation.reporting import (
    PAPER_FIG4B,
    PAPER_TABLE2,
    format_accuracy_table,
    format_comparison_with_paper,
    format_table2_comparison,
)

__all__ = [
    "BlockRecord",
    "EvaluationResult",
    "Heatmap",
    "PAPER_FIG4B",
    "PAPER_TABLE2",
    "ToolMetrics",
    "build_heatmap",
    "coverage",
    "evaluate_predictors",
    "format_accuracy_table",
    "format_comparison_with_paper",
    "format_table2_comparison",
    "kendall_tau",
    "rms_error",
]
