"""IPC-prediction profile heatmaps (Fig. 4a of the paper).

Fig. 4a plots, for each tool, a two-dimensional density: native IPC on the
X axis, predicted/native IPC ratio on the Y axis, weighted by basic-block
execution count.  A perfect tool concentrates all mass on the ``ratio = 1``
line; port-only tools drift above it (over-estimation), benchmark-based
tools scatter on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.evaluation.harness import EvaluationResult


@dataclass
class Heatmap:
    """A binned 2-D histogram of (native IPC, predicted/native ratio) pairs."""

    tool: str
    x_edges: np.ndarray
    y_edges: np.ndarray
    counts: np.ndarray

    @property
    def total_weight(self) -> float:
        return float(self.counts.sum())

    def normalized(self) -> np.ndarray:
        """Counts normalized so each X column sums to 1 (column-wise density)."""
        column_sums = self.counts.sum(axis=0, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            density = np.where(column_sums > 0, self.counts / column_sums, 0.0)
        return density

    def mass_within(self, lower: float = 0.9, upper: float = 1.1) -> float:
        """Fraction of the weight whose ratio falls inside ``[lower, upper]``."""
        if self.total_weight == 0:
            return 0.0
        centers = 0.5 * (self.y_edges[:-1] + self.y_edges[1:])
        mask = (centers >= lower) & (centers <= upper)
        return float(self.counts[mask, :].sum() / self.total_weight)

    def mean_ratio(self) -> float:
        """Weighted mean predicted/native ratio (>1 means over-estimation)."""
        if self.total_weight == 0:
            return float("nan")
        centers = 0.5 * (self.y_edges[:-1] + self.y_edges[1:])
        return float((self.counts.sum(axis=1) * centers).sum() / self.total_weight)

    def render_ascii(self, width: int = 40, height: int = 12) -> str:
        """A coarse ASCII rendering, darkest character = highest density."""
        density = self.normalized()
        if density.size == 0:
            return "(empty heatmap)"
        shades = " .:-=+*#%@"
        rows: List[str] = []
        y_bins, x_bins = density.shape
        for yi in reversed(range(y_bins)):
            row = []
            for xi in range(x_bins):
                level = min(len(shades) - 1, int(density[yi, xi] * (len(shades) - 1) + 0.5))
                row.append(shades[level])
            rows.append("".join(row))
        return "\n".join(rows)


def build_heatmap(
    result: EvaluationResult,
    tool: str,
    x_bins: int = 24,
    y_bins: int = 24,
    max_ipc: Optional[float] = None,
    max_ratio: float = 2.0,
) -> Heatmap:
    """Build the Fig. 4a heatmap of one tool from an evaluation result."""
    natives: List[float] = []
    ratios: List[float] = []
    weights: List[float] = []
    for record in result.records:
        ratio = record.ratio(tool)
        if ratio is None:
            continue
        natives.append(record.native_ipc)
        ratios.append(min(ratio, max_ratio))
        weights.append(record.block.weight)

    if max_ipc is None:
        max_ipc = max(natives) if natives else 1.0
    x_edges = np.linspace(0.0, max(max_ipc, 1e-9), x_bins + 1)
    y_edges = np.linspace(0.0, max_ratio, y_bins + 1)
    if natives:
        counts, _, _ = np.histogram2d(
            ratios, natives, bins=(y_edges, x_edges), weights=weights
        )
    else:
        counts = np.zeros((y_bins, x_bins))
    return Heatmap(tool=tool, x_edges=x_edges, y_edges=y_edges, counts=counts)
