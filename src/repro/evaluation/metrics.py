"""Accuracy metrics of the evaluation (Sec. VI.B).

* :func:`rms_error` — the weighted root-mean-square relative IPC error
  (the ``Err`` columns of Fig. 4b);
* :func:`kendall_tau` — Kendall's τ rank-correlation coefficient between
  predicted and native IPCs (the ``τK`` columns);
* :func:`coverage` — fraction of basic blocks a tool was able to process.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence


def rms_error(
    predicted: Sequence[float],
    native: Sequence[float],
    weights: Optional[Sequence[float]] = None,
) -> float:
    """Weighted root-mean-square relative error between predictions and native IPC.

    Implements the paper's formula::

        Err = sqrt( Σ_i (w_i / Σ_j w_j) · ((IPC_i,tool − IPC_i,native) / IPC_i,native)² )

    Raises ``ValueError`` on empty or mismatched inputs, or when a native
    value is zero (the relative error would be undefined).
    """
    if len(predicted) != len(native):
        raise ValueError("predicted and native sequences must have the same length")
    if not predicted:
        raise ValueError("cannot compute an error over zero samples")
    if weights is None:
        weights = [1.0] * len(predicted)
    if len(weights) != len(predicted):
        raise ValueError("weights must match the number of samples")
    total_weight = float(sum(weights))
    if total_weight <= 0:
        raise ValueError("total weight must be positive")

    accumulator = 0.0
    for value, reference, weight in zip(predicted, native, weights):
        if reference == 0:
            raise ValueError("native IPC of zero makes the relative error undefined")
        relative = (value - reference) / reference
        accumulator += (weight / total_weight) * relative * relative
    return math.sqrt(accumulator)


def kendall_tau(predicted: Sequence[float], native: Sequence[float]) -> float:
    """Kendall's τ-b rank correlation between two sequences.

    τ-b corrects for ties in either sequence, which matters here because
    many basic blocks saturate the front-end and share the same native IPC.
    Returns a value in [-1, 1]; 0 when either sequence is constant.
    """
    if len(predicted) != len(native):
        raise ValueError("sequences must have the same length")
    size = len(predicted)
    if size < 2:
        raise ValueError("Kendall's tau needs at least two samples")

    concordant = 0
    discordant = 0
    ties_left = 0
    ties_right = 0
    for i in range(size):
        for j in range(i + 1, size):
            dx = predicted[i] - predicted[j]
            dy = native[i] - native[j]
            if dx == 0 and dy == 0:
                ties_left += 1
                ties_right += 1
            elif dx == 0:
                ties_left += 1
            elif dy == 0:
                ties_right += 1
            elif (dx > 0) == (dy > 0):
                concordant += 1
            else:
                discordant += 1

    total = size * (size - 1) // 2
    denom_left = total - ties_left
    denom_right = total - ties_right
    if denom_left <= 0 or denom_right <= 0:
        return 0.0
    return (concordant - discordant) / math.sqrt(denom_left * denom_right)


def coverage(processed: int, total: int) -> float:
    """Fraction of basic blocks a tool processed (possibly in degraded mode)."""
    if total <= 0:
        raise ValueError("total number of blocks must be positive")
    if processed < 0 or processed > total:
        raise ValueError("processed must be between 0 and total")
    return processed / total
