"""Mapping-artifact registry: characterize once, predict forever.

The PALMED pipeline spends hours (Table II) inferring a conjunctive
resource mapping; serving predictions from it is a closed formula.  This
package persists the inference result as a versioned JSON artifact keyed by
the machine's content fingerprint, so any later process can load the
mapping and serve throughput predictions without re-running the pipeline —
the workflow behind ``python -m repro characterize`` / ``predict`` /
``evaluate`` (see ``docs/serving.md``).
"""

from repro.artifacts.registry import (
    ARTIFACT_FORMAT_VERSION,
    CHECKPOINT_FORMAT_VERSION,
    ArtifactError,
    ArtifactNotFoundError,
    ArtifactRegistry,
    FingerprintMismatchError,
    MappingArtifact,
    RegistryReadOnlyError,
    StageCheckpoint,
    payload_hash,
)

__all__ = [
    "RegistryReadOnlyError",
    "ARTIFACT_FORMAT_VERSION",
    "CHECKPOINT_FORMAT_VERSION",
    "ArtifactError",
    "ArtifactNotFoundError",
    "ArtifactRegistry",
    "FingerprintMismatchError",
    "MappingArtifact",
    "StageCheckpoint",
    "payload_hash",
]
