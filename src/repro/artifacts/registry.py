"""Versioned, fingerprint-keyed storage of inferred resource mappings.

A PALMED characterization is expensive (hours of benchmarking + LP solving
on real hardware, Table II) while serving predictions from the resulting
conjunctive mapping is a closed formula.  The registry makes the
characterize-once / predict-forever split work across processes:

* :class:`MappingArtifact` is the serialized unit — the inferred
  :class:`~repro.mapping.conjunctive.ConjunctiveResourceMapping`, the
  Table II run statistics (:class:`~repro.palmed.result.PalmedStats`) and
  provenance metadata, wrapped in a versioned JSON envelope;
* :class:`ArtifactRegistry` is a directory of artifacts keyed by the
  **machine fingerprint** (:func:`repro.measure.machine_fingerprint`, the
  SHA-256 of the complete ground-truth machine description): saving uses
  the fingerprint as the file key, loading *verifies* it.

Keying on content means stale artifacts can never be served silently: if
the machine model changes in any way, its fingerprint changes, the lookup
misses, and the caller gets :class:`ArtifactNotFoundError` instead of a
mapping inferred for a different machine.  A file whose embedded
fingerprint disagrees with the requested key (hand-edited, copied between
machines) is refused with :class:`FingerprintMismatchError`.

See ``docs/serving.md`` for the end-to-end workflow and the
``python -m repro characterize`` / ``predict`` / ``evaluate`` subcommands
that drive it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.machines.machine import Machine
from repro.mapping.conjunctive import ConjunctiveResourceMapping
from repro.measure.fingerprint import machine_fingerprint
from repro.palmed.result import PalmedResult, PalmedStats

#: Version of the artifact JSON envelope.  Bumped on incompatible layout
#: changes; loaders refuse envelopes they do not understand.
ARTIFACT_FORMAT_VERSION = 1

#: Version of the per-stage checkpoint envelope (see :class:`StageCheckpoint`).
CHECKPOINT_FORMAT_VERSION = 1


def payload_hash(payload: Mapping[str, object]) -> str:
    """Content hash of a serialized stage payload (canonical JSON).

    The reserved top-level ``_nondeterministic`` key — wall clocks and
    other run-environment values that do not influence any downstream
    result — is excluded, so a stage re-run that reproduces the same
    semantic output hashes identically and downstream checkpoints stay
    valid even though the new run's timings differ.
    """
    hashable = {key: value for key, value in payload.items() if key != "_nondeterministic"}
    canonical = json.dumps(hashable, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _atomic_write(directory: Path, path: Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tempfile + rename)."""
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(directory), prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


class ArtifactError(RuntimeError):
    """Base class for artifact-registry failures."""


class ArtifactNotFoundError(ArtifactError):
    """No artifact stored under the requested machine fingerprint."""


class FingerprintMismatchError(ArtifactError):
    """The artifact's embedded fingerprint disagrees with the requested key."""


class RegistryReadOnlyError(ArtifactError):
    """A write was attempted on a registry opened read-only.

    Serving nodes open their registry with ``readonly=True``: a node must
    never mutate the artifacts it serves, so any save/delete is refused
    with this typed error instead of silently writing.
    """


@dataclass
class MappingArtifact:
    """A saved characterization: mapping + run statistics + provenance.

    The artifact deliberately stores only what serving needs — the
    conjunctive mapping (which *is* the throughput model, Definition IV.2)
    and the Table II statistics — not the full
    :class:`~repro.palmed.result.PalmedResult` with its intermediate
    selection/core structures, which are reproducible from the mapping and
    are not needed to predict.
    """

    machine_name: str
    machine_fingerprint: str
    mapping: ConjunctiveResourceMapping
    stats: PalmedStats
    created_at: float = field(default_factory=time.time)
    format_version: int = ARTIFACT_FORMAT_VERSION

    @classmethod
    def from_result(cls, result: PalmedResult, machine: Machine) -> "MappingArtifact":
        """Build the artifact for a finished PALMED run on ``machine``."""
        return cls(
            machine_name=machine.name,
            machine_fingerprint=machine_fingerprint(machine),
            mapping=result.mapping,
            stats=result.stats,
        )

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The JSON envelope written by :meth:`ArtifactRegistry.save`."""
        return {
            "format_version": self.format_version,
            "machine_name": self.machine_name,
            "machine_fingerprint": self.machine_fingerprint,
            "created_at": self.created_at,
            "mapping": self.mapping.to_dict(),
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MappingArtifact":
        """Inverse of :meth:`to_dict`; refuses unknown envelope versions."""
        version = payload.get("format_version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise ArtifactError(
                f"unsupported artifact format version {version!r} "
                f"(this build reads version {ARTIFACT_FORMAT_VERSION})"
            )
        return cls(
            machine_name=str(payload["machine_name"]),
            machine_fingerprint=str(payload["machine_fingerprint"]),
            mapping=ConjunctiveResourceMapping.from_dict(payload["mapping"]),
            stats=PalmedStats.from_dict(dict(payload["stats"])),
            created_at=float(payload.get("created_at", 0.0)),
            format_version=int(version),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MappingArtifact":
        return cls.from_dict(json.loads(text))


@dataclass
class StageCheckpoint:
    """A persisted stage output of the PALMED stage graph.

    One checkpoint stores everything needed to *skip* the stage on a later
    run: the serialized stage output (``payload``, from which the stage
    also re-warms the benchmark-runner memo so downstream live stages are
    served exactly as on the original run) and the stage's run record
    (wall clock + benchmark-counter deltas, so resumed runs report the
    same Table II statistics as the run that produced the checkpoint).

    Checkpoints are keyed by ``(machine_fingerprint, stage, input_hash)``
    where ``input_hash`` covers the upstream stage outputs, the
    configuration fields the stage reads and the machine fingerprint — see
    :mod:`repro.pipeline.stage`.  ``output_hash`` is the content hash of
    ``payload`` (:func:`payload_hash`), verified on load and chained into
    downstream stages' input hashes.
    """

    stage: str
    machine_fingerprint: str
    input_hash: str
    output_hash: str
    payload: Dict[str, object]
    record: Dict[str, object] = field(default_factory=dict)
    created_at: float = field(default_factory=time.time)
    format_version: int = CHECKPOINT_FORMAT_VERSION

    def to_dict(self) -> Dict[str, object]:
        return {
            "format_version": self.format_version,
            "stage": self.stage,
            "machine_fingerprint": self.machine_fingerprint,
            "input_hash": self.input_hash,
            "output_hash": self.output_hash,
            "payload": self.payload,
            "record": self.record,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "StageCheckpoint":
        version = payload.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise ArtifactError(
                f"unsupported stage-checkpoint format version {version!r} "
                f"(this build reads version {CHECKPOINT_FORMAT_VERSION})"
            )
        return cls(
            stage=str(payload["stage"]),
            machine_fingerprint=str(payload["machine_fingerprint"]),
            input_hash=str(payload["input_hash"]),
            output_hash=str(payload["output_hash"]),
            payload=dict(payload["payload"]),
            record=dict(payload.get("record", {})),
            created_at=float(payload.get("created_at", 0.0)),
            format_version=int(version),
        )


class ArtifactRegistry:
    """A directory of mapping artifacts keyed by machine fingerprint.

    Parameters
    ----------
    root:
        Directory holding one ``mapping-<fingerprint>.json`` file per
        characterized machine; created on first save.
    readonly:
        Open load-only: every write method refuses with
        :class:`RegistryReadOnlyError`.  This is how serving nodes open a
        registry — they consume artifacts, never produce them.

    Concurrent readers
    ------------------
    Every write goes through an atomic tempfile-plus-rename
    (:func:`_atomic_write`), so a reader — in this process or another —
    always observes either the complete old file or the complete new one,
    never a torn write.  Any number of concurrent readers (e.g. several
    serving nodes sharing one registry directory) is therefore safe
    without locking, including while a characterization run is saving new
    artifacts next to the ones being served.

    Examples
    --------
    Characterize once, predict forever (possibly in another process)::

        registry = ArtifactRegistry("artifacts")
        registry.save(MappingArtifact.from_result(palmed_result, machine))
        ...
        registry = ArtifactRegistry("artifacts", readonly=True)  # a server
        artifact = registry.load_for_machine(machine)   # any later process
        predictor = PalmedPredictor(artifact.mapping)
    """

    def __init__(self, root: Union[str, Path], readonly: bool = False) -> None:
        self.root = Path(root)
        self.readonly = readonly

    def _check_writable(self, operation: str) -> None:
        if self.readonly:
            raise RegistryReadOnlyError(
                f"registry {self.root} was opened read-only; refusing to "
                f"{operation} (open it without readonly=True to write)"
            )

    # -- paths ---------------------------------------------------------------
    def path_for(self, fingerprint: str) -> Path:
        """The file an artifact with this machine fingerprint lives in."""
        return self.root / f"mapping-{fingerprint}.json"

    # -- save ----------------------------------------------------------------
    def save(self, artifact: MappingArtifact) -> Path:
        """Atomically persist an artifact under its machine fingerprint."""
        self._check_writable("save a mapping artifact")
        path = self.path_for(artifact.machine_fingerprint)
        return _atomic_write(self.root, path, artifact.to_json() + "\n")

    def save_result(self, result: PalmedResult, machine: Machine) -> Path:
        """Convenience: wrap a PALMED result into an artifact and save it."""
        return self.save(MappingArtifact.from_result(result, machine))

    # -- load ----------------------------------------------------------------
    def has(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def load(self, fingerprint: str) -> MappingArtifact:
        """Load and *verify* the artifact stored under a machine fingerprint.

        Raises
        ------
        ArtifactNotFoundError
            Nothing is stored under the fingerprint — in particular, the
            machine model changed since characterization (its fingerprint
            changed with it) and the stale artifact is simply not found.
        FingerprintMismatchError
            The file exists but its embedded fingerprint differs from the
            requested one (tampered or misplaced file); it is refused.
        ArtifactError
            The envelope version is unsupported or the file is unreadable.
        """
        path = self.path_for(fingerprint)
        if not path.exists():
            raise ArtifactNotFoundError(
                f"no mapping artifact for machine fingerprint {fingerprint[:16]}… "
                f"under {self.root} — run the characterization first "
                f"(python -m repro characterize)"
            )
        try:
            artifact = MappingArtifact.from_json(path.read_text(encoding="utf-8"))
        except (OSError, ValueError, KeyError, TypeError) as error:
            raise ArtifactError(f"unreadable mapping artifact {path}: {error}") from error
        if artifact.machine_fingerprint != fingerprint:
            raise FingerprintMismatchError(
                f"artifact {path} claims fingerprint "
                f"{artifact.machine_fingerprint[:16]}… but was requested as "
                f"{fingerprint[:16]}…; refusing a stale or misplaced mapping"
            )
        return artifact

    def load_for_machine(self, machine: Machine) -> MappingArtifact:
        """Load the artifact matching a machine's *current* content fingerprint."""
        return self.load(machine_fingerprint(machine))

    # -- stage checkpoints ---------------------------------------------------
    def stage_dir(self, fingerprint: str) -> Path:
        """Directory holding the per-stage checkpoints of one machine."""
        return self.root / "stages" / fingerprint

    def stage_path(self, fingerprint: str, stage: str, input_hash: str) -> Path:
        """The file a stage checkpoint with this identity lives in."""
        return self.stage_dir(fingerprint) / f"{stage}-{input_hash}.json"

    def has_stage(self, fingerprint: str, stage: str, input_hash: str) -> bool:
        return self.stage_path(fingerprint, stage, input_hash).exists()

    def save_stage(self, checkpoint: StageCheckpoint) -> Path:
        """Atomically persist a stage checkpoint under its identity triple."""
        self._check_writable("save a stage checkpoint")
        directory = self.stage_dir(checkpoint.machine_fingerprint)
        path = self.stage_path(
            checkpoint.machine_fingerprint, checkpoint.stage, checkpoint.input_hash
        )
        return _atomic_write(
            directory,
            path,
            json.dumps(checkpoint.to_dict(), indent=2, sort_keys=True) + "\n",
        )

    def load_stage(
        self, fingerprint: str, stage: str, input_hash: str
    ) -> StageCheckpoint:
        """Load and verify one stage checkpoint.

        Raises
        ------
        ArtifactNotFoundError
            No checkpoint under this (fingerprint, stage, input-hash) triple
            — in particular whenever any upstream output or a configuration
            field the stage reads changed, since either changes the hash.
        FingerprintMismatchError
            The stored checkpoint's embedded identity disagrees with the
            requested one (hand-edited or misplaced file), or its payload
            no longer matches its own ``output_hash`` (corrupted or edited
            content).
        """
        path = self.stage_path(fingerprint, stage, input_hash)
        if not path.exists():
            raise ArtifactNotFoundError(
                f"no {stage!r} checkpoint for input hash {input_hash[:16]}… "
                f"under {self.stage_dir(fingerprint)}"
            )
        try:
            checkpoint = StageCheckpoint.from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
        except (OSError, ValueError, KeyError, TypeError) as error:
            raise ArtifactError(f"unreadable stage checkpoint {path}: {error}") from error
        if (
            checkpoint.machine_fingerprint != fingerprint
            or checkpoint.stage != stage
            or checkpoint.input_hash != input_hash
        ):
            raise FingerprintMismatchError(
                f"stage checkpoint {path} claims identity "
                f"({checkpoint.stage}, {checkpoint.input_hash[:16]}…) but was "
                f"requested as ({stage}, {input_hash[:16]}…); refusing"
            )
        if payload_hash(checkpoint.payload) != checkpoint.output_hash:
            raise FingerprintMismatchError(
                f"stage checkpoint {path} has a payload that no longer "
                f"matches its recorded output hash "
                f"{checkpoint.output_hash[:16]}…; refusing a corrupted or "
                f"edited checkpoint"
            )
        return checkpoint

    def delete_stage(self, fingerprint: str, stage: str) -> int:
        """Delete every checkpoint of one stage; returns how many were removed."""
        self._check_writable("delete stage checkpoints")
        removed = 0
        directory = self.stage_dir(fingerprint)
        if directory.is_dir():
            for path in directory.glob(f"{stage}-*.json"):
                path.unlink()
                removed += 1
        return removed

    def stage_entries(self, fingerprint: str) -> List[StageCheckpoint]:
        """Every loadable stage checkpoint of one machine, sorted by stage."""
        checkpoints: List[StageCheckpoint] = []
        directory = self.stage_dir(fingerprint)
        if not directory.is_dir():
            return checkpoints
        for path in sorted(directory.glob("*.json")):
            try:
                checkpoints.append(
                    StageCheckpoint.from_dict(
                        json.loads(path.read_text(encoding="utf-8"))
                    )
                )
            except (OSError, ValueError, KeyError, TypeError, ArtifactError):
                continue
        checkpoints.sort(key=lambda cp: (cp.stage, cp.created_at))
        return checkpoints

    # -- listing -------------------------------------------------------------
    def entries(self) -> List[MappingArtifact]:
        """Every loadable artifact in the registry, sorted by machine name."""
        artifacts = []
        if not self.root.is_dir():
            return artifacts
        for path in sorted(self.root.glob("mapping-*.json")):
            try:
                artifacts.append(
                    MappingArtifact.from_json(path.read_text(encoding="utf-8"))
                )
            except (OSError, ValueError, KeyError, TypeError, ArtifactError):
                continue
        artifacts.sort(key=lambda artifact: artifact.machine_name)
        return artifacts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactRegistry({self.root})"
