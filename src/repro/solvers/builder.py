"""Sparse incremental model construction and reusable solve templates.

The classic :class:`repro.solvers.Model` front-end builds constraints out of
:class:`LinearExpression` dictionaries — convenient for small one-off
models, but every solve re-merges Python dicts and re-assembles the sparse
matrix from scratch.  The PALMED linear programs have a very different
profile: LPAUX solves *thousands* of identically-shaped weight problems and
the heuristic BWP re-solves the same structure once per round.  This module
provides the sparse path those hot spots use:

``ModelBuilder``
    Incremental COO-triplet construction: variables, rows and matrix
    entries are appended to flat arrays (no expression objects, no dict
    merging), then compiled once into CSR form.
``ModelTemplate``
    The compiled model.  Its *structure* (sparsity pattern, variable kinds)
    is frozen; its *data* (matrix coefficients, row bounds, variable
    bounds, objective coefficients) can be rebound between solves through
    the entry handles returned at construction time.  Rebinding data and
    re-solving is how LP2's heuristic rounds and LPAUX's per-instruction
    problems reuse one structure across many solves.  With
    ``warm_start=True`` the template additionally memoizes the optimal
    incumbent of every solved data binding: a later rebind whose data
    matches a previous problem bit-for-bit (common when LPAUX walks an
    equivalence class of behaviorally identical instructions, or when a
    heuristic round revisits an assignment) is answered from the memo
    without invoking the backend.  The determinism contract is strict:
    because the memo key covers every byte of the bound data and the
    solve options, a hit returns exactly the solution a cold solve of
    the same problem would have produced.
``solve_milp_arrays``
    The one low-level gateway to :func:`scipy.optimize.milp` shared by
    :class:`ModelTemplate` and :class:`repro.solvers.Model`, so status
    mapping, error translation and per-solve statistics are identical on
    both paths.

Every structure build and every solve is accounted in
:mod:`repro.solvers.stats`; template reuse is visible there as
``model_builds`` < ``solves``.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize, sparse

from repro.solvers import stats as solver_stats
from repro.telemetry import TRACER
from repro.solvers.status import (
    InfeasibleError,
    SolverError,
    SolveStatus,
    UnboundedError,
    map_status,
)


def solve_milp_arrays(
    name: str,
    c: np.ndarray,
    integrality: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    matrix: Optional[sparse.csr_matrix],
    row_lo: Optional[np.ndarray],
    row_hi: Optional[np.ndarray],
    time_limit: Optional[float] = None,
    mip_rel_gap: Optional[float] = None,
) -> Tuple[SolveStatus, np.ndarray, Optional[float]]:
    """Solve ``min c·x  s.t.  row_lo <= A x <= row_hi,  lb <= x <= ub``.

    The single gateway to the HiGHS backend: maps status codes, translates
    infeasible/unbounded/error outcomes to the solver-layer exceptions and
    records the solve in :mod:`repro.solvers.stats`.  Returns the status
    (``OPTIMAL`` or ``LIMIT`` with an incumbent), the solution vector and
    the reported MIP gap (``None`` for pure LPs).
    """
    constraints = None
    if matrix is not None and matrix.shape[0] > 0:
        constraints = optimize.LinearConstraint(matrix, row_lo, row_hi)

    options: Dict[str, float] = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if mip_rel_gap is not None:
        options["mip_rel_gap"] = float(mip_rel_gap)

    start = time.monotonic()
    result = optimize.milp(
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=optimize.Bounds(lb=lb, ub=ub),
        options=options or None,
    )
    solve_s = time.monotonic() - start
    solver_stats.record_solve(solve_s)
    if TRACER.enabled:
        TRACER.metric(
            "solver.backend_solve_s",
            solve_s,
            model=name,
            columns=int(c.shape[0]),
            status=int(result.status),
        )

    status = map_status(result.status)
    if status is SolveStatus.INFEASIBLE:
        raise InfeasibleError(f"model {name!r} is infeasible: {result.message}")
    if status is SolveStatus.UNBOUNDED:
        raise UnboundedError(f"model {name!r} is unbounded: {result.message}")
    if result.x is None:
        raise SolverError(
            f"model {name!r} failed to solve (status={result.status}): "
            f"{result.message}"
        )
    gap = getattr(result, "mip_gap", None)
    if status is SolveStatus.LIMIT:
        solver_stats.record_limit_solve()
    if gap is not None:
        solver_stats.record_gap(float(gap))
    return status, np.asarray(result.x, dtype=float), gap


@dataclass
class TemplateSolution:
    """Result of a :meth:`ModelTemplate.solve` call.

    Values are addressed by column index (the handles returned by
    :meth:`ModelBuilder.add_variable`).
    """

    status: SolveStatus
    objective: float
    x: np.ndarray
    mip_gap: Optional[float] = None

    def __getitem__(self, col: int) -> float:
        return float(self.x[col])

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL


class ModelBuilder:
    """Incremental COO-triplet construction of an LP/MILP.

    Variables and rows are plain integer indices; matrix entries are
    appended as ``(row, col, coeff)`` triplets and compiled to CSR once by
    :meth:`build`.  Each :meth:`add_entry` returns a *handle* with which
    the compiled :class:`ModelTemplate` can rebind that coefficient later,
    so a family of identically-structured problems pays for construction
    once.

    Duplicate ``(row, col)`` entries are rejected at :meth:`build` time:
    handle-based rebinding requires every coefficient to live at exactly
    one position.  (Accumulate duplicates on the caller side if a model
    needs them.)
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._lb: List[float] = []
        self._ub: List[float] = []
        self._integer: List[bool] = []
        self._row_lo: List[float] = []
        self._row_hi: List[float] = []
        self._rows: List[int] = []
        self._cols: List[int] = []
        self._data: List[float] = []
        self._objective: Dict[int, float] = {}
        self._maximize = False

    # -- variables ----------------------------------------------------------
    def add_variable(
        self, lb: float = 0.0, ub: float = math.inf, integer: bool = False
    ) -> int:
        """Append a variable; returns its column index."""
        if lb > ub:
            raise SolverError(f"variable has lb {lb} > ub {ub} in {self.name!r}")
        self._lb.append(float(lb))
        self._ub.append(float(ub))
        self._integer.append(bool(integer))
        return len(self._lb) - 1

    def add_binary(self) -> int:
        """Append a binary (0/1) variable; returns its column index."""
        return self.add_variable(0.0, 1.0, integer=True)

    # -- rows and entries ----------------------------------------------------
    def add_row(self, lo: float = -math.inf, hi: float = math.inf) -> int:
        """Append an empty constraint row ``lo <= (...) <= hi``; returns its index."""
        self._row_lo.append(float(lo))
        self._row_hi.append(float(hi))
        return len(self._row_lo) - 1

    def add_entry(self, row: int, col: int, coeff: float) -> int:
        """Append one matrix coefficient; returns its rebind handle."""
        self._rows.append(row)
        self._cols.append(col)
        self._data.append(float(coeff))
        return len(self._data) - 1

    def add_row_entries(
        self,
        cols: Sequence[int],
        coeffs: Sequence[float],
        lo: float = -math.inf,
        hi: float = math.inf,
    ) -> int:
        """Convenience: append a row with its coefficients in one call."""
        row = self.add_row(lo, hi)
        for col, coeff in zip(cols, coeffs):
            self.add_entry(row, col, coeff)
        return row

    # -- objective -----------------------------------------------------------
    def set_objective(
        self, terms: Dict[int, float], maximize: bool = False
    ) -> None:
        """Set the linear objective as a ``{column: coefficient}`` mapping."""
        self._objective = dict(terms)
        self._maximize = maximize

    # -- introspection -------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self._lb)

    @property
    def num_rows(self) -> int:
        return len(self._row_lo)

    @property
    def num_entries(self) -> int:
        return len(self._data)

    # -- compilation ---------------------------------------------------------
    def build(self, warm_start: bool = False) -> "ModelTemplate":
        """Compile the triplets into a reusable :class:`ModelTemplate`.

        ``warm_start=True`` enables the template's incumbent memo (see
        :class:`ModelTemplate`).
        """
        start = time.monotonic()
        n_vars = len(self._lb)
        n_rows = len(self._row_lo)
        rows = np.asarray(self._rows, dtype=np.int64)
        cols = np.asarray(self._cols, dtype=np.int64)
        data = np.asarray(self._data, dtype=float)

        if rows.size:
            # Stable lexicographic sort by (row, col): positions in the
            # sorted arrays ARE the CSR data positions, which is what makes
            # handle-based rebinding O(1).
            order = np.lexsort((cols, rows))
            rows, cols, data = rows[order], cols[order], data[order]
            same = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
            if bool(same.any()):
                raise SolverError(
                    f"duplicate matrix entries in {self.name!r}; "
                    "accumulate coefficients before add_entry"
                )
            handle_pos = np.empty(order.size, dtype=np.int64)
            handle_pos[order] = np.arange(order.size)
            indptr = np.zeros(n_rows + 1, dtype=np.int64)
            np.cumsum(np.bincount(rows, minlength=n_rows), out=indptr[1:])
        else:
            handle_pos = np.empty(0, dtype=np.int64)
            indptr = np.zeros(n_rows + 1, dtype=np.int64)

        c = np.zeros(n_vars)
        for col, coeff in self._objective.items():
            c[col] += coeff

        template = ModelTemplate(
            name=self.name,
            c=c,
            maximize=self._maximize,
            integrality=np.asarray(self._integer, dtype=np.int8),
            lb=np.asarray(self._lb, dtype=float),
            ub=np.asarray(self._ub, dtype=float),
            indptr=indptr,
            indices=cols,
            data=data,
            row_lo=np.asarray(self._row_lo, dtype=float),
            row_hi=np.asarray(self._row_hi, dtype=float),
            handle_pos=handle_pos,
            warm_start=warm_start,
        )
        solver_stats.record_build(time.monotonic() - start)
        return template


class ModelTemplate:
    """A compiled model whose data can be rebound between solves.

    The sparsity pattern, variable kinds and row/column counts are fixed at
    :meth:`ModelBuilder.build` time; coefficients, bounds and the objective
    vector remain writable so a family of identically-shaped problems can
    rebind data and re-solve without reconstructing anything.  Parameterized
    entries may hold explicit zeros — the pattern is what is frozen, not the
    values.

    With ``warm_start`` enabled, :meth:`solve` keeps an incumbent memo
    keyed by a fingerprint of *every* rebindable byte (objective, variable
    bounds, matrix data, row bounds) plus the solve options.  A request
    whose bound problem matches a memoized one bit-for-bit is answered
    from the memo — recorded as a warm-start hit, no backend call — and
    is guaranteed to equal what a cold solve of the identical problem
    would return.  Only proven-``OPTIMAL`` solutions are memoized:
    limit-terminated incumbents are machine-speed dependent and never
    reused.
    """

    def __init__(
        self,
        name: str,
        c: np.ndarray,
        maximize: bool,
        integrality: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        row_lo: np.ndarray,
        row_hi: np.ndarray,
        handle_pos: np.ndarray,
        warm_start: bool = False,
    ) -> None:
        self.name = name
        self._c = c
        self._maximize = maximize
        self._integrality = integrality
        self._lb = lb
        self._ub = ub
        self._indptr = indptr
        self._indices = indices
        self._data = data
        self._row_lo = row_lo
        self._row_hi = row_hi
        self._handle_pos = handle_pos
        self._solve_count = 0
        self.warm_start = warm_start
        self._incumbents: Dict[bytes, TemplateSolution] = {}
        self._warm_hits = 0

    # -- rebinding -----------------------------------------------------------
    def set_entry(self, handle: int, value: float) -> None:
        """Rebind one matrix coefficient by its construction handle."""
        self._data[self._handle_pos[handle]] = value

    def set_row_bounds(self, row: int, lo: float, hi: float) -> None:
        self._row_lo[row] = lo
        self._row_hi[row] = hi

    def set_variable_bounds(self, col: int, lb: float, ub: float) -> None:
        self._lb[col] = lb
        self._ub[col] = ub

    def set_objective_coeff(self, col: int, value: float) -> None:
        self._c[col] = value

    # -- introspection -------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return int(self._lb.size)

    @property
    def num_rows(self) -> int:
        return int(self._row_lo.size)

    @property
    def solve_count(self) -> int:
        """Number of solves served by this structure so far."""
        return self._solve_count

    @property
    def warm_start_hits(self) -> int:
        """Solve requests this template answered from its incumbent memo."""
        return self._warm_hits

    @property
    def memo_size(self) -> int:
        """Number of distinct problems memoized by this template."""
        return len(self._incumbents)

    # -- warm starts ---------------------------------------------------------
    def _fingerprint(
        self, time_limit: Optional[float], mip_rel_gap: Optional[float]
    ) -> bytes:
        """Digest of every rebindable byte plus the solve options.

        Two bindings with equal fingerprints describe byte-identical
        problems, so reusing the stored solution is exact by
        construction (the backend is deterministic for identical input).
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self._c.tobytes())
        digest.update(self._lb.tobytes())
        digest.update(self._ub.tobytes())
        digest.update(self._data.tobytes())
        digest.update(self._row_lo.tobytes())
        digest.update(self._row_hi.tobytes())
        digest.update(repr((time_limit, mip_rel_gap)).encode())
        return digest.digest()

    # -- solving -------------------------------------------------------------
    def solve(
        self,
        time_limit: Optional[float] = None,
        mip_rel_gap: Optional[float] = None,
    ) -> TemplateSolution:
        """Solve with the currently-bound data; see :func:`solve_milp_arrays`."""
        n = self.num_variables
        if n == 0:
            self._solve_count += 1
            return TemplateSolution(SolveStatus.OPTIMAL, 0.0, np.zeros(0))
        key: Optional[bytes] = None
        if self.warm_start:
            key = self._fingerprint(time_limit, mip_rel_gap)
            hit = self._incumbents.get(key)
            if hit is not None:
                self._solve_count += 1
                self._warm_hits += 1
                solver_stats.record_warm_start()
                return TemplateSolution(
                    status=hit.status,
                    objective=hit.objective,
                    x=hit.x.copy(),
                    mip_gap=hit.mip_gap,
                )
        sign = -1.0 if self._maximize else 1.0
        matrix = None
        if self.num_rows:
            matrix = sparse.csr_matrix(
                (self._data.copy(), self._indices, self._indptr),
                shape=(self.num_rows, n),
            )
        status, x, gap = solve_milp_arrays(
            self.name,
            sign * self._c,
            self._integrality,
            self._lb.copy(),
            self._ub.copy(),
            matrix,
            self._row_lo.copy() if matrix is not None else None,
            self._row_hi.copy() if matrix is not None else None,
            time_limit=time_limit,
            mip_rel_gap=mip_rel_gap,
        )
        integer_mask = self._integrality != 0
        if bool(integer_mask.any()):
            x = x.copy()
            x[integer_mask] = np.round(x[integer_mask])
        objective = float(self._c @ x)
        self._solve_count += 1
        solution = TemplateSolution(status=status, objective=objective, x=x, mip_gap=gap)
        if key is not None and status is SolveStatus.OPTIMAL:
            self._incumbents[key] = TemplateSolution(
                status=status, objective=objective, x=x.copy(), mip_gap=gap
            )
        return solution

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelTemplate({self.name!r}, vars={self.num_variables}, "
            f"rows={self.num_rows}, solves={self._solve_count})"
        )
