"""Linear and mixed-integer programming substrate.

PALMED's reference implementation relies on PuLP/Gurobi.  This package
provides an equivalent, self-contained modeling layer backed by
:func:`scipy.optimize.milp` (the HiGHS solver), which handles both pure
LPs and MILPs.  Two construction front-ends share one solve gateway:

``Model``
    Expression-based modeling (variables, ``LinearExpression`` arithmetic,
    named constraints) — convenient for one-off models such as LP1.
``ModelBuilder`` / ``ModelTemplate``
    Sparse incremental construction: COO triplets compiled once into a
    reusable template whose data (coefficients, bounds, objective) can be
    rebound between solves.  This is the hot path of LP2/LPAUX, where
    thousands of identically-shaped problems rebind data instead of
    rebuilding structure.

Public API
----------
``Model``, ``Variable``, ``LinearExpression``, ``Constraint``
    The expression-based front-end.
``ModelBuilder``, ``ModelTemplate``, ``TemplateSolution``
    The sparse/template front-end.
``Solution``, ``SolveStatus``
    Results of solves.
``SolveStats``, ``solver_stats``, ``reset_solver_stats``, ``use_stats``,
``record_stats``
    Per-solve statistics (solve count, build-vs-solve time split).
``SolverError``, ``InfeasibleError``, ``UnboundedError``
    Exceptions raised on modeling or solving failures.
"""

from repro.solvers.builder import (
    ModelBuilder,
    ModelTemplate,
    TemplateSolution,
    solve_milp_arrays,
)
from repro.solvers.lp import (
    Constraint,
    LinearExpression,
    Model,
    Solution,
    Variable,
    lin_sum,
)
from repro.solvers.stats import (
    SolveStats,
    record_stats,
    reset_solver_stats,
    solver_stats,
    use_stats,
)
from repro.solvers.status import (
    InfeasibleError,
    SolverError,
    SolveStatus,
    UnboundedError,
)

__all__ = [
    "Constraint",
    "InfeasibleError",
    "LinearExpression",
    "Model",
    "ModelBuilder",
    "ModelTemplate",
    "Solution",
    "SolverError",
    "SolveStats",
    "SolveStatus",
    "TemplateSolution",
    "UnboundedError",
    "Variable",
    "lin_sum",
    "record_stats",
    "reset_solver_stats",
    "solve_milp_arrays",
    "solver_stats",
    "use_stats",
]
