"""Linear and mixed-integer programming substrate.

PALMED's reference implementation relies on PuLP/Gurobi.  This package
provides an equivalent, self-contained modeling layer (variables, linear
expressions, constraints, objective) backed by :func:`scipy.optimize.milp`
(the HiGHS solver), which handles both pure LPs and MILPs.

Public API
----------
``Model``
    The modeling object: create variables, add constraints, set the
    objective and solve.
``Variable``, ``LinearExpression``, ``Constraint``
    Building blocks returned/consumed by :class:`Model`.
``Solution``, ``SolveStatus``
    Result of :meth:`Model.solve`.
``SolverError``, ``InfeasibleError``, ``UnboundedError``
    Exceptions raised on modeling or solving failures.
"""

from repro.solvers.lp import (
    Constraint,
    InfeasibleError,
    LinearExpression,
    Model,
    Solution,
    SolverError,
    SolveStatus,
    UnboundedError,
    Variable,
    lin_sum,
)

__all__ = [
    "Constraint",
    "InfeasibleError",
    "LinearExpression",
    "Model",
    "Solution",
    "SolverError",
    "SolveStatus",
    "UnboundedError",
    "Variable",
    "lin_sum",
]
