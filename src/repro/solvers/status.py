"""Solve statuses and solver-layer exceptions.

Shared by the classic :class:`repro.solvers.Model` front-end and the sparse
:class:`repro.solvers.ModelBuilder`/:class:`repro.solvers.ModelTemplate`
path, so both report failures identically.
"""

from __future__ import annotations

import enum


class SolverError(RuntimeError):
    """Base class for solver-layer failures."""


class InfeasibleError(SolverError):
    """Raised when the problem is proven infeasible."""


class UnboundedError(SolverError):
    """Raised when the problem is unbounded in the optimization direction."""


class SolveStatus(enum.Enum):
    """Status of a solve, mapped from HiGHS status codes."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    LIMIT = "limit"
    ERROR = "error"


def map_status(code: int) -> SolveStatus:
    """Map a :func:`scipy.optimize.milp` status code to a :class:`SolveStatus`.

    scipy.optimize.milp status codes:
    0 optimal, 1 iteration/time limit, 2 infeasible, 3 unbounded, 4 other.
    """
    mapping = {
        0: SolveStatus.OPTIMAL,
        1: SolveStatus.LIMIT,
        2: SolveStatus.INFEASIBLE,
        3: SolveStatus.UNBOUNDED,
    }
    return mapping.get(code, SolveStatus.ERROR)
