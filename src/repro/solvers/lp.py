"""A small LP/MILP modeling layer on top of ``scipy.optimize.milp``.

The layer purposely mirrors the subset of the PuLP API that the original
PALMED implementation uses: named variables with bounds (continuous or
binary/integer), linear constraints, a linear objective, and a solve call
returning variable values.  It adds a couple of conveniences used by the
PALMED linear programs:

* :meth:`Model.add_indicator_leq` — big-M encoding of
  ``b = 1  =>  expr <= rhs`` for a binary variable ``b``;
* :meth:`Model.add_exists` — encoding of "at least one of these binary
  selectors is active";
* :func:`lin_sum` — sum of expressions/variables without quadratic-time
  repeated allocation.

Example
-------
>>> m = Model("example")
>>> x = m.add_variable("x", lb=0.0)
>>> y = m.add_variable("y", lb=0.0)
>>> m.add_constraint(x + 2 * y <= 4, name="cap")
>>> m.add_constraint(x + y >= 1)
>>> m.maximize(3 * x + y)
>>> sol = m.solve()
>>> round(sol[x], 6)
4.0
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

import numpy as np
from scipy import sparse

from repro.solvers import stats as solver_stats
from repro.solvers.builder import solve_milp_arrays
from repro.telemetry import TRACER
from repro.solvers.status import (
    InfeasibleError,
    SolverError,
    SolveStatus,
    UnboundedError,
    map_status,
)

Number = Union[int, float]


@dataclass(frozen=True)
class Variable:
    """A decision variable.

    Variables are created through :meth:`Model.add_variable`; they are
    hashable, compare by identity of ``(model_id, index)`` and support the
    arithmetic operators needed to build :class:`LinearExpression` objects.
    """

    name: str
    index: int
    lb: float
    ub: float
    integer: bool
    model_id: int

    def __hash__(self) -> int:
        return hash((self.model_id, self.index))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.model_id == other.model_id and self.index == other.index

    # -- arithmetic -------------------------------------------------------
    def _expr(self) -> "LinearExpression":
        return LinearExpression({self: 1.0}, 0.0)

    def __add__(self, other: Union["Variable", "LinearExpression", Number]):
        return self._expr() + other

    def __radd__(self, other: Union[Number]):
        return self._expr() + other

    def __sub__(self, other: Union["Variable", "LinearExpression", Number]):
        return self._expr() - other

    def __rsub__(self, other: Number):
        return (-1.0 * self._expr()) + other

    def __mul__(self, coeff: Number) -> "LinearExpression":
        return self._expr() * coeff

    def __rmul__(self, coeff: Number) -> "LinearExpression":
        return self._expr() * coeff

    def __neg__(self) -> "LinearExpression":
        return self._expr() * -1.0

    def __le__(self, other) -> "Constraint":
        return self._expr() <= other

    def __ge__(self, other) -> "Constraint":
        return self._expr() >= other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "int" if self.integer else "cont"
        return f"Variable({self.name!r}, {kind}, [{self.lb}, {self.ub}])"


class LinearExpression:
    """An affine expression ``sum(coeff_i * var_i) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Optional[Mapping[Variable, float]] = None,
        constant: float = 0.0,
    ) -> None:
        self.terms: Dict[Variable, float] = dict(terms) if terms else {}
        self.constant = float(constant)

    # -- construction helpers --------------------------------------------
    def copy(self) -> "LinearExpression":
        return LinearExpression(self.terms, self.constant)

    def add_term(self, var: Variable, coeff: Number) -> None:
        """Accumulate ``coeff * var`` in place."""
        if coeff == 0:
            return
        self.terms[var] = self.terms.get(var, 0.0) + float(coeff)

    # -- arithmetic -------------------------------------------------------
    @staticmethod
    def _coerce(value) -> "LinearExpression":
        if isinstance(value, LinearExpression):
            return value
        if isinstance(value, Variable):
            return LinearExpression({value: 1.0}, 0.0)
        if isinstance(value, (int, float)):
            return LinearExpression({}, float(value))
        raise TypeError(f"cannot interpret {value!r} as a linear expression")

    def __add__(self, other) -> "LinearExpression":
        other = self._coerce(other)
        result = self.copy()
        for var, coeff in other.terms.items():
            result.add_term(var, coeff)
        result.constant += other.constant
        return result

    __radd__ = __add__

    def __sub__(self, other) -> "LinearExpression":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinearExpression":
        return self._coerce(other) + (self * -1.0)

    def __mul__(self, coeff: Number) -> "LinearExpression":
        if not isinstance(coeff, (int, float)):
            raise TypeError("linear expressions can only be scaled by numbers")
        scaled = {var: c * float(coeff) for var, c in self.terms.items()}
        return LinearExpression(scaled, self.constant * float(coeff))

    __rmul__ = __mul__

    def __neg__(self) -> "LinearExpression":
        return self * -1.0

    # -- comparisons build constraints -------------------------------------
    def __le__(self, other) -> "Constraint":
        diff = self - other
        return Constraint(diff, "<=")

    def __ge__(self, other) -> "Constraint":
        diff = self - other
        return Constraint(diff, ">=")

    def equals(self, other) -> "Constraint":
        """Return the equality constraint ``self == other``.

        ``==`` is kept as the standard identity/equality test so that
        expressions remain usable in dictionaries; equality constraints are
        spelled explicitly.
        """
        diff = self - other
        return Constraint(diff, "==")

    def value(self, assignment: Mapping[Variable, float]) -> float:
        """Evaluate the expression under a variable assignment."""
        total = self.constant
        for var, coeff in self.terms.items():
            total += coeff * assignment[var]
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{c:+g}*{v.name}" for v, c in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


@dataclass
class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` after normalization."""

    expr: LinearExpression
    sense: str
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"invalid constraint sense {self.sense!r}")

    def bounds(self) -> tuple[float, float]:
        """Return ``(lower, upper)`` bounds on the variable part of expr."""
        rhs = -self.expr.constant
        if self.sense == "<=":
            return (-math.inf, rhs)
        if self.sense == ">=":
            return (rhs, math.inf)
        return (rhs, rhs)


def lin_sum(items: Iterable[Union[Variable, LinearExpression, Number]]) -> LinearExpression:
    """Sum variables/expressions/constants into one expression in linear time."""
    result = LinearExpression()
    for item in items:
        if isinstance(item, Variable):
            result.add_term(item, 1.0)
        elif isinstance(item, LinearExpression):
            for var, coeff in item.terms.items():
                result.add_term(var, coeff)
            result.constant += item.constant
        elif isinstance(item, (int, float)):
            result.constant += float(item)
        else:
            raise TypeError(f"cannot sum {item!r}")
    return result


@dataclass
class Solution:
    """Result of a :meth:`Model.solve` call."""

    status: SolveStatus
    objective: float
    values: Dict[Variable, float]
    mip_gap: Optional[float] = None

    def __getitem__(self, var: Variable) -> float:
        return self.values[var]

    def value(self, item: Union[Variable, LinearExpression]) -> float:
        """Evaluate a variable or expression under this solution."""
        if isinstance(item, Variable):
            return self.values[item]
        return item.value(self.values)

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL


_MODEL_COUNTER = [0]


@dataclass
class _ObjectiveSpec:
    expr: LinearExpression = field(default_factory=LinearExpression)
    maximize: bool = False


class Model:
    """A linear or mixed-integer linear program.

    Parameters
    ----------
    name:
        Human-readable name, used in error messages only.
    """

    #: Default big-M value used by :meth:`add_indicator_leq` when the caller
    #: does not provide a tighter bound.
    DEFAULT_BIG_M = 1.0e4

    def __init__(self, name: str = "model") -> None:
        self.name = name
        _MODEL_COUNTER[0] += 1
        self._id = _MODEL_COUNTER[0]
        self._variables: list[Variable] = []
        self._constraints: list[Constraint] = []
        self._objective = _ObjectiveSpec()
        self._names: set[str] = set()

    # -- variables ---------------------------------------------------------
    def add_variable(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = math.inf,
        integer: bool = False,
    ) -> Variable:
        """Create and register a new decision variable."""
        if name in self._names:
            raise SolverError(f"duplicate variable name {name!r} in model {self.name!r}")
        if lb > ub:
            raise SolverError(f"variable {name!r} has lb {lb} > ub {ub}")
        var = Variable(
            name=name,
            index=len(self._variables),
            lb=float(lb),
            ub=float(ub),
            integer=integer,
            model_id=self._id,
        )
        self._variables.append(var)
        self._names.add(name)
        return var

    def add_binary(self, name: str) -> Variable:
        """Create a binary (0/1) variable."""
        return self.add_variable(name, lb=0.0, ub=1.0, integer=True)

    @property
    def variables(self) -> Sequence[Variable]:
        return tuple(self._variables)

    @property
    def constraints(self) -> Sequence[Constraint]:
        return tuple(self._constraints)

    # -- constraints --------------------------------------------------------
    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built with ``<=``, ``>=`` or ``.equals``."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a Constraint; build one with "
                "'expr <= rhs', 'expr >= rhs' or 'expr.equals(rhs)'"
            )
        for var in constraint.expr.terms:
            if var.model_id != self._id:
                raise SolverError(
                    f"constraint {name or constraint!r} uses variable {var.name!r} "
                    f"from another model"
                )
        if name:
            constraint.name = name
        self._constraints.append(constraint)
        return constraint

    def add_equality(self, lhs, rhs, name: str = "") -> Constraint:
        """Convenience wrapper for ``lhs == rhs`` equality constraints."""
        expr = LinearExpression._coerce(lhs) - LinearExpression._coerce(rhs)
        return self.add_constraint(Constraint(expr, "=="), name=name)

    def add_indicator_leq(
        self,
        binary: Variable,
        expr: Union[Variable, LinearExpression],
        rhs: Number,
        big_m: Optional[float] = None,
        name: str = "",
    ) -> Constraint:
        """Add the big-M encoding of ``binary == 1  =>  expr <= rhs``.

        The constraint added is ``expr <= rhs + M * (1 - binary)``.  ``big_m``
        must upper-bound ``expr - rhs`` over the feasible region; callers with
        normalized [0, 1] quantities should pass a tight value (e.g. the
        number of summed terms).
        """
        if not binary.integer or binary.lb != 0.0 or binary.ub != 1.0:
            raise SolverError("add_indicator_leq requires a binary indicator variable")
        big_m = self.DEFAULT_BIG_M if big_m is None else float(big_m)
        expr = LinearExpression._coerce(expr)
        constraint = expr + big_m * LinearExpression({binary: 1.0}) <= float(rhs) + big_m
        return self.add_constraint(constraint, name=name)

    def add_indicator_geq(
        self,
        binary: Variable,
        expr: Union[Variable, LinearExpression],
        rhs: Number,
        big_m: Optional[float] = None,
        name: str = "",
    ) -> Constraint:
        """Add the big-M encoding of ``binary == 1  =>  expr >= rhs``."""
        if not binary.integer or binary.lb != 0.0 or binary.ub != 1.0:
            raise SolverError("add_indicator_geq requires a binary indicator variable")
        big_m = self.DEFAULT_BIG_M if big_m is None else float(big_m)
        expr = LinearExpression._coerce(expr)
        constraint = expr - big_m * LinearExpression({binary: 1.0}) >= float(rhs) - big_m
        return self.add_constraint(constraint, name=name)

    def add_exists(self, selectors: Sequence[Variable], name: str = "") -> Constraint:
        """Require at least one of the binary ``selectors`` to be 1."""
        if not selectors:
            raise SolverError("add_exists needs at least one selector variable")
        return self.add_constraint(lin_sum(selectors) >= 1.0, name=name)

    # -- objective ----------------------------------------------------------
    def minimize(self, expr: Union[Variable, LinearExpression, Number]) -> None:
        self._objective = _ObjectiveSpec(LinearExpression._coerce(expr), maximize=False)

    def maximize(self, expr: Union[Variable, LinearExpression, Number]) -> None:
        self._objective = _ObjectiveSpec(LinearExpression._coerce(expr), maximize=True)

    # -- solving ------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def num_integer_variables(self) -> int:
        return sum(1 for v in self._variables if v.integer)

    def solve(
        self,
        time_limit: Optional[float] = None,
        mip_rel_gap: Optional[float] = None,
    ) -> Solution:
        """Solve the model and return a :class:`Solution`.

        Raises
        ------
        InfeasibleError
            If the model is proven infeasible.
        UnboundedError
            If the model is unbounded in the optimization direction.
        SolverError
            For any other solver failure.
        """
        n = len(self._variables)
        if n == 0:
            return Solution(SolveStatus.OPTIMAL, self._objective.expr.constant, {})

        if not TRACER.enabled:
            return self._solve_traced(time_limit, mip_rel_gap, n)
        with TRACER.span(
            "solver.model_solve",
            model=self.name,
            variables=n,
            constraints=len(self._constraints),
        ):
            return self._solve_traced(time_limit, mip_rel_gap, n)

    def _solve_traced(
        self,
        time_limit: Optional[float],
        mip_rel_gap: Optional[float],
        n: int,
    ) -> Solution:
        # The expression-based front-end re-assembles its matrices on every
        # solve: account that as one model build (hot paths that want
        # builds < solves use ModelBuilder/ModelTemplate instead).
        build_start = time.monotonic()
        sign = -1.0 if self._objective.maximize else 1.0
        c = np.zeros(n)
        for var, coeff in self._objective.expr.terms.items():
            c[var.index] += sign * coeff

        integrality = np.array(
            [1 if var.integer else 0 for var in self._variables], dtype=np.int8
        )
        lower = np.array([var.lb for var in self._variables])
        upper = np.array([var.ub for var in self._variables])

        matrix = None
        lo = hi = None
        if self._constraints:
            rows, cols, data = [], [], []
            lo = np.empty(len(self._constraints))
            hi = np.empty(len(self._constraints))
            for ci, constraint in enumerate(self._constraints):
                c_lo, c_hi = constraint.bounds()
                lo[ci], hi[ci] = c_lo, c_hi
                for var, coeff in constraint.expr.terms.items():
                    rows.append(ci)
                    cols.append(var.index)
                    data.append(coeff)
            matrix = sparse.csr_matrix(
                (data, (rows, cols)), shape=(len(self._constraints), n)
            )
        solver_stats.record_build(time.monotonic() - build_start)

        status, x, gap = solve_milp_arrays(
            self.name,
            c,
            integrality,
            lower,
            upper,
            matrix,
            lo,
            hi,
            time_limit=time_limit,
            mip_rel_gap=mip_rel_gap,
        )

        values = {var: float(x[var.index]) for var in self._variables}
        for var in self._variables:
            if var.integer:
                values[var] = float(round(values[var]))
        objective = self._objective.expr.value(values)
        return Solution(status=status, objective=objective, values=values, mip_gap=gap)

    @staticmethod
    def _map_status(code: int) -> SolveStatus:
        # Kept as an alias of repro.solvers.status.map_status for callers
        # (and tests) that used the historical staticmethod.
        return map_status(code)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Model({self.name!r}, vars={self.num_variables}, "
            f"int={self.num_integer_variables}, cons={self.num_constraints})"
        )
