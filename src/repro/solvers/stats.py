"""Per-solve statistics of the solver layer.

Every model construction and every solve in the repository is accounted
for in a :class:`SolveStats` record: how many model structures were built,
how many solves ran, and how wall-clock splits between *building* models
and *solving* them.  The split is the LP-side analogue of the paper's
Table II benchmarking-vs-LP-time split, and it is what makes template
reuse visible — a phase that rebinds :class:`repro.solvers.ModelTemplate`
data instead of rebuilding structure reports ``model_builds`` far below
``solves``.

The batched solver engine adds a third axis to the attribution: how many
solve *requests* were answered from a template's incumbent memo instead
of the backend (``warm_start_hits``), how often template data was rebound
between solves (``rebinds`` / ``rebind_time``), how the LPAUX fan-out
batched its instructions (``lp_chunks``) and what the backend reported
about solution quality (``limit_solves`` / ``worst_mip_gap``).

``solves`` counts solve *requests*: a warm-start hit increments both
``solves`` and ``warm_start_hits`` (and adds no backend time), so the
deterministic counters are identical between cold and warm runs — the
backend-invocation count is always ``solves - warm_start_hits``
(:attr:`SolveStats.backend_solves`).

Recording is sink-based: all instrumentation records into the *active*
sink, which defaults to a process-global record (read it with
:func:`solver_stats`, clear it with :func:`reset_solver_stats`).  A scope
that wants its own attribution — one LPAUX instruction solved inside a
worker process, the core-mapping stage of a pipeline run — redirects
recording with :func:`use_stats` and merges the local record wherever it
needs to go (:func:`record_stats`); the LPAUX fan-out uses exactly this to
ship worker-side stats back to the parent process.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterator


@dataclass
class SolveStats:
    """Counts and wall-clock of model construction vs. solving.

    Attributes
    ----------
    model_builds:
        Number of model structures constructed (one per
        :meth:`repro.solvers.ModelBuilder.build` and one per
        :meth:`repro.solvers.Model.solve`, which assembles its matrix on
        every call).  Template reuse shows up as ``model_builds`` smaller
        than ``solves``.
    solves:
        Number of MILP/LP solve *requests*.  A request served from a
        template's warm-start memo counts here too (and in
        ``warm_start_hits``), so the counter is identical between cold
        and warm runs; backend invocations are ``solves -
        warm_start_hits``.
    warm_start_hits:
        Solve requests answered from a :class:`repro.solvers.ModelTemplate`
        incumbent memo — the bound data matched a previously solved
        problem bit-for-bit, so the stored optimal solution was returned
        without invoking the backend.  Merged additively.
    rebinds / rebind_time:
        Template data rebinds (one full :meth:`bind` or incremental
        :meth:`bind_assignment` of an LP2/LPAUX weight template counts as
        one) and the seconds they took.  Together with ``solve_time``
        this is the per-worker rebind-vs-solve split of the batched
        engine.  Merged additively.
    lp_chunks:
        Number of LPAUX solve chunks executed by the complete-mapping
        fan-out (0 when the record never went through it).  Chunk layout
        is planned from the *requested* parallelism, so the counter is
        identical whether the chunks ran in worker lanes or in-process.
        Merged additively.
    limit_solves:
        Backend solves that stopped at a limit (time / gap) with an
        incumbent instead of proving optimality.  Machine-speed
        dependent — never part of deterministic output hashes.
    worst_mip_gap:
        Largest relative MIP gap the backend reported across all solves
        (0.0 when every solve was exact).  Merged with ``max``.
    build_time:
        Seconds spent constructing model structures (monotonic clock).
    solve_time:
        Seconds spent inside the backend solver (monotonic clock).
    lp_workers_requested / lp_workers_effective:
        The LP fan-out decision of the complete-mapping phase: how many
        worker lanes the configuration asked for and how many were
        actually used after host sizing (a single-core host degrades a
        multi-lane request to in-process solving — the fork and
        serialization overhead buys no added CPU there).  ``0`` means the
        record never went through the fan-out.  Merged with ``max`` (a
        decision, not a quantity to accumulate).
    """

    model_builds: int = 0
    solves: int = 0
    warm_start_hits: int = 0
    rebinds: int = 0
    lp_chunks: int = 0
    limit_solves: int = 0
    worst_mip_gap: float = 0.0
    build_time: float = 0.0
    solve_time: float = 0.0
    rebind_time: float = 0.0
    lp_workers_requested: int = 0
    lp_workers_effective: int = 0

    # -- combination ---------------------------------------------------------
    def merge(self, other: "SolveStats") -> "SolveStats":
        """Accumulate another record into this one (returns ``self``).

        Counters and times merge additively; ``lp_workers_*`` and
        ``worst_mip_gap`` merge with ``max`` (a decision / a bound, not a
        quantity to accumulate across workers).
        """
        self.model_builds += other.model_builds
        self.solves += other.solves
        self.warm_start_hits += other.warm_start_hits
        self.rebinds += other.rebinds
        self.lp_chunks += other.lp_chunks
        self.limit_solves += other.limit_solves
        self.worst_mip_gap = max(self.worst_mip_gap, other.worst_mip_gap)
        self.build_time += other.build_time
        self.solve_time += other.solve_time
        self.rebind_time += other.rebind_time
        self.lp_workers_requested = max(
            self.lp_workers_requested, other.lp_workers_requested
        )
        self.lp_workers_effective = max(
            self.lp_workers_effective, other.lp_workers_effective
        )
        return self

    def copy(self) -> "SolveStats":
        return SolveStats(
            model_builds=self.model_builds,
            solves=self.solves,
            warm_start_hits=self.warm_start_hits,
            rebinds=self.rebinds,
            lp_chunks=self.lp_chunks,
            limit_solves=self.limit_solves,
            worst_mip_gap=self.worst_mip_gap,
            build_time=self.build_time,
            solve_time=self.solve_time,
            rebind_time=self.rebind_time,
            lp_workers_requested=self.lp_workers_requested,
            lp_workers_effective=self.lp_workers_effective,
        )

    @property
    def template_reuses(self) -> int:
        """Solves served by rebinding an existing structure."""
        return max(0, self.solves - self.model_builds)

    @property
    def backend_solves(self) -> int:
        """Solve requests that actually invoked the backend solver."""
        return max(0, self.solves - self.warm_start_hits)

    def as_dict(self) -> Dict[str, float]:
        return {
            "model_builds": self.model_builds,
            "solves": self.solves,
            "warm_start_hits": self.warm_start_hits,
            "rebinds": self.rebinds,
            "lp_chunks": self.lp_chunks,
            "limit_solves": self.limit_solves,
            "worst_mip_gap": self.worst_mip_gap,
            "build_time": self.build_time,
            "solve_time": self.solve_time,
            "rebind_time": self.rebind_time,
            "lp_workers_requested": self.lp_workers_requested,
            "lp_workers_effective": self.lp_workers_effective,
        }


#: Process-global default sink.
_GLOBAL = SolveStats()

#: The sink instrumentation currently records into.
_ACTIVE = _GLOBAL


def solver_stats() -> SolveStats:
    """A copy of the process-global solver statistics."""
    return _GLOBAL.copy()


def reset_solver_stats() -> None:
    """Zero the process-global solver statistics.

    Zeroes in place (never rebinds ``_GLOBAL``) so sinks captured by an
    active :func:`use_stats` scope keep pointing at the live record.
    """
    _GLOBAL.model_builds = 0
    _GLOBAL.solves = 0
    _GLOBAL.warm_start_hits = 0
    _GLOBAL.rebinds = 0
    _GLOBAL.lp_chunks = 0
    _GLOBAL.limit_solves = 0
    _GLOBAL.worst_mip_gap = 0.0
    _GLOBAL.build_time = 0.0
    _GLOBAL.solve_time = 0.0
    _GLOBAL.rebind_time = 0.0
    _GLOBAL.lp_workers_requested = 0
    _GLOBAL.lp_workers_effective = 0


@contextlib.contextmanager
def use_stats(sink: SolveStats) -> Iterator[SolveStats]:
    """Redirect all recording to ``sink`` for the duration of the block.

    The sink *replaces* the previously active one (recording is not
    duplicated into the global record); callers that want the global
    totals to stay complete merge the local sink back with
    :func:`record_stats` once they are done attributing it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = sink
    try:
        yield sink
    finally:
        _ACTIVE = previous


def record_stats(delta: SolveStats) -> None:
    """Merge an externally-accumulated record into the active sink.

    Used to re-inject per-scope records captured under :func:`use_stats`
    (or shipped back from worker processes) into the enclosing accounting.
    """
    _ACTIVE.merge(delta)


def record_build(seconds: float) -> None:
    """Account one model-structure construction."""
    _ACTIVE.model_builds += 1
    _ACTIVE.build_time += seconds


def record_solve(seconds: float) -> None:
    """Account one backend solve."""
    _ACTIVE.solves += 1
    _ACTIVE.solve_time += seconds


def record_warm_start() -> None:
    """Account one solve request served from a template's incumbent memo.

    Increments *both* ``solves`` and ``warm_start_hits`` so the
    deterministic request counter is identical between cold and warm
    runs; no backend time is added.
    """
    _ACTIVE.solves += 1
    _ACTIVE.warm_start_hits += 1


def record_rebind(seconds: float) -> None:
    """Account one template data rebind."""
    _ACTIVE.rebinds += 1
    _ACTIVE.rebind_time += seconds


def record_chunks(count: int) -> None:
    """Account ``count`` executed LPAUX solve chunks."""
    _ACTIVE.lp_chunks += count


def record_limit_solve() -> None:
    """Account one backend solve that stopped at a limit with an incumbent."""
    _ACTIVE.limit_solves += 1


def record_gap(gap: float) -> None:
    """Fold one reported relative MIP gap into ``worst_mip_gap``."""
    if gap > _ACTIVE.worst_mip_gap:
        _ACTIVE.worst_mip_gap = gap
