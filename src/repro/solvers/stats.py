"""Per-solve statistics of the solver layer.

Every model construction and every solve in the repository is accounted
for in a :class:`SolveStats` record: how many model structures were built,
how many solves ran, and how wall-clock splits between *building* models
and *solving* them.  The split is the LP-side analogue of the paper's
Table II benchmarking-vs-LP-time split, and it is what makes template
reuse visible — a phase that rebinds :class:`repro.solvers.ModelTemplate`
data instead of rebuilding structure reports ``model_builds`` far below
``solves``.

Recording is sink-based: all instrumentation records into the *active*
sink, which defaults to a process-global record (read it with
:func:`solver_stats`, clear it with :func:`reset_solver_stats`).  A scope
that wants its own attribution — one LPAUX instruction solved inside a
worker process, the core-mapping stage of a pipeline run — redirects
recording with :func:`use_stats` and merges the local record wherever it
needs to go (:func:`record_stats`); the LPAUX fan-out uses exactly this to
ship worker-side stats back to the parent process.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterator


@dataclass
class SolveStats:
    """Counts and wall-clock of model construction vs. solving.

    Attributes
    ----------
    model_builds:
        Number of model structures constructed (one per
        :meth:`repro.solvers.ModelBuilder.build` and one per
        :meth:`repro.solvers.Model.solve`, which assembles its matrix on
        every call).  Template reuse shows up as ``model_builds`` smaller
        than ``solves``.
    solves:
        Number of MILP/LP solves handed to the backend solver.
    build_time:
        Seconds spent constructing model structures (monotonic clock).
    solve_time:
        Seconds spent inside the backend solver (monotonic clock).
    lp_workers_requested / lp_workers_effective:
        The LP fan-out decision of the complete-mapping phase: how many
        worker processes the configuration asked for and how many were
        actually used after host sizing (a single-core host degrades a
        multi-worker request to in-process solving — the fork and
        serialization overhead buys no added CPU there).  ``0`` means the
        record never went through the fan-out.  Merged with ``max`` (a
        decision, not a quantity to accumulate).
    """

    model_builds: int = 0
    solves: int = 0
    build_time: float = 0.0
    solve_time: float = 0.0
    lp_workers_requested: int = 0
    lp_workers_effective: int = 0

    # -- combination ---------------------------------------------------------
    def merge(self, other: "SolveStats") -> "SolveStats":
        """Accumulate another record into this one (returns ``self``)."""
        self.model_builds += other.model_builds
        self.solves += other.solves
        self.build_time += other.build_time
        self.solve_time += other.solve_time
        self.lp_workers_requested = max(
            self.lp_workers_requested, other.lp_workers_requested
        )
        self.lp_workers_effective = max(
            self.lp_workers_effective, other.lp_workers_effective
        )
        return self

    def copy(self) -> "SolveStats":
        return SolveStats(
            model_builds=self.model_builds,
            solves=self.solves,
            build_time=self.build_time,
            solve_time=self.solve_time,
            lp_workers_requested=self.lp_workers_requested,
            lp_workers_effective=self.lp_workers_effective,
        )

    @property
    def template_reuses(self) -> int:
        """Solves served by rebinding an existing structure."""
        return max(0, self.solves - self.model_builds)

    def as_dict(self) -> Dict[str, float]:
        return {
            "model_builds": self.model_builds,
            "solves": self.solves,
            "build_time": self.build_time,
            "solve_time": self.solve_time,
            "lp_workers_requested": self.lp_workers_requested,
            "lp_workers_effective": self.lp_workers_effective,
        }


#: Process-global default sink.
_GLOBAL = SolveStats()

#: The sink instrumentation currently records into.
_ACTIVE = _GLOBAL


def solver_stats() -> SolveStats:
    """A copy of the process-global solver statistics."""
    return _GLOBAL.copy()


def reset_solver_stats() -> None:
    """Zero the process-global solver statistics.

    Zeroes in place (never rebinds ``_GLOBAL``) so sinks captured by an
    active :func:`use_stats` scope keep pointing at the live record.
    """
    _GLOBAL.model_builds = 0
    _GLOBAL.solves = 0
    _GLOBAL.build_time = 0.0
    _GLOBAL.solve_time = 0.0
    _GLOBAL.lp_workers_requested = 0
    _GLOBAL.lp_workers_effective = 0


@contextlib.contextmanager
def use_stats(sink: SolveStats) -> Iterator[SolveStats]:
    """Redirect all recording to ``sink`` for the duration of the block.

    The sink *replaces* the previously active one (recording is not
    duplicated into the global record); callers that want the global
    totals to stay complete merge the local sink back with
    :func:`record_stats` once they are done attributing it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = sink
    try:
        yield sink
    finally:
        _ACTIVE = previous


def record_stats(delta: SolveStats) -> None:
    """Merge an externally-accumulated record into the active sink.

    Used to re-inject per-scope records captured under :func:`use_stats`
    (or shipped back from worker processes) into the enclosing accounting.
    """
    _ACTIVE.merge(delta)


def record_build(seconds: float) -> None:
    """Account one model-structure construction."""
    _ACTIVE.model_builds += 1
    _ACTIVE.build_time += seconds


def record_solve(seconds: float) -> None:
    """Account one backend solve."""
    _ACTIVE.solves += 1
    _ACTIVE.solve_time += seconds
