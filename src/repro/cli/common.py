"""Argument groups and helpers shared by every ``python -m repro`` subcommand."""

from __future__ import annotations

import argparse
import json
from typing import Optional

from repro.machines import available_machines


def add_machine_arguments(parser: argparse.ArgumentParser) -> None:
    """The machine-selection flags shared by every subcommand."""
    parser.add_argument(
        "--machine",
        default="toy",
        choices=sorted(available_machines()),
        help="ground-truth machine model (default: toy)",
    )
    parser.add_argument(
        "--isa-size",
        type=int,
        default=48,
        help="synthetic ISA size for the non-toy machines (default: 48)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="ISA generation seed (default: 0)"
    )


def add_suite_arguments(parser: argparse.ArgumentParser) -> None:
    """The benchmark-suite flags shared by ``predict`` and ``evaluate``."""
    parser.add_argument(
        "--suite",
        default="spec",
        choices=("spec", "polybench"),
        help="synthetic suite family to generate (default: spec)",
    )
    parser.add_argument(
        "--blocks",
        type=int,
        default=200,
        help="number of basic blocks for the spec-like suite (default: 200)",
    )
    parser.add_argument(
        "--suite-seed",
        type=int,
        default=0,
        help="suite generation seed (default: 0)",
    )


def build_machine_from_args(args: argparse.Namespace):
    from repro import build_machine

    return build_machine(args.machine, n_instructions=args.isa_size, seed=args.seed)


def build_suite_from_args(args: argparse.Namespace, machine):
    from repro.workloads import (
        generate_polybench_like_suite,
        generate_spec_like_suite,
    )

    if args.suite == "polybench":
        return generate_polybench_like_suite(machine.instructions, seed=args.suite_seed)
    return generate_spec_like_suite(
        machine.instructions, n_blocks=args.blocks, seed=args.suite_seed
    )


def write_json(payload: object, destination: Optional[str]) -> None:
    """Dump a JSON payload to a file or (with ``"-"``) to stdout."""
    if destination is None:
        return
    text = json.dumps(payload, indent=2, sort_keys=True)
    if destination == "-":
        print(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
