"""``artifacts``: list and inspect what a serving node has on disk.

Operators point this at a registry directory to see every stored mapping
artifact (machine, fingerprint, sizes, mapping dimensions) and the
per-stage checkpoints a characterization left behind — the inventory a
``python -m repro serve`` node would serve from.
"""

from __future__ import annotations

import argparse
import datetime
import sys
from typing import Dict, List

from repro.cli.common import write_json


def _format_when(timestamp: float) -> str:
    if not timestamp:
        return "-"
    when = datetime.datetime.fromtimestamp(timestamp, tz=datetime.timezone.utc)
    return when.strftime("%Y-%m-%d %H:%M:%SZ")


def _format_size(num_bytes: int) -> str:
    if num_bytes >= 1 << 20:
        return f"{num_bytes / (1 << 20):.1f} MiB"
    if num_bytes >= 1 << 10:
        return f"{num_bytes / (1 << 10):.1f} KiB"
    return f"{num_bytes} B"


def _describe(registry) -> List[Dict[str, object]]:
    """One JSON-ready record per loadable artifact."""
    records: List[Dict[str, object]] = []
    for artifact in registry.entries():
        fingerprint = artifact.machine_fingerprint
        path = registry.path_for(fingerprint)
        records.append(
            {
                "machine": artifact.machine_name,
                "fingerprint": fingerprint,
                "created_at": artifact.created_at,
                "format_version": artifact.format_version,
                "size_bytes": path.stat().st_size if path.exists() else 0,
                "instructions_mapped": len(artifact.mapping.instructions),
                "resources": len(artifact.mapping.resources),
                "stats": {
                    "num_benchmarks": artifact.stats.num_benchmarks,
                    "lp_solves": artifact.stats.lp_solves,
                    "total_time": artifact.stats.total_time,
                },
            }
        )
    return records


def _describe_stages(registry) -> List[Dict[str, object]]:
    """One record per stage-checkpoint set (keyed by pipeline fingerprint).

    Stage checkpoints are keyed by the *backend* fingerprint of the
    characterization run, which differs from the mapping artifact's
    machine fingerprint, so they are listed as their own inventory
    section.
    """
    stages_root = registry.root / "stages"
    records: List[Dict[str, object]] = []
    if not stages_root.is_dir():
        return records
    for directory in sorted(stages_root.iterdir()):
        if not directory.is_dir():
            continue
        fingerprint = directory.name
        checkpoints = [
            {
                "stage": checkpoint.stage,
                "input_hash": checkpoint.input_hash,
                "output_hash": checkpoint.output_hash,
                "size_bytes": registry.stage_path(
                    fingerprint, checkpoint.stage, checkpoint.input_hash
                ).stat().st_size,
                "created_at": checkpoint.created_at,
            }
            for checkpoint in registry.stage_entries(fingerprint)
        ]
        records.append(
            {"fingerprint": fingerprint, "checkpoints": checkpoints}
        )
    return records


def run_artifacts(args: argparse.Namespace) -> int:
    from repro.artifacts import ArtifactRegistry

    registry = ArtifactRegistry(args.artifacts, readonly=True)
    if not registry.root.is_dir():
        print(f"error: no registry directory at {registry.root}", file=sys.stderr)
        return 1
    records = _describe(registry)
    stage_sets = _describe_stages(registry)
    if args.fingerprint:
        records = [
            record
            for record in records
            if str(record["fingerprint"]).startswith(args.fingerprint)
        ]
        stage_sets = [
            record
            for record in stage_sets
            if str(record["fingerprint"]).startswith(args.fingerprint)
        ]
        if not records and not stage_sets:
            print(
                f"error: no artifact or checkpoint fingerprint starts with "
                f"{args.fingerprint!r} under {registry.root}",
                file=sys.stderr,
            )
            return 1

    print(
        f"Registry {registry.root}: {len(records)} mapping artifact(s), "
        f"{len(stage_sets)} stage-checkpoint set(s)"
    )
    for record in records:
        print()
        print(f"  machine      {record['machine']}")
        print(f"  fingerprint  {record['fingerprint']}")
        print(
            f"  artifact     v{record['format_version']}, "
            f"{_format_size(int(record['size_bytes']))}, "
            f"created {_format_when(float(record['created_at']))}"
        )
        print(
            f"  mapping      {record['instructions_mapped']} instructions "
            f"over {record['resources']} resources"
        )
    for record in stage_sets:
        print()
        print(f"  checkpoints for pipeline fingerprint {record['fingerprint']}")
        for stage in record["checkpoints"]:
            print(
                f"    {str(stage['stage']).ljust(10)} "
                f"in {str(stage['input_hash'])[:12]}…  "
                f"out {str(stage['output_hash'])[:12]}…  "
                f"{_format_size(int(stage['size_bytes']))}"
            )

    write_json(
        {
            "registry": str(registry.root),
            "artifacts": records,
            "stage_checkpoints": stage_sets,
        },
        args.json,
    )
    return 0


def register(subparsers) -> None:
    """Attach the ``artifacts`` subcommand."""
    artifacts = subparsers.add_parser(
        "artifacts",
        help="list and inspect the mapping artifacts of a registry",
    )
    artifacts.add_argument(
        "--artifacts", metavar="DIR", required=True, help="registry directory"
    )
    artifacts.add_argument(
        "--fingerprint",
        metavar="PREFIX",
        default=None,
        help="only show artifacts whose fingerprint starts with this prefix",
    )
    artifacts.add_argument("--json", metavar="PATH", default=None)
    artifacts.set_defaults(handler=run_artifacts)
