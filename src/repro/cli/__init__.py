"""Command-line interface package: one module per subcommand group.

``python -m repro`` dispatches here (via :mod:`repro.__main__`, kept as a
thin shim for backward compatibility).  Subcommand groups:

* :mod:`repro.cli.characterize` — ``characterize``, ``fleet`` and the
  legacy flag-only entry point (inference into a registry);
* :mod:`repro.cli.predict` — ``predict``, ``evaluate`` (offline
  consumption of saved artifacts);
* :mod:`repro.cli.serve` — ``serve`` (the online micro-batching node);
* :mod:`repro.cli.artifacts_cmd` — ``artifacts`` (registry inventory);
* :mod:`repro.cli.stats_cmd` — ``stats`` (telemetry-warehouse queries).

Each group module exposes ``register(subparsers)``; this package
assembles them into the command parser and owns the entry point.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cli import artifacts_cmd, characterize, predict, serve, stats_cmd
from repro.cli.characterize import build_legacy_parser, run_characterize

#: Kept name: the legacy flag-only parser (no subcommand).
build_parser = build_legacy_parser


def build_command_parser() -> argparse.ArgumentParser:
    """The subcommand parser (characterize / predict / evaluate / ...)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PALMED pipeline, mapping-artifact and serving CLI.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    characterize.register(subparsers)
    predict.register(subparsers)
    serve.register(subparsers)
    artifacts_cmd.register(subparsers)
    stats_cmd.register(subparsers)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    try:
        if argv and not argv[0].startswith("-"):
            # Any leading word is (or was meant to be) a subcommand: let the
            # command parser handle it so typos report the valid choices
            # instead of falling through to the flag-only legacy parser.
            args = build_command_parser().parse_args(argv)
            return args.handler(args)
        args = build_parser().parse_args(argv)
        return run_characterize(args)
    except BrokenPipeError:
        # Output piped into a consumer that stopped reading (e.g. `head`):
        # redirect the dangling stdout to devnull so the interpreter's
        # shutdown flush cannot traceback, and exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


__all__ = ["build_command_parser", "build_parser", "main"]
