"""``predict`` and ``evaluate``: consume saved mapping artifacts offline."""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import (
    add_machine_arguments,
    add_suite_arguments,
    build_machine_from_args,
    build_suite_from_args,
    write_json,
)


def _load_artifact(args: argparse.Namespace, machine):
    from repro.artifacts import ArtifactRegistry

    return ArtifactRegistry(args.artifacts).load_for_machine(machine)


def run_predict(args: argparse.Namespace) -> int:
    from repro.artifacts import ArtifactError
    from repro.predictors import PalmedPredictor
    from repro.predictors.batch import SuiteMatrix

    machine = build_machine_from_args(args)
    try:
        artifact = _load_artifact(args, machine)
    except ArtifactError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    suite = build_suite_from_args(args, machine)
    predictor = PalmedPredictor(artifact.mapping)
    lowered = SuiteMatrix([block.kernel for block in suite])
    predictions = predictor.predict_batch(lowered)

    processed = [p for p in predictions if p.ipc is not None]
    print(
        f"Served {len(predictions)} blocks of {suite.name} from artifact "
        f"{artifact.machine_fingerprint[:16]}… ({artifact.machine_name})"
    )
    if processed:
        mean_ipc = sum(p.ipc for p in processed) / len(processed)
        print(
            f"processed {len(processed)} blocks, mean predicted IPC {mean_ipc:.3f}"
        )
    shown = max(0, min(args.limit, len(predictions)))
    if shown:
        print(f"\nFirst {shown} predictions:")
        width = max(len(block.name) for block in list(suite)[:shown])
        for block, prediction in list(zip(suite, predictions))[:shown]:
            ipc = "unsupported" if prediction.ipc is None else f"{prediction.ipc:.3f}"
            print(f"  {block.name.ljust(width)}  IPC {ipc}")

    write_json(
        {
            "machine": artifact.machine_name,
            "machine_fingerprint": artifact.machine_fingerprint,
            "suite": suite.name,
            "predictions": [
                {
                    "block": block.name,
                    "ipc": prediction.ipc,
                    "supported_fraction": prediction.supported_fraction,
                }
                for block, prediction in zip(suite, predictions)
            ],
        },
        args.json,
    )
    return 0


def run_evaluate(args: argparse.Namespace) -> int:
    from repro import PortModelBackend
    from repro.artifacts import ArtifactError, ArtifactNotFoundError, ArtifactRegistry
    from repro.evaluation import evaluate_predictors, format_accuracy_table
    from repro.measure import MeasurementCache, backend_fingerprint
    from repro.measure.fingerprint import machine_fingerprint
    from repro.predictors import PalmedPredictor

    machine = build_machine_from_args(args)
    backend = PortModelBackend(machine)

    fingerprint = machine_fingerprint(machine)
    try:
        artifact = _load_artifact(args, machine)
        mapping = artifact.mapping
        source = f"saved artifact {artifact.machine_fingerprint[:16]}…"
    except ArtifactNotFoundError:
        # No exported artifact — fall back to the finalize-stage checkpoint
        # left behind by a (possibly resumed) characterization, so the
        # harness consumes the pipeline's own checkpoints instead of
        # requiring a re-run.
        from repro.pipeline import load_final_outcome

        registry = ArtifactRegistry(args.artifacts)
        final = load_final_outcome(registry, backend_fingerprint(backend))
        if final is None:
            print(
                f"error: no mapping artifact and no finalize-stage checkpoint "
                f"for machine {machine.name!r} under {args.artifacts} — run "
                f"the characterization first (python -m repro characterize)",
                file=sys.stderr,
            )
            return 1
        mapping = final.mapping
        source = "finalize-stage checkpoint"
    except ArtifactError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    suite = build_suite_from_args(args, machine)
    cache = MeasurementCache(args.cache) if args.cache else None
    evaluation = evaluate_predictors(
        backend,
        suite,
        [PalmedPredictor(mapping)],
        machine_name=machine.name,
        workers=args.workers,
        cache=cache,
    )
    print(f"Fig. 4b metrics from {source} (no inference re-run)")
    print(format_accuracy_table([evaluation]))

    write_json(
        {
            "machine": machine.name,
            "machine_fingerprint": fingerprint,
            "suite": suite.name,
            "metrics": {
                metrics.tool: metrics.as_row() for metrics in evaluation.all_metrics()
            },
        },
        args.json,
    )
    return 0


def register(subparsers) -> None:
    """Attach the ``predict`` and ``evaluate`` subcommands."""
    predict = subparsers.add_parser(
        "predict",
        help="serve batched predictions from a saved mapping artifact",
    )
    add_machine_arguments(predict)
    add_suite_arguments(predict)
    predict.add_argument(
        "--artifacts", metavar="DIR", required=True, help="registry directory"
    )
    predict.add_argument(
        "--limit",
        type=int,
        default=10,
        help="number of per-block predictions to print (default: 10)",
    )
    predict.add_argument("--json", metavar="PATH", default=None)
    predict.set_defaults(handler=run_predict)

    evaluate = subparsers.add_parser(
        "evaluate",
        help="reproduce the Fig. 4b metrics from a saved mapping artifact",
    )
    add_machine_arguments(evaluate)
    add_suite_arguments(evaluate)
    evaluate.add_argument(
        "--artifacts", metavar="DIR", required=True, help="registry directory"
    )
    evaluate.add_argument(
        "--workers",
        type=int,
        default=0,
        help="native-measurement worker processes (default: in-process)",
    )
    evaluate.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="persistent measurement-cache file for the native IPCs",
    )
    evaluate.add_argument("--json", metavar="PATH", default=None)
    evaluate.set_defaults(handler=run_evaluate)
