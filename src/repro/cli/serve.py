"""``serve``: run a serving node over a registry of saved mappings.

Two transports, both stdlib-only JSON-per-line
(:mod:`repro.serving.frontend`):

* ``--stdio`` — requests on stdin, responses on stdout; composes with
  shell pipelines and is what the docs walkthrough drives;
* ``--port N`` (default) — a threaded TCP server; ``--port 0`` picks an
  ephemeral port and prints it, so scripts (and the CI smoke job) can
  parse ``listening on HOST:PORT`` and connect.

TCP clients may additionally negotiate the length-prefixed binary framing
with a ``hello`` line (see :mod:`repro.serving.frontend`); stdio stays
JSON-only.

The node opens the registry read-only, serves every machine it holds
(routed per request by name or fingerprint), micro-batches concurrent
requests per machine, and prints the serving statistics table on
shutdown.  ``--lane-mode process`` moves batch evaluation into
per-machine shared-memory worker processes (GIL-free) with
bitwise-identical results.

Cluster modes (:mod:`repro.cluster`):

* ``--node --node-id n0 --sync-from SRC --artifacts REPLICA`` — a fleet
  node: replicate the source registry into a private replica
  (hash-validated), serve it read-only over the same protocol, and
  (``--republish-poll-ms N``) watch the source for republished
  artifacts, hot-swapping with zero downtime;
* ``--cluster --nodes n0=host:p,n1=host:p,...`` — the coordinator: a
  TCP frontend that shards predict traffic across the fleet by machine
  fingerprint (rendezvous hashing), fails over between replicas, and
  fans management ops (``stats``, ``health``, ``republish``,
  ``shutdown {"fleet": true}``) out fleet-wide.
"""

from __future__ import annotations

import argparse
import sys


def run_serve(args: argparse.Namespace) -> int:
    from repro.telemetry import telemetry_session

    if getattr(args, "cluster", False):
        kind, runner = "cluster", _run_coordinator
    elif getattr(args, "node", False):
        kind, runner = "node", _run_node
    else:
        kind, runner = "serve", _run_standalone
    # A no-op context when --telemetry is absent; otherwise every span
    # and metric of this server's lifetime lands in one warehouse run.
    with telemetry_session(getattr(args, "telemetry", None), kind=kind):
        return runner(args)


def _run_standalone(args: argparse.Namespace) -> int:
    from repro.serving import LineProtocolServer, PredictionService, serve_stdio

    if args.artifacts is None:
        print("error: serve needs --artifacts DIR", file=sys.stderr)
        return 2
    service = PredictionService(
        args.artifacts,
        max_batch_size=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        max_pending=args.max_pending if args.max_pending > 0 else None,
        mapping_cache_capacity=args.mapping_cache,
        lane_mode=args.lane_mode,
    )
    known = service.registry.entries()
    if not known:
        print(
            f"error: registry {args.artifacts} holds no mapping artifacts — "
            f"run 'python -m repro characterize --artifacts {args.artifacts}' "
            f"first (see 'python -m repro artifacts')",
            file=sys.stderr,
        )
        return 1
    names = ", ".join(sorted(artifact.machine_name for artifact in known))

    with service:
        if args.stdio:
            print(
                f"serving {len(known)} machine(s) ({names}) on stdio",
                file=sys.stderr,
            )
            answered = serve_stdio(service, sys.stdin, sys.stdout)
            print(f"served {answered} request line(s)", file=sys.stderr)
        else:
            server = LineProtocolServer(service, host=args.host, port=args.port)
            host, port = server.address
            print(f"serving {len(known)} machine(s) ({names})", flush=True)
            print(f"listening on {host}:{port}", flush=True)
            try:
                server.serve_forever(poll_interval=0.1)
            except KeyboardInterrupt:
                pass
            finally:
                server.server_close()
        print(service.stats.format_table(), file=sys.stderr)
    return 0


def _run_node(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterNode

    if args.artifacts is None or args.sync_from is None:
        print(
            "error: --node needs --sync-from SOURCE (the published "
            "registry) and --artifacts DIR (this node's replica)",
            file=sys.stderr,
        )
        return 2
    if args.stdio:
        print("error: cluster nodes serve TCP only", file=sys.stderr)
        return 2
    node = ClusterNode(
        args.node_id,
        args.sync_from,
        args.artifacts,
        host=args.host,
        port=args.port,
        republish_poll_s=args.republish_poll_ms / 1e3,
        max_batch_size=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        max_pending=args.max_pending if args.max_pending > 0 else None,
        mapping_cache_capacity=args.mapping_cache,
        lane_mode=args.lane_mode,
    )
    node.start()
    try:
        host, port = node.address
        artifacts = node.service.registry.entries()
        names = ", ".join(sorted(a.machine_name for a in artifacts))
        print(
            f"node {args.node_id} serving {len(artifacts)} machine(s) "
            f"({names}) from replica {args.artifacts}",
            flush=True,
        )
        print(f"listening on {host}:{port}", flush=True)
        service = node.service
        try:
            node.wait()
        except KeyboardInterrupt:
            pass
        print(service.stats.format_table(), file=sys.stderr)
    finally:
        node.stop()
    return 0


def _run_coordinator(args: argparse.Namespace) -> int:
    import json

    from repro.cluster import (
        ClusterCoordinator,
        CoordinatorServer,
        NodeSpec,
        RetryPolicy,
    )

    if not args.nodes:
        print(
            "error: --cluster needs --nodes id=host:port,id=host:port,...",
            file=sys.stderr,
        )
        return 2
    if args.stdio:
        print("error: the coordinator serves TCP only", file=sys.stderr)
        return 2
    specs = [
        NodeSpec.parse(spec.strip(), index)
        for index, spec in enumerate(args.nodes.split(","))
        if spec.strip()
    ]
    coordinator = ClusterCoordinator(
        specs,
        replicas=args.replicas,
        retry=RetryPolicy(
            attempts=args.retry_attempts,
            timeout_s=args.node_timeout_ms / 1e3,
        ),
        node_wire=args.node_wire,
    )
    fleet = coordinator.poll_health()
    reachable = sum(
        1 for report in fleet.values() if report.get("status") == "ok"
    )
    server = CoordinatorServer(coordinator, host=args.host, port=args.port)
    host, port = server.address
    print(
        f"coordinating {len(specs)} node(s), {reachable} reachable "
        f"({', '.join(spec.node_id for spec in specs)}), "
        f"replicas={args.replicas}, wire={args.node_wire}",
        flush=True,
    )
    print(f"listening on {host}:{port}", flush=True)
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        coordinator.close()
        print(json.dumps(coordinator.stats.snapshot()), file=sys.stderr)
    return 0


def register(subparsers) -> None:
    """Attach the ``serve`` subcommand."""
    serve = subparsers.add_parser(
        "serve",
        help="serve micro-batched predictions from saved mapping artifacts",
    )
    serve.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="registry directory (standalone: the registry to serve; "
        "--node: this node's replica directory)",
    )
    transport = serve.add_mutually_exclusive_group()
    transport.add_argument(
        "--stdio",
        action="store_true",
        help="serve on stdin/stdout instead of a TCP socket",
    )
    transport.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to listen on (default: 0 = ephemeral, printed)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=512,
        help="kernel cap per coalesced micro-batch (default: 512)",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=0.0,
        help="linger for stragglers up to this many ms once the queue "
        "drains (default: 0 = flush immediately)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=4096,
        help="admission bound: outstanding kernels per machine lane "
        "before requests are refused (default: 4096; 0 = unbounded)",
    )
    serve.add_argument(
        "--mapping-cache",
        type=int,
        default=8,
        help="hot-mapping cache capacity in compiled machines (default: 8)",
    )
    serve.add_argument(
        "--telemetry",
        metavar="DB",
        default=None,
        help="record per-flush latency/occupancy metrics and spans into "
        "this sqlite warehouse for the server's lifetime (query with "
        "'python -m repro stats --db DB serving'); predictions are "
        "bitwise-identical with or without it",
    )
    serve.add_argument(
        "--lane-mode",
        choices=("thread", "process"),
        default="thread",
        help="batch evaluation mode: 'thread' runs on the lane scheduler "
        "thread; 'process' ships batches to a per-machine shared-memory "
        "worker process (GIL-free, bitwise-identical results; degrades "
        "to 'thread' with a warning if the host cannot spawn workers)",
    )
    role = serve.add_mutually_exclusive_group()
    role.add_argument(
        "--node",
        action="store_true",
        help="run as a cluster serving node: sync a replica from "
        "--sync-from into --artifacts, then serve it read-only",
    )
    role.add_argument(
        "--cluster",
        action="store_true",
        help="run as the cluster coordinator fronting --nodes",
    )
    serve.add_argument(
        "--node-id",
        default="node0",
        help="this node's stable identity in the cluster (default: node0)",
    )
    serve.add_argument(
        "--sync-from",
        metavar="DIR",
        default=None,
        help="(--node) the published source registry to replicate from",
    )
    serve.add_argument(
        "--republish-poll-ms",
        type=float,
        default=0.0,
        help="(--node) re-sync the replica and hot-swap changed mappings "
        "every N ms (default: 0 = only on the 'republish' op)",
    )
    serve.add_argument(
        "--nodes",
        metavar="SPECS",
        default=None,
        help="(--cluster) comma-separated node table, id=host:port each",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="(--cluster) candidate nodes per fingerprint (default: 2)",
    )
    serve.add_argument(
        "--node-wire",
        choices=("json", "binary"),
        default="json",
        help="(--cluster) node-to-node predict wire format (default: json)",
    )
    serve.add_argument(
        "--retry-attempts",
        type=int,
        default=2,
        help="(--cluster) per-node attempts before failover (default: 2)",
    )
    serve.add_argument(
        "--node-timeout-ms",
        type=float,
        default=10000.0,
        help="(--cluster) per-exchange node timeout (default: 10000)",
    )
    serve.set_defaults(handler=run_serve)
