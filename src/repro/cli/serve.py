"""``serve``: run a serving node over a registry of saved mappings.

Two transports, both stdlib-only JSON-per-line
(:mod:`repro.serving.frontend`):

* ``--stdio`` — requests on stdin, responses on stdout; composes with
  shell pipelines and is what the docs walkthrough drives;
* ``--port N`` (default) — a threaded TCP server; ``--port 0`` picks an
  ephemeral port and prints it, so scripts (and the CI smoke job) can
  parse ``listening on HOST:PORT`` and connect.

TCP clients may additionally negotiate the length-prefixed binary framing
with a ``hello`` line (see :mod:`repro.serving.frontend`); stdio stays
JSON-only.

The node opens the registry read-only, serves every machine it holds
(routed per request by name or fingerprint), micro-batches concurrent
requests per machine, and prints the serving statistics table on
shutdown.  ``--lane-mode process`` moves batch evaluation into
per-machine shared-memory worker processes (GIL-free) with
bitwise-identical results.
"""

from __future__ import annotations

import argparse
import sys


def run_serve(args: argparse.Namespace) -> int:
    from repro.serving import LineProtocolServer, PredictionService, serve_stdio

    service = PredictionService(
        args.artifacts,
        max_batch_size=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        max_pending=args.max_pending if args.max_pending > 0 else None,
        mapping_cache_capacity=args.mapping_cache,
        lane_mode=args.lane_mode,
    )
    known = service.registry.entries()
    if not known:
        print(
            f"error: registry {args.artifacts} holds no mapping artifacts — "
            f"run 'python -m repro characterize --artifacts {args.artifacts}' "
            f"first (see 'python -m repro artifacts')",
            file=sys.stderr,
        )
        return 1
    names = ", ".join(sorted(artifact.machine_name for artifact in known))

    with service:
        if args.stdio:
            print(
                f"serving {len(known)} machine(s) ({names}) on stdio",
                file=sys.stderr,
            )
            answered = serve_stdio(service, sys.stdin, sys.stdout)
            print(f"served {answered} request line(s)", file=sys.stderr)
        else:
            server = LineProtocolServer(service, host=args.host, port=args.port)
            host, port = server.address
            print(f"serving {len(known)} machine(s) ({names})", flush=True)
            print(f"listening on {host}:{port}", flush=True)
            try:
                server.serve_forever(poll_interval=0.1)
            except KeyboardInterrupt:
                pass
            finally:
                server.server_close()
        print(service.stats.format_table(), file=sys.stderr)
    return 0


def register(subparsers) -> None:
    """Attach the ``serve`` subcommand."""
    serve = subparsers.add_parser(
        "serve",
        help="serve micro-batched predictions from saved mapping artifacts",
    )
    serve.add_argument(
        "--artifacts", metavar="DIR", required=True, help="registry directory"
    )
    transport = serve.add_mutually_exclusive_group()
    transport.add_argument(
        "--stdio",
        action="store_true",
        help="serve on stdin/stdout instead of a TCP socket",
    )
    transport.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to listen on (default: 0 = ephemeral, printed)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=512,
        help="kernel cap per coalesced micro-batch (default: 512)",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=0.0,
        help="linger for stragglers up to this many ms once the queue "
        "drains (default: 0 = flush immediately)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=4096,
        help="admission bound: outstanding kernels per machine lane "
        "before requests are refused (default: 4096; 0 = unbounded)",
    )
    serve.add_argument(
        "--mapping-cache",
        type=int,
        default=8,
        help="hot-mapping cache capacity in compiled machines (default: 8)",
    )
    serve.add_argument(
        "--lane-mode",
        choices=("thread", "process"),
        default="thread",
        help="batch evaluation mode: 'thread' runs on the lane scheduler "
        "thread; 'process' ships batches to a per-machine shared-memory "
        "worker process (GIL-free, bitwise-identical results; degrades "
        "to 'thread' with a warning if the host cannot spawn workers)",
    )
    serve.set_defaults(handler=run_serve)
