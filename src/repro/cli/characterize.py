"""``characterize`` and ``fleet``: run the PALMED inference into a registry.

Also home of the legacy flag-only parser (``python -m repro`` without a
subcommand runs one characterization, as it always has).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.cli.common import (
    add_machine_arguments,
    build_machine_from_args,
    write_json,
)
from repro.machines import available_machines


def add_characterize_arguments(parser: argparse.ArgumentParser) -> None:
    """The characterization flags shared by the legacy CLI and ``characterize``."""
    parser.add_argument(
        "--parallelism",
        type=int,
        default=0,
        help="measurement worker processes (0 = in-process, the default)",
    )
    parser.add_argument(
        "--lp-parallelism",
        type=int,
        default=0,
        help="LPAUX solver worker processes (0 = in-process, the default)",
    )
    parser.add_argument(
        "--lp-chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="instructions per LPAUX solve chunk (default: auto-size so "
        "every solver lane gets one chunk); an execution knob — it never "
        "changes the mapping or invalidates stage checkpoints",
    )
    parser.add_argument(
        "--lp-warm-start",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="seed LP solves from memoized incumbents of identical earlier "
        "models (default: on; results are bitwise-identical either way)",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="persistent measurement-cache file (default: no persistence)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="DB",
        default=None,
        help="record traced spans and metrics into this sqlite warehouse "
        "(query with 'python -m repro stats --db DB'); results are "
        "bitwise-identical with or without it",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the run statistics as JSON to this file ('-' for stdout)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use the cheap test configuration (smaller LPs, tighter caps)",
    )
    parser.add_argument(
        "--show-mapping",
        action="store_true",
        help="also print the inferred instruction -> resource usage table",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="serve stages from matching checkpoints in the --artifacts "
        "registry instead of re-running them (requires --artifacts)",
    )
    parser.add_argument(
        "--force-stage",
        metavar="STAGE",
        action="append",
        default=[],
        help="re-run this stage even when a matching checkpoint exists "
        "(repeatable; downstream checkpoints stay valid when the re-run "
        "reproduces the same output)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the per-stage checkpoint hit/miss and timing table",
    )


def build_legacy_parser() -> argparse.ArgumentParser:
    """The legacy (no-subcommand) parser: one characterization run."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the PALMED pipeline on a bundled machine model.",
        epilog="subcommands: characterize | predict | evaluate | fleet | "
        "serve | artifacts — run 'python -m repro <subcommand> --help' for "
        "the artifact-serving workflow (without a subcommand, a plain "
        "characterization runs)",
    )
    add_machine_arguments(parser)
    add_characterize_arguments(parser)
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="mapping-artifact registry directory; saves the inferred "
        "mapping keyed by the machine fingerprint",
    )
    return parser


def run_characterize(args: argparse.Namespace) -> int:
    """Shared implementation of the legacy CLI and ``characterize``."""
    from repro import PortModelBackend
    from repro.palmed import Palmed, PalmedConfig

    config = PalmedConfig().for_fast_tests() if args.fast else PalmedConfig()
    config = dataclasses.replace(
        config,
        parallelism=args.parallelism,
        lp_parallelism=args.lp_parallelism,
        lp_chunk_size=args.lp_chunk_size,
        lp_warm_start=args.lp_warm_start,
        cache_path=args.cache,
        telemetry=getattr(args, "telemetry", None),
    )

    registry = None
    if args.artifacts is not None:
        from repro.artifacts import ArtifactRegistry

        registry = ArtifactRegistry(args.artifacts)
    if (args.resume or args.force_stage) and registry is None:
        print(
            "error: --resume/--force-stage need a checkpoint registry; "
            "pass --artifacts DIR",
            file=sys.stderr,
        )
        return 2

    machine = build_machine_from_args(args)
    backend = PortModelBackend(machine)
    palmed = Palmed(
        backend,
        machine.benchmarkable_instructions(),
        config,
        registry=registry,
        resume=args.resume,
        force_stages=args.force_stage,
    )
    result = palmed.run()

    if args.explain:
        print(palmed.explain())
        print()
    print(result.stats.format_table())
    if args.show_mapping:
        print()
        print(result.mapping.table())

    if registry is not None:
        path = registry.save_result(result, machine)
        print(f"\nMapping artifact saved to {path}")

    write_json(
        {
            "stats": dataclasses.asdict(result.stats),
            "config": dataclasses.asdict(config),
            "mapping": result.mapping.to_dict(),
        },
        args.json,
    )
    return 0


def run_fleet(args: argparse.Namespace) -> int:
    """Characterize several machines concurrently into one registry."""
    from repro.palmed import PalmedConfig
    from repro.pipeline import FleetMachine, FleetRunner

    config = PalmedConfig().for_fast_tests() if args.fast else PalmedConfig()
    specs = [
        FleetMachine(machine=name.strip(), isa_size=args.isa_size, seed=args.seed)
        for name in args.machines.split(",")
        if name.strip()
    ]
    if not specs:
        print("error: --machines needs at least one machine name", file=sys.stderr)
        return 2
    unknown = [spec.machine for spec in specs if spec.machine not in available_machines()]
    if unknown:
        print(
            f"error: unknown machine(s) {', '.join(unknown)}; available: "
            f"{', '.join(sorted(available_machines()))}",
            file=sys.stderr,
        )
        return 2

    runner = FleetRunner(
        args.artifacts, config, workers=args.workers, resume=not args.no_resume
    )
    outcomes = runner.characterize(specs)
    print(
        f"Characterized {len(outcomes)} machine(s) with {args.workers or 1} "
        f"worker(s) into {args.artifacts}"
    )
    print(FleetRunner.format_table(outcomes))

    write_json(
        {
            "machines": [
                {
                    "machine": outcome.machine_name,
                    "fingerprint": outcome.machine_fingerprint,
                    "artifact": outcome.artifact_path,
                    "checkpoint_hits": outcome.checkpoint_hits,
                    "stats": outcome.stats.to_dict(),
                }
                for outcome in outcomes
            ],
        },
        args.json,
    )
    return 0


def register(subparsers) -> None:
    """Attach the ``characterize`` and ``fleet`` subcommands."""
    characterize = subparsers.add_parser(
        "characterize",
        help="run the PALMED inference and save the mapping artifact",
    )
    add_machine_arguments(characterize)
    add_characterize_arguments(characterize)
    characterize.add_argument(
        "--artifacts",
        metavar="DIR",
        required=True,
        help="mapping-artifact registry directory to save into",
    )
    characterize.set_defaults(handler=run_characterize)

    fleet = subparsers.add_parser(
        "fleet",
        help="characterize several machines concurrently into one registry",
    )
    fleet.add_argument(
        "--machines",
        required=True,
        help="comma-separated machine names (e.g. 'toy,skl,zen')",
    )
    fleet.add_argument(
        "--isa-size",
        type=int,
        default=48,
        help="synthetic ISA size for the non-toy machines (default: 48)",
    )
    fleet.add_argument(
        "--seed", type=int, default=0, help="ISA generation seed (default: 0)"
    )
    fleet.add_argument(
        "--workers",
        type=int,
        default=0,
        help="machine-level worker processes (0 = sequential, the default)",
    )
    fleet.add_argument(
        "--artifacts", metavar="DIR", required=True, help="registry directory"
    )
    fleet.add_argument(
        "--fast",
        action="store_true",
        help="use the cheap test configuration (smaller LPs, tighter caps)",
    )
    fleet.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore existing stage checkpoints (default: resume from them)",
    )
    fleet.add_argument("--json", metavar="PATH", default=None)
    fleet.set_defaults(handler=run_fleet)
