"""``stats``: query the telemetry warehouse (canned reports + raw SQL).

The read side of :mod:`repro.telemetry`: point it at the sqlite file a
``--telemetry`` run produced and ask questions —

* ``python -m repro stats --db palmed.sqlite runs`` — every recorded run;
* ``... stats --db palmed.sqlite stages`` — per-stage wall clocks across
  characterize runs (the paper's Table II attribution, as a query);
* ``... stats --db palmed.sqlite serving`` — occupancy-weighted serving
  latency percentiles (p50/p95/p99) and flush occupancy per run;
* ``... stats --db palmed.sqlite solver`` — solver volume and
  warm-start hit rates;
* ``... stats --db palmed.sqlite cluster`` — failover / retry /
  sync-failure counts;
* ``... stats --db palmed.sqlite bench [--like PAT]`` — the committed
  ``BENCH_*.json`` perf trajectory (after ``--ingest``);
* ``... stats --db palmed.sqlite --sql 'SELECT ...'`` — anything else.

``--ingest DIR`` (re-)loads every ``BENCH_*.json`` under DIR into the
``bench_records`` table first (idempotent per file).  Output is a text
table by default, one JSON object with ``columns``/``rows`` under
``--json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Sequence, Tuple


def format_table(columns: Sequence[str], rows: Sequence[Tuple]) -> str:
    """Render a query result as an aligned text table."""
    def cell(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:g}"
        return str(value)

    table: List[List[str]] = [[str(c) for c in columns]]
    table.extend([cell(value) for value in row] for row in rows)
    widths = [
        max(len(row[i]) for row in table) for i in range(len(columns))
    ]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in table
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    lines.append(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
    return "\n".join(lines)


def run_stats(args: argparse.Namespace) -> int:
    from repro.telemetry import Warehouse
    from repro.telemetry.queries import CANNED, bench_trajectory

    if args.report is None and args.sql is None and args.ingest is None:
        print(
            "error: pick a report (" + ", ".join(sorted(CANNED)) + "), "
            "--sql QUERY, or --ingest DIR",
            file=sys.stderr,
        )
        return 2

    with Warehouse(args.db) as warehouse:
        if args.ingest is not None:
            ingested = warehouse.ingest_bench_dir(args.ingest)
            total = sum(ingested.values())
            print(
                f"ingested {total} record(s) from {len(ingested)} "
                f"bench file(s) in {args.ingest}",
                file=sys.stderr,
            )
            if args.report is None and args.sql is None:
                return 0 if ingested else 1

        if args.sql is not None:
            columns, rows = warehouse.query(args.sql)
        elif args.report == "bench":
            columns, rows = bench_trajectory(warehouse, like=args.like)
        else:
            runner, _ = CANNED[args.report]
            columns, rows = runner(warehouse)

    if args.json:
        json.dump({"columns": list(columns), "rows": [list(r) for r in rows]},
                  sys.stdout)
        print()
    else:
        print(format_table(columns, rows))
    return 0


def register(subparsers) -> None:
    """Attach the ``stats`` subcommand."""
    from repro.telemetry.queries import CANNED

    stats = subparsers.add_parser(
        "stats",
        help="query a telemetry warehouse produced by --telemetry runs",
    )
    stats.add_argument(
        "--db",
        metavar="PATH",
        required=True,
        help="the warehouse sqlite file (created by --telemetry runs; "
        "created empty here if missing)",
    )
    stats.add_argument(
        "report",
        nargs="?",
        choices=sorted(CANNED),
        default=None,
        help="canned report: "
        + "; ".join(f"{name} = {help_}" for name, (_, help_) in sorted(CANNED.items())),
    )
    stats.add_argument(
        "--sql",
        metavar="QUERY",
        default=None,
        help="run this SQL instead of a canned report (read-only use "
        "intended; tables: runs, spans, metrics, bench_records)",
    )
    stats.add_argument(
        "--ingest",
        metavar="DIR",
        default=None,
        help="first (re-)ingest every BENCH_*.json under DIR into "
        "bench_records (idempotent; exit 1 if DIR holds none)",
    )
    stats.add_argument(
        "--like",
        metavar="PAT",
        default="%",
        help="(bench report) SQL LIKE filter on the metric path",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit {columns, rows} JSON instead of a text table",
    )
    stats.set_defaults(handler=run_stats)
