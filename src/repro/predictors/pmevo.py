"""PMEvo baseline: evolutionary inference of a disjunctive port mapping.

PMEvo (Ritter & Hack, PLDI 2020) infers, like PALMED, a throughput model
from runtime measurements only.  The differences the paper highlights:

* PMEvo infers a *disjunctive* bipartite mapping (each instruction owns one
  µOP that may execute on a set of ports), which cannot express non-port
  bottlenecks (front-end, non-pipelined units);
* its benchmarks contain at most two different instructions;
* the mapping is searched with an evolutionary algorithm instead of being
  constructed, which scales poorly with the number of instructions — so its
  published mappings cover only the instructions appearing in its own
  training binaries, giving it low coverage in the paper's evaluation.

The reimplementation below follows that recipe: a genetic algorithm over
port-set assignments, fitness measured as the squared relative error of the
predicted IPC on single- and pair-instruction benchmarks, trained on a
(configurable, possibly restricted) subset of the ISA.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.isa.instruction import Instruction
from repro.machines.machine import Machine
from repro.mapping.conjunctive import ConjunctiveResourceMapping
from repro.mapping.disjunctive import DisjunctivePortMapping, MicroOp
from repro.mapping.dual import build_dual
from repro.mapping.microkernel import Microkernel
from repro.predictors.base import Prediction
from repro.predictors.batch import predict_batch_serial
from repro.simulator.backend import MeasurementBackend


@dataclass
class PMEvoConfig:
    """Parameters of the evolutionary search."""

    num_ports: int = 6
    population_size: int = 60
    generations: int = 80
    mutation_rate: float = 0.15
    crossover_rate: float = 0.7
    tournament_size: int = 3
    elite: int = 4
    seed: int = 0
    coverage_fraction: float = 0.7

    def __post_init__(self) -> None:
        if self.num_ports < 1:
            raise ValueError("num_ports must be positive")
        if not 0 < self.coverage_fraction <= 1:
            raise ValueError("coverage_fraction must be in (0, 1]")
        if self.population_size < 2 * self.elite:
            raise ValueError("population_size must be at least twice the elite count")


Genome = Dict[Instruction, FrozenSet[int]]


class _EvolutionState:
    """Internal helper evaluating genomes against the training benchmarks."""

    def __init__(
        self,
        instructions: Sequence[Instruction],
        benchmarks: List[Tuple[Microkernel, float]],
        config: PMEvoConfig,
    ) -> None:
        self.instructions = list(instructions)
        self.benchmarks = benchmarks
        self.config = config
        self.rng = random.Random(config.seed)

    # -- genome manipulation ---------------------------------------------------
    def random_genome(self) -> Genome:
        genome: Genome = {}
        for instruction in self.instructions:
            size = self.rng.randint(1, max(1, self.config.num_ports // 2))
            ports = frozenset(self.rng.sample(range(self.config.num_ports), size))
            genome[instruction] = ports
        return genome

    def mutate(self, genome: Genome) -> Genome:
        mutated = dict(genome)
        for instruction in self.instructions:
            if self.rng.random() >= self.config.mutation_rate:
                continue
            ports = set(mutated[instruction])
            port = self.rng.randrange(self.config.num_ports)
            if port in ports and len(ports) > 1:
                ports.remove(port)
            else:
                ports.add(port)
            mutated[instruction] = frozenset(ports)
        return mutated

    def crossover(self, left: Genome, right: Genome) -> Genome:
        child: Genome = {}
        for instruction in self.instructions:
            parent = left if self.rng.random() < 0.5 else right
            child[instruction] = parent[instruction]
        return child

    # -- fitness ----------------------------------------------------------------
    def predicted_ipc(self, genome: Genome, kernel: Microkernel) -> float:
        mapping = _genome_to_conjunctive(genome, self.config.num_ports)
        cycles = mapping.cycles(kernel)
        if cycles <= 0:
            return float("inf")
        return kernel.size / cycles

    def fitness(self, genome: Genome) -> float:
        """Mean squared relative IPC error over the training benchmarks (lower is better)."""
        mapping = _genome_to_conjunctive(genome, self.config.num_ports)
        total = 0.0
        for kernel, measured in self.benchmarks:
            cycles = mapping.cycles(kernel)
            predicted = kernel.size / cycles if cycles > 0 else 0.0
            relative = (predicted - measured) / measured
            total += relative * relative
        return total / len(self.benchmarks)

    # -- evolution ----------------------------------------------------------------
    def evolve(self) -> Genome:
        population = [self.random_genome() for _ in range(self.config.population_size)]
        scored = sorted((self.fitness(g), i, g) for i, g in enumerate(population))
        for _ in range(self.config.generations):
            next_population: List[Genome] = [g for _, _, g in scored[: self.config.elite]]
            while len(next_population) < self.config.population_size:
                left = self._tournament(scored)
                if self.rng.random() < self.config.crossover_rate:
                    right = self._tournament(scored)
                    child = self.crossover(left, right)
                else:
                    child = dict(left)
                next_population.append(self.mutate(child))
            population = next_population
            scored = sorted((self.fitness(g), i, g) for i, g in enumerate(population))
            if scored[0][0] < 1e-6:
                break
        return scored[0][2]

    def _tournament(self, scored) -> Genome:
        contenders = [scored[self.rng.randrange(len(scored))] for _ in range(self.config.tournament_size)]
        contenders.sort(key=lambda item: item[0])
        return contenders[0][2]


def _genome_to_conjunctive(genome: Genome, num_ports: int) -> ConjunctiveResourceMapping:
    """Turn a port-set genome into its (exact) conjunctive dual for evaluation."""
    ports = [f"q{i}" for i in range(num_ports)]
    mapping = {
        instruction: (MicroOp(frozenset(ports[p] for p in port_set)),)
        for instruction, port_set in genome.items()
    }
    disjunctive = DisjunctivePortMapping(ports, mapping)
    return build_dual(disjunctive)


def train_pmevo(
    backend: MeasurementBackend,
    instructions: Sequence[Instruction],
    config: Optional[PMEvoConfig] = None,
) -> "PMEvoPredictor":
    """Run the evolutionary inference and return the resulting predictor.

    ``coverage_fraction`` of the (benchmarkable) instructions — chosen
    deterministically from the configured seed — constitute the training
    set; the rest remains unsupported, reproducing the coverage gap the
    paper observes for PMEvo's published mappings.
    """
    config = config if config is not None else PMEvoConfig()
    rng = random.Random(config.seed)
    candidates = sorted(
        (inst for inst in set(instructions) if inst.is_benchmarkable),
        key=lambda inst: inst.name,
    )
    covered_count = max(2, int(round(len(candidates) * config.coverage_fraction)))
    covered = sorted(rng.sample(candidates, min(covered_count, len(candidates))),
                     key=lambda inst: inst.name)

    benchmarks: List[Tuple[Microkernel, float]] = []
    for instruction in covered:
        kernel = Microkernel.single(instruction)
        benchmarks.append((kernel, backend.ipc(kernel)))
    for i, a in enumerate(covered):
        for b in covered[i + 1 :]:
            kernel = Microkernel({a: 1.0, b: 1.0})
            benchmarks.append((kernel, backend.ipc(kernel)))

    state = _EvolutionState(covered, benchmarks, config)
    genome = state.evolve()
    mapping = _genome_to_conjunctive(genome, config.num_ports)
    return PMEvoPredictor(mapping=mapping, covered=covered, genome=genome)


class PMEvoPredictor:
    """Predictor over a PMEvo-style evolved disjunctive mapping."""

    def __init__(
        self,
        mapping: ConjunctiveResourceMapping,
        covered: Sequence[Instruction],
        genome: Optional[Genome] = None,
        name: str = "PMEvo",
    ) -> None:
        self.mapping = mapping
        self.genome = genome or {}
        self._covered = set(covered)
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def supports(self, instruction: Instruction) -> bool:
        return instruction in self._covered and self.mapping.supports(instruction)

    def predict(self, kernel: Microkernel) -> Prediction:
        """Predict IPC, ignoring unsupported instructions (paper's protocol)."""
        supported = {
            instruction: count
            for instruction, count in kernel.items()
            if self.supports(instruction)
        }
        fraction = sum(supported.values()) / kernel.size if kernel.size else 0.0
        if not supported:
            return Prediction(ipc=None, supported_fraction=0.0)
        reduced = Microkernel(supported)
        cycles = self.mapping.cycles(reduced)
        if cycles <= 0:
            return Prediction(ipc=None, supported_fraction=fraction)
        return Prediction(ipc=kernel.size / cycles, supported_fraction=fraction)

    def predict_batch(self, kernels: Sequence[Microkernel]) -> List[Prediction]:
        """Per-kernel predictions via the generic serial fallback."""
        return predict_batch_serial(self, kernels)


def port_pressure_baseline(machine: Machine) -> Dict[Instruction, float]:
    """Reciprocal-throughput table derived from the machine, for reference.

    Not used by the predictors themselves; exposed as a convenience for the
    examples that want to display per-instruction peak throughput next to
    the inferred mappings (similar to the tables published by uops.info).
    """
    table = {}
    for instruction in machine.instructions:
        table[instruction] = machine.true_ipc(Microkernel.single(instruction))
    return table
