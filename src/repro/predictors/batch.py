"""Vectorized batch prediction over conjunctive resource mappings.

The paper's end product is a mapping that *serves* throughput predictions:
Fig. 4b evaluates thousands of basic blocks per (machine, suite) pair, and
the closed formula of Definition IV.2

    t(K) = max_r Σ_i σ_{K,i} · ρ_{i,r},        IPC(K) = |K| / t(K)

is just a sparse matrix product followed by a per-kernel max.  This module
compiles both sides of that product once:

* :class:`MappingMatrix` lowers a
  :class:`~repro.mapping.conjunctive.ConjunctiveResourceMapping` to flat
  (resources × instructions) ρ/throughput arrays;
* :class:`SuiteMatrix` lowers a sequence of kernels to a sparse
  instruction-count matrix in COO form (and is itself a sequence of those
  kernels, so it can be passed anywhere a kernel list is accepted).

``MappingMatrix.predict_batch`` then evaluates a whole suite with a handful
of numpy operations — no per-kernel Python loops.  The suite lowering is
built once and reused across predictors and repeated calls, which is where
serving throughput comes from: the evaluation harness lowers each suite a
single time for *all* tools, and ``python -m repro predict`` serves the
same lowered suite from a saved mapping artifact.

Bitwise contract
----------------
``predict_batch`` is required to return **bitwise-identical** floats to the
scalar per-kernel path (filter supported instructions, build the reduced
kernel, ``mapping.cycles``, divide) — the same contract the measurement
layer imposes on ``measure_batch``.  Floating-point addition is not
associative, so this only holds because the vectorized path replays the
scalar evaluation order exactly:

* per entry, the contribution is evaluated as ``(σ · uses) / throughput`` —
  the same expression tree as ``multiplicity * amount / resources[r]``;
* per ``(kernel, resource)`` cell, contributions are accumulated strictly
  left-to-right in the scalar iteration order (instructions sorted by name,
  resources in mapping insertion order) via :func:`numpy.bincount`, whose C
  loop is a sequential left fold over its input.

A plain BLAS matmul would be faster still but reserves the right to reorder
the reduction, which breaks bitwise equality between batch sizes; the
differential suite (``tests/test_predict_batch.py``) pins the contract down.

The generic fallback :func:`predict_batch_serial` is the loop every
predictor without a compiled fast path uses for its ``predict_batch``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.isa.instruction import Instruction
from repro.mapping.conjunctive import ConjunctiveResourceMapping
from repro.mapping.microkernel import Microkernel
from repro.predictors.base import Prediction, Predictor


def predict_batch_serial(
    predictor: Predictor, kernels: Sequence[Microkernel]
) -> List[Prediction]:
    """The generic ``predict_batch`` fallback: one scalar call per kernel.

    Trivially satisfies the bitwise contract (it *is* the scalar path);
    predictors without a compiled fast path (the expert static analyzers,
    PMEvo) delegate to it.  Accepts a :class:`SuiteMatrix` as well, since a
    suite lowering is a sequence of its kernels.
    """
    return [predictor.predict(kernel) for kernel in kernels]


class SuiteMatrix(Sequence[Microkernel]):
    """A batch of kernels lowered to a sparse instruction-count matrix.

    The lowering walks every kernel once (instructions sorted by name, the
    scalar iteration order) and records COO triplets ``(kernel, instruction
    id, multiplicity)`` — the σ matrix of the suite — plus each kernel's
    ``|K|``.  Building it is the only per-kernel Python work in the batch
    path; everything downstream is numpy.  Lower a suite once and reuse the
    result across predictors and calls (the evaluation harness does).

    ``SuiteMatrix`` is itself a :class:`~typing.Sequence` of the original
    kernels, so it can be handed to any ``predict_batch`` — compiled fast
    paths use the lowering directly, serial fallbacks simply iterate.
    """

    def __init__(self, kernels: Sequence[Microkernel]) -> None:
        self._kernels: List[Microkernel] = list(kernels)
        instruction_ids: Dict[Instruction, int] = {}
        kernel_ids: List[int] = []
        column_ids: List[int] = []
        counts: List[float] = []
        sizes: List[float] = []
        for k, kernel in enumerate(self._kernels):
            sizes.append(kernel.size)
            for instruction, count in kernel.items():
                column = instruction_ids.setdefault(instruction, len(instruction_ids))
                kernel_ids.append(k)
                column_ids.append(column)
                counts.append(count)
        #: Distinct instructions of the suite, in first-seen order; the
        #: column axis of the count matrix.
        self.instructions: Tuple[Instruction, ...] = tuple(instruction_ids)
        #: COO row (kernel) indices, entries kernel-major, sorted by
        #: instruction name within a kernel.
        self.kernel_ids = np.array(kernel_ids, dtype=np.intp)
        #: COO column (instruction) indices, aligned with :attr:`kernel_ids`.
        self.column_ids = np.array(column_ids, dtype=np.intp)
        #: Instruction multiplicities σ, aligned with :attr:`kernel_ids`.
        self.counts = np.array(counts, dtype=np.float64)
        #: ``|K|`` of every kernel (bitwise-equal to ``Microkernel.size``).
        self.sizes = np.array(sizes, dtype=np.float64)

    @property
    def num_kernels(self) -> int:
        return len(self._kernels)

    # -- Sequence[Microkernel] ----------------------------------------------
    def __len__(self) -> int:
        return len(self._kernels)

    def __iter__(self) -> Iterator[Microkernel]:
        return iter(self._kernels)

    def __getitem__(self, index):
        return self._kernels[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SuiteMatrix(kernels={len(self._kernels)}, "
            f"instructions={len(self.instructions)}, nnz={self.counts.size})"
        )


class MappingMatrix:
    """A conjunctive mapping lowered to flat (resources × instructions) arrays.

    Parameters
    ----------
    mapping:
        The conjunctive mapping to compile.
    supported:
        Optional extra restriction: instructions *not* in this collection are
        treated as unsupported even when the mapping knows them (used by
        :class:`~repro.predictors.portmap_oracle.UopsInfoPredictor`, whose
        support set can be narrower than its mapping).

    Notes
    -----
    The lowering stores one CSR-style block per supported instruction: the
    indices of the resources it uses, the raw (non-normalized) use counts
    and the matching resource throughputs, in the mapping's own usage
    iteration order — the scalar accumulation order of
    ``ConjunctiveResourceMapping.load_per_resource``, which the bitwise
    contract requires (see the module docstring).  The dense ρ matrix is
    exposed via :meth:`rho_matrix` for inspection and the docs.
    """

    def __init__(
        self,
        mapping: ConjunctiveResourceMapping,
        supported: Optional[Sequence[Instruction]] = None,
    ) -> None:
        self.mapping = mapping
        self._resources: Tuple[str, ...] = mapping.resources
        resource_index = {name: i for i, name in enumerate(self._resources)}
        self.num_resources = len(self._resources)

        allowed = None if supported is None else set(supported)
        self._index: Dict[Instruction, int] = {}
        starts: List[int] = []
        lengths: List[int] = []
        flat_resources: List[int] = []
        flat_amounts: List[float] = []
        flat_throughputs: List[float] = []
        for instruction in mapping.instructions:
            if allowed is not None and instruction not in allowed:
                continue
            uses = mapping.usage_of(instruction)
            self._index[instruction] = len(starts)
            starts.append(len(flat_resources))
            lengths.append(len(uses))
            for name, amount in uses.items():
                flat_resources.append(resource_index[name])
                flat_amounts.append(amount)
                flat_throughputs.append(mapping.throughput_of(name))
        self._starts = np.array(starts, dtype=np.intp)
        self._lengths = np.array(lengths, dtype=np.intp)
        self._flat_resources = np.array(flat_resources, dtype=np.intp)
        self._flat_amounts = np.array(flat_amounts, dtype=np.float64)
        self._flat_throughputs = np.array(flat_throughputs, dtype=np.float64)

    # -- introspection -------------------------------------------------------
    @property
    def resources(self) -> Tuple[str, ...]:
        """Resource names, in matrix row order."""
        return self._resources

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """Supported instructions, sorted by name (ρ-matrix column order)."""
        return tuple(sorted(self._index, key=lambda inst: inst.name))

    def supports(self, instruction: Instruction) -> bool:
        return instruction in self._index

    def rho_matrix(self) -> np.ndarray:
        """The dense normalized ρ matrix, shape (resources, instructions).

        ``rho[r, i]`` is ``ρ_{i,r}`` of Definition IV.2 (uses divided by
        resource throughput) for the i-th instruction of
        :attr:`instructions`.  One matrix product with a suite's count
        matrix yields every kernel's per-resource loads.
        """
        instructions = self.instructions
        rho = np.zeros((self.num_resources, len(instructions)))
        for col, instruction in enumerate(instructions):
            block = self._index[instruction]
            start = self._starts[block]
            stop = start + self._lengths[block]
            rows = self._flat_resources[start:stop]
            rho[rows, col] = (
                self._flat_amounts[start:stop] / self._flat_throughputs[start:stop]
            )
        return rho

    # -- batched prediction --------------------------------------------------
    def predict_batch(
        self, kernels: Union[SuiteMatrix, Sequence[Microkernel]]
    ) -> List[Prediction]:
        """Predictions for a whole suite, bitwise-equal to the scalar path.

        Accepts either a pre-lowered :class:`SuiteMatrix` (the fast serving
        path — lower once, predict many) or a plain kernel sequence, which
        is lowered on the fly.  The evaluation reduces to: map suite
        columns onto mapping columns, expand the COO triplets to per-use
        contributions, one :func:`numpy.bincount` for the per-``(kernel,
        resource)`` loads, a row max and one division.
        """
        suite = kernels if isinstance(kernels, SuiteMatrix) else SuiteMatrix(kernels)
        num_kernels = suite.num_kernels
        if num_kernels == 0:
            return []

        if suite.counts.size and len(self._index):
            # Suite columns -> mapping columns (-1 = unsupported), then drop
            # unsupported entries.  Relative entry order is preserved, so the
            # scalar accumulation order survives the masking.
            lut = np.array(
                [self._index.get(inst, -1) for inst in suite.instructions],
                dtype=np.intp,
            )
            mapped = lut[suite.column_ids]
            mask = mapped >= 0
            kernel_ids = suite.kernel_ids[mask]
            blocks = mapped[mask]
            multiplicities = suite.counts[mask]
        else:
            kernel_ids = np.empty(0, dtype=np.intp)
            blocks = np.empty(0, dtype=np.intp)
            multiplicities = np.empty(0, dtype=np.float64)

        # Per-kernel supported weight and coverage flag; bincount's C loop is
        # the same left fold as the scalar ``sum(supported.values())``.
        processed = np.bincount(kernel_ids, minlength=num_kernels) > 0
        supported_weight = np.bincount(
            kernel_ids, weights=multiplicities, minlength=num_kernels
        )

        lengths = self._lengths[blocks]
        total = int(lengths.sum())
        if total:
            # Expand each (kernel, instruction) entry into its per-resource
            # uses: gather positions into the flat CSR arrays.
            ends = np.cumsum(lengths)
            positions = np.arange(total, dtype=np.intp) + np.repeat(
                self._starts[blocks] - (ends - lengths), lengths
            )
            # Same expression tree as the scalar path: (σ · uses) / throughput.
            contributions = (
                np.repeat(multiplicities, lengths)
                * self._flat_amounts[positions]
                / self._flat_throughputs[positions]
            )
            loads = np.bincount(
                np.repeat(kernel_ids, lengths) * self.num_resources
                + self._flat_resources[positions],
                weights=contributions,
                minlength=num_kernels * self.num_resources,
            ).reshape(num_kernels, self.num_resources)
            cycles = loads.max(axis=1)
        else:
            cycles = np.zeros(num_kernels)

        fractions = supported_weight / suite.sizes
        ipcs = np.divide(
            suite.sizes, cycles, out=np.zeros(num_kernels), where=cycles > 0
        )

        predictions: List[Prediction] = []
        for seen, t_value, fraction, ipc in zip(
            processed.tolist(), cycles.tolist(), fractions.tolist(), ipcs.tolist()
        ):
            if not seen:
                predictions.append(Prediction(ipc=None, supported_fraction=0.0))
            elif t_value <= 0:
                predictions.append(Prediction(ipc=None, supported_fraction=fraction))
            else:
                predictions.append(Prediction(ipc=ipc, supported_fraction=fraction))
        return predictions
