"""Vectorized batch prediction over conjunctive resource mappings.

The paper's end product is a mapping that *serves* throughput predictions:
Fig. 4b evaluates thousands of basic blocks per (machine, suite) pair, and
the closed formula of Definition IV.2

    t(K) = max_r Σ_i σ_{K,i} · ρ_{i,r},        IPC(K) = |K| / t(K)

is just a sparse matrix product followed by a per-kernel max.  This module
compiles both sides of that product once:

* :class:`MappingMatrix` lowers a
  :class:`~repro.mapping.conjunctive.ConjunctiveResourceMapping` to flat
  (resources × instructions) ρ/throughput arrays;
* :class:`SuiteMatrix` lowers a sequence of kernels to a sparse
  instruction-count matrix in COO form (and is itself a sequence of those
  kernels, so it can be passed anywhere a kernel list is accepted).

``MappingMatrix.predict_batch`` then evaluates a whole suite with a handful
of numpy operations — no per-kernel Python loops.  The suite lowering is
built once and reused across predictors and repeated calls, which is where
serving throughput comes from: the evaluation harness lowers each suite a
single time for *all* tools, and ``python -m repro predict`` serves the
same lowered suite from a saved mapping artifact.

Bitwise contract
----------------
``predict_batch`` is required to return **bitwise-identical** floats to the
scalar per-kernel path (filter supported instructions, build the reduced
kernel, ``mapping.cycles``, divide) — the same contract the measurement
layer imposes on ``measure_batch``.  Floating-point addition is not
associative, so this only holds because the vectorized path replays the
scalar evaluation order exactly:

* per entry, the contribution is evaluated as ``(σ · uses) / throughput`` —
  the same expression tree as ``multiplicity * amount / resources[r]``;
* per ``(kernel, resource)`` cell, contributions are accumulated strictly
  left-to-right in the scalar iteration order (instructions sorted by name,
  resources in mapping insertion order) via :func:`numpy.bincount`, whose C
  loop is a sequential left fold over its input.

A plain BLAS matmul would be faster still but reserves the right to reorder
the reduction, which breaks bitwise equality between batch sizes; the
differential suite (``tests/test_predict_batch.py``) pins the contract down.

The generic fallback :func:`predict_batch_serial` is the loop every
predictor without a compiled fast path uses for its ``predict_batch``.

Online serving
--------------
The offline path above lowers a *whole suite at once*.  The serving layer
(:mod:`repro.serving`) instead accumulates requests one at a time and must
keep the per-request Python work near zero, so this module also provides an
incremental lowering pipeline:

* :func:`instruction_id` interns every :class:`Instruction` into a global,
  append-only integer id space;
* :class:`KernelLowering` is one kernel pre-lowered to interned-id /
  multiplicity arrays (cached per kernel by the serving layer, so a hot
  block is lowered once and served forever);
* :class:`LoweredBatchBuilder` accumulates lowerings into preallocated
  flat COO buffers with O(entries) slice assignments and no per-batch
  rescans or list churn;
* :meth:`MappingMatrix.predict_lowered` evaluates such a batch through the
  very same masked-COO core as :meth:`MappingMatrix.predict_batch`, so the
  bitwise contract carries over unchanged.  Lanes that must hand results
  across a process boundary use :meth:`MappingMatrix.predict_lowered_arrays`
  instead, which returns the same numbers as two flat float arrays
  (NaN encoding an unpredictable kernel); :func:`predictions_from_arrays`
  converts them back to :class:`~repro.predictors.base.Prediction` objects
  without changing a bit.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.isa.instruction import Instruction
from repro.mapping.conjunctive import ConjunctiveResourceMapping
from repro.mapping.microkernel import Microkernel
from repro.predictors.base import Prediction, Predictor


def predict_batch_serial(
    predictor: Predictor, kernels: Sequence[Microkernel]
) -> List[Prediction]:
    """The generic ``predict_batch`` fallback: one scalar call per kernel.

    Trivially satisfies the bitwise contract (it *is* the scalar path);
    predictors without a compiled fast path (the expert static analyzers,
    PMEvo) delegate to it.  Accepts a :class:`SuiteMatrix` as well, since a
    suite lowering is a sequence of its kernels.
    """
    return [predictor.predict(kernel) for kernel in kernels]


# -- global instruction interning -------------------------------------------

_INTERN_LOCK = threading.Lock()
_INSTRUCTION_IDS: Dict[Instruction, int] = {}


def instruction_id(instruction: Instruction) -> int:
    """The global interned id of an instruction (assigned on first use).

    Ids are append-only and process-global: once assigned, an instruction
    keeps its id for the lifetime of the process, so kernel lowerings and
    mapping-side lookup tables built at different times stay mutually
    consistent.  Ids are *routing* values only — they never influence a
    predicted number, so their assignment order (a function of request
    arrival order) cannot break determinism of results.
    """
    ids = _INSTRUCTION_IDS
    interned = ids.get(instruction)
    if interned is None:
        with _INTERN_LOCK:
            interned = ids.setdefault(instruction, len(ids))
    return interned


def interned_instruction_count() -> int:
    """How many distinct instructions have been interned so far."""
    return len(_INSTRUCTION_IDS)


class KernelLowering:
    """One kernel pre-lowered to interned-id / multiplicity arrays.

    The entries replay the scalar iteration order (instructions sorted by
    name, the order :meth:`Microkernel.items` yields), which the bitwise
    contract requires.  Lowering a kernel costs one sort plus one interning
    lookup per distinct instruction; the serving layer caches the result
    per kernel so repeated requests for a hot block pay nothing — the
    flush path then bulk-copies the arrays into the batch buffers with
    slice assignments instead of re-walking Python lists.
    """

    __slots__ = ("instruction_ids", "counts", "size")

    def __init__(self, kernel: Microkernel) -> None:
        ids: List[int] = []
        counts: List[float] = []
        for instruction, count in kernel.items():
            ids.append(instruction_id(instruction))
            counts.append(count)
        #: Interned instruction ids, sorted by instruction name.
        self.instruction_ids: np.ndarray = np.array(ids, dtype=np.intp)
        #: Multiplicities σ aligned with :attr:`instruction_ids`.
        self.counts: np.ndarray = np.array(counts, dtype=np.float64)
        #: ``|K|`` (bitwise-equal to ``Microkernel.size``).
        self.size: float = kernel.size

    @property
    def num_entries(self) -> int:
        return int(self.instruction_ids.size)


class LoweredBatch:
    """A flat COO batch of pre-lowered kernels, in interned-id space.

    Produced by :class:`LoweredBatchBuilder`; consumed by
    :meth:`MappingMatrix.predict_lowered`.  Entries are kernel-major and
    sorted by instruction name within a kernel — the same layout as
    :class:`SuiteMatrix`, just with global interned ids instead of
    per-suite column ids.
    """

    __slots__ = ("instruction_ids", "counts", "lengths", "sizes", "num_kernels")

    def __init__(
        self,
        instruction_ids: np.ndarray,
        counts: np.ndarray,
        lengths: np.ndarray,
        sizes: np.ndarray,
    ) -> None:
        self.instruction_ids = instruction_ids
        self.counts = counts
        self.lengths = lengths
        self.sizes = sizes
        self.num_kernels = int(sizes.size)


class LoweredBatchBuilder:
    """Incremental suite lowering for accumulated request batches.

    The micro-batching scheduler appends one :class:`KernelLowering` (or a
    whole pre-lowered :class:`LoweredBatch`, for frontends that decode
    straight to arrays) per admitted unit as it gathers a batch, and
    :meth:`take` hands out the accumulated arrays once per flush.  The
    buffers are preallocated and grow geometrically, so a steady-state
    flush performs only slice assignments — no list churn, no per-batch
    ``np.array`` materialization.

    :meth:`take` returns *views* into the builder's buffers: they stay
    valid until the next ``append``, which matches the flush discipline
    (build, evaluate, resolve — then gather the next batch).  A consumer
    that must retain a batch beyond the flush copies the arrays.

    Not thread-safe: each builder belongs to a single scheduler thread.
    """

    __slots__ = ("_ids", "_counts", "_lengths", "_sizes", "_entries", "_kernels")

    def __init__(self, entry_capacity: int = 4096, kernel_capacity: int = 512) -> None:
        entry_capacity = max(1, int(entry_capacity))
        kernel_capacity = max(1, int(kernel_capacity))
        self._ids = np.empty(entry_capacity, dtype=np.intp)
        self._counts = np.empty(entry_capacity, dtype=np.float64)
        self._lengths = np.empty(kernel_capacity, dtype=np.intp)
        self._sizes = np.empty(kernel_capacity, dtype=np.float64)
        self._entries = 0
        self._kernels = 0

    def _reserve(self, entries: int, kernels: int) -> None:
        """Grow the buffers (geometrically) to fit the incoming unit."""
        need = self._entries + entries
        if need > self._ids.size:
            capacity = max(need, 2 * self._ids.size)
            ids = np.empty(capacity, dtype=np.intp)
            counts = np.empty(capacity, dtype=np.float64)
            ids[: self._entries] = self._ids[: self._entries]
            counts[: self._entries] = self._counts[: self._entries]
            self._ids, self._counts = ids, counts
        need = self._kernels + kernels
        if need > self._lengths.size:
            capacity = max(need, 2 * self._lengths.size)
            lengths = np.empty(capacity, dtype=np.intp)
            sizes = np.empty(capacity, dtype=np.float64)
            lengths[: self._kernels] = self._lengths[: self._kernels]
            sizes[: self._kernels] = self._sizes[: self._kernels]
            self._lengths, self._sizes = lengths, sizes

    def append(self, lowering: KernelLowering) -> None:
        """Add one pre-lowered kernel to the accumulating batch."""
        entries = lowering.instruction_ids.size
        self._reserve(entries, 1)
        start = self._entries
        self._ids[start : start + entries] = lowering.instruction_ids
        self._counts[start : start + entries] = lowering.counts
        self._lengths[self._kernels] = entries
        self._sizes[self._kernels] = lowering.size
        self._entries = start + entries
        self._kernels += 1

    def append_batch(self, batch: LoweredBatch) -> None:
        """Bulk-add an already-flattened batch (one slice copy per array)."""
        entries = batch.instruction_ids.size
        kernels = batch.num_kernels
        self._reserve(entries, kernels)
        start, k = self._entries, self._kernels
        self._ids[start : start + entries] = batch.instruction_ids
        self._counts[start : start + entries] = batch.counts
        self._lengths[k : k + kernels] = batch.lengths
        self._sizes[k : k + kernels] = batch.sizes
        self._entries = start + entries
        self._kernels = k + kernels

    def append_kernel(self, kernel: Microkernel) -> None:
        """Lower a kernel on the fly and add it (no cache involved)."""
        self.append(KernelLowering(kernel))

    def __len__(self) -> int:
        return self._kernels

    def take(self) -> LoweredBatch:
        """The accumulated batch (views; valid until the next append)."""
        batch = LoweredBatch(
            instruction_ids=self._ids[: self._entries],
            counts=self._counts[: self._entries],
            lengths=self._lengths[: self._kernels],
            sizes=self._sizes[: self._kernels],
        )
        self._entries = 0
        self._kernels = 0
        return batch


class SuiteMatrix(Sequence[Microkernel]):
    """A batch of kernels lowered to a sparse instruction-count matrix.

    The lowering walks every kernel once (instructions sorted by name, the
    scalar iteration order) and records COO triplets ``(kernel, instruction
    id, multiplicity)`` — the σ matrix of the suite — plus each kernel's
    ``|K|``.  Building it is the only per-kernel Python work in the batch
    path; everything downstream is numpy.  Lower a suite once and reuse the
    result across predictors and calls (the evaluation harness does).

    ``SuiteMatrix`` is itself a :class:`~typing.Sequence` of the original
    kernels, so it can be handed to any ``predict_batch`` — compiled fast
    paths use the lowering directly, serial fallbacks simply iterate.
    """

    def __init__(self, kernels: Sequence[Microkernel]) -> None:
        self._kernels: List[Microkernel] = list(kernels)
        instruction_ids: Dict[Instruction, int] = {}
        kernel_ids: List[int] = []
        column_ids: List[int] = []
        counts: List[float] = []
        sizes: List[float] = []
        for k, kernel in enumerate(self._kernels):
            sizes.append(kernel.size)
            for instruction, count in kernel.items():
                column = instruction_ids.setdefault(instruction, len(instruction_ids))
                kernel_ids.append(k)
                column_ids.append(column)
                counts.append(count)
        #: Distinct instructions of the suite, in first-seen order; the
        #: column axis of the count matrix.
        self.instructions: Tuple[Instruction, ...] = tuple(instruction_ids)
        #: COO row (kernel) indices, entries kernel-major, sorted by
        #: instruction name within a kernel.
        self.kernel_ids = np.array(kernel_ids, dtype=np.intp)
        #: COO column (instruction) indices, aligned with :attr:`kernel_ids`.
        self.column_ids = np.array(column_ids, dtype=np.intp)
        #: Instruction multiplicities σ, aligned with :attr:`kernel_ids`.
        self.counts = np.array(counts, dtype=np.float64)
        #: ``|K|`` of every kernel (bitwise-equal to ``Microkernel.size``).
        self.sizes = np.array(sizes, dtype=np.float64)

    @property
    def num_kernels(self) -> int:
        return len(self._kernels)

    # -- Sequence[Microkernel] ----------------------------------------------
    def __len__(self) -> int:
        return len(self._kernels)

    def __iter__(self) -> Iterator[Microkernel]:
        return iter(self._kernels)

    def __getitem__(self, index):
        return self._kernels[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SuiteMatrix(kernels={len(self._kernels)}, "
            f"instructions={len(self.instructions)}, nnz={self.counts.size})"
        )


class MappingMatrix:
    """A conjunctive mapping lowered to flat (resources × instructions) arrays.

    Parameters
    ----------
    mapping:
        The conjunctive mapping to compile.
    supported:
        Optional extra restriction: instructions *not* in this collection are
        treated as unsupported even when the mapping knows them (used by
        :class:`~repro.predictors.portmap_oracle.UopsInfoPredictor`, whose
        support set can be narrower than its mapping).

    Notes
    -----
    The lowering stores one CSR-style block per supported instruction: the
    indices of the resources it uses, the raw (non-normalized) use counts
    and the matching resource throughputs, in the mapping's own usage
    iteration order — the scalar accumulation order of
    ``ConjunctiveResourceMapping.load_per_resource``, which the bitwise
    contract requires (see the module docstring).  The dense ρ matrix is
    exposed via :meth:`rho_matrix` for inspection and the docs.
    """

    def __init__(
        self,
        mapping: ConjunctiveResourceMapping,
        supported: Optional[Sequence[Instruction]] = None,
    ) -> None:
        self.mapping = mapping
        self._resources: Tuple[str, ...] = mapping.resources
        resource_index = {name: i for i, name in enumerate(self._resources)}
        self.num_resources = len(self._resources)

        allowed = None if supported is None else set(supported)
        self._index: Dict[Instruction, int] = {}
        starts: List[int] = []
        lengths: List[int] = []
        flat_resources: List[int] = []
        flat_amounts: List[float] = []
        flat_throughputs: List[float] = []
        for instruction in mapping.instructions:
            if allowed is not None and instruction not in allowed:
                continue
            uses = mapping.usage_of(instruction)
            self._index[instruction] = len(starts)
            starts.append(len(flat_resources))
            lengths.append(len(uses))
            for name, amount in uses.items():
                flat_resources.append(resource_index[name])
                flat_amounts.append(amount)
                flat_throughputs.append(mapping.throughput_of(name))
        self._starts = np.array(starts, dtype=np.intp)
        self._lengths = np.array(lengths, dtype=np.intp)
        self._flat_resources = np.array(flat_resources, dtype=np.intp)
        self._flat_amounts = np.array(flat_amounts, dtype=np.float64)
        self._flat_throughputs = np.array(flat_throughputs, dtype=np.float64)
        # interned-id -> block lookup table for predict_lowered; rebuilt
        # lazily whenever the global intern table has grown past its size.
        self._interned_lut: Optional[np.ndarray] = None

    # -- introspection -------------------------------------------------------
    @property
    def resources(self) -> Tuple[str, ...]:
        """Resource names, in matrix row order."""
        return self._resources

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """Supported instructions, sorted by name (ρ-matrix column order)."""
        return tuple(sorted(self._index, key=lambda inst: inst.name))

    def supports(self, instruction: Instruction) -> bool:
        return instruction in self._index

    def rho_matrix(self) -> np.ndarray:
        """The dense normalized ρ matrix, shape (resources, instructions).

        ``rho[r, i]`` is ``ρ_{i,r}`` of Definition IV.2 (uses divided by
        resource throughput) for the i-th instruction of
        :attr:`instructions`.  One matrix product with a suite's count
        matrix yields every kernel's per-resource loads.
        """
        instructions = self.instructions
        rho = np.zeros((self.num_resources, len(instructions)))
        for col, instruction in enumerate(instructions):
            block = self._index[instruction]
            start = self._starts[block]
            stop = start + self._lengths[block]
            rows = self._flat_resources[start:stop]
            rho[rows, col] = (
                self._flat_amounts[start:stop] / self._flat_throughputs[start:stop]
            )
        return rho

    # -- batched prediction --------------------------------------------------
    def predict_batch(
        self, kernels: Union[SuiteMatrix, Sequence[Microkernel]]
    ) -> List[Prediction]:
        """Predictions for a whole suite, bitwise-equal to the scalar path.

        Accepts either a pre-lowered :class:`SuiteMatrix` (the fast serving
        path — lower once, predict many) or a plain kernel sequence, which
        is lowered on the fly.  The evaluation reduces to: map suite
        columns onto mapping columns, expand the COO triplets to per-use
        contributions, one :func:`numpy.bincount` for the per-``(kernel,
        resource)`` loads, a row max and one division.
        """
        suite = kernels if isinstance(kernels, SuiteMatrix) else SuiteMatrix(kernels)
        num_kernels = suite.num_kernels
        if num_kernels == 0:
            return []

        if suite.counts.size and len(self._index):
            # Suite columns -> mapping columns (-1 = unsupported), then drop
            # unsupported entries.  Relative entry order is preserved, so the
            # scalar accumulation order survives the masking.
            lut = np.array(
                [self._index.get(inst, -1) for inst in suite.instructions],
                dtype=np.intp,
            )
            mapped = lut[suite.column_ids]
            mask = mapped >= 0
            kernel_ids = suite.kernel_ids[mask]
            blocks = mapped[mask]
            multiplicities = suite.counts[mask]
        else:
            kernel_ids = np.empty(0, dtype=np.intp)
            blocks = np.empty(0, dtype=np.intp)
            multiplicities = np.empty(0, dtype=np.float64)

        return self._predict_masked(
            kernel_ids, blocks, multiplicities, num_kernels, suite.sizes
        )

    def predict_lowered(self, batch: LoweredBatch) -> List[Prediction]:
        """Predictions for a pre-lowered request batch (the serving path).

        Semantically identical — bitwise — to calling :meth:`predict_batch`
        on the same kernels: the interned-id lookup table plays the role of
        the per-suite column LUT, masking preserves the entry order, and
        the evaluation runs through the same masked-COO core.  The lookup
        table is cached on the matrix and rebuilt only when the global
        intern table has grown, so the steady-state per-batch cost is one
        numpy gather.
        """
        return predictions_from_arrays(*self.predict_lowered_arrays(batch))

    def predict_lowered_arrays(
        self, batch: LoweredBatch, lut: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The array form of :meth:`predict_lowered`: ``(ipcs, fractions)``.

        Returns two float64 arrays of length ``batch.num_kernels`` carrying
        exactly the numbers :meth:`predict_lowered` would wrap into
        :class:`~repro.predictors.base.Prediction` objects, with ``NaN``
        standing in for an unpredictable kernel (``ipc=None``).  This is
        the shape a process lane ships over its shared-memory response
        slab; :func:`predictions_from_arrays` restores the objects on the
        other side without touching a bit.

        ``lut`` overrides the cached interned-id table — a worker process
        evaluates against the *parent's* intern order by passing the
        snapshot it was handed at spawn, since its own intern table grows
        in request-arrival order and need not match.
        """
        num_kernels = batch.num_kernels
        if num_kernels == 0:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty.copy()

        if batch.instruction_ids.size and len(self._index):
            if lut is None:
                lut = self._interned_lut
                if lut is None:
                    lut = self._build_interned_lut()
            ids = batch.instruction_ids
            if int(ids.max()) >= lut.size:
                # Ids interned after the table was built.  The build
                # interned every mapping instruction eagerly, so a
                # later id is unsupported by construction: clip the
                # gather and mask the overflow to -1 instead of
                # rebuilding — request streams full of never-seen
                # mnemonics (e.g. adversarial frontend input) then cost
                # two extra numpy ops, not a per-batch table rebuild.
                in_range = ids < lut.size
                mapped = np.where(
                    in_range, lut[np.minimum(ids, lut.size - 1)], -1
                )
            else:
                mapped = lut[ids]
            mask = mapped >= 0
            kernel_ids = np.repeat(
                np.arange(num_kernels, dtype=np.intp), batch.lengths
            )[mask]
            blocks = mapped[mask]
            multiplicities = batch.counts[mask]
        else:
            kernel_ids = np.empty(0, dtype=np.intp)
            blocks = np.empty(0, dtype=np.intp)
            multiplicities = np.empty(0, dtype=np.float64)

        return self._masked_arrays(
            kernel_ids, blocks, multiplicities, num_kernels, batch.sizes
        )

    def interned_lut_snapshot(self) -> np.ndarray:
        """A copy of the interned-id -> block table (built if needed).

        The snapshot a parent hands to a process lane at spawn: block
        indices are positional in ``mapping.instructions`` order, so a
        worker that compiled the same artifact evaluates identically.
        """
        lut = self._interned_lut
        if lut is None:
            lut = self._build_interned_lut()
        return lut.copy()

    def _build_interned_lut(self) -> np.ndarray:
        """Build the interned-id -> block table, once per matrix.

        Every mapping instruction is interned *eagerly* here, so the
        finished table covers all ids that could ever map to a block —
        ids assigned later necessarily belong to instructions this
        mapping does not support, and :meth:`predict_lowered` masks them
        without a rebuild.  Benign under concurrency: the build is
        idempotent, so two threads racing here compute the same array and
        the single reference assignment keeps readers consistent.
        """
        blocks = {
            instruction_id(instruction): block
            for instruction, block in self._index.items()
        }
        lut = np.full(max(1, interned_instruction_count()), -1, dtype=np.intp)
        for interned, block in blocks.items():
            lut[interned] = block
        self._interned_lut = lut
        return lut

    def _predict_masked(
        self,
        kernel_ids: np.ndarray,
        blocks: np.ndarray,
        multiplicities: np.ndarray,
        num_kernels: int,
        sizes: np.ndarray,
    ) -> List[Prediction]:
        """Masked-COO evaluation, wrapped into :class:`Prediction` objects."""
        return predictions_from_arrays(
            *self._masked_arrays(
                kernel_ids, blocks, multiplicities, num_kernels, sizes
            )
        )

    def _masked_arrays(
        self,
        kernel_ids: np.ndarray,
        blocks: np.ndarray,
        multiplicities: np.ndarray,
        num_kernels: int,
        sizes: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The shared evaluation core over masked (supported-only) COO entries.

        Both batch entry points reduce to this; it replays the scalar
        accumulation order exactly (see the module docstring), so whatever
        produced the masked triplets, the returned floats are
        bitwise-identical to the per-kernel scalar path.  The return value
        is ``(ipcs, fractions)`` with NaN encoding ``ipc=None`` — both an
        unprocessed kernel (fraction forced to 0.0) and a processed kernel
        whose cycle count is non-positive.
        """
        # Per-kernel supported weight and coverage flag; bincount's C loop is
        # the same left fold as the scalar ``sum(supported.values())``.
        processed = np.bincount(kernel_ids, minlength=num_kernels) > 0
        supported_weight = np.bincount(
            kernel_ids, weights=multiplicities, minlength=num_kernels
        )

        lengths = self._lengths[blocks]
        total = int(lengths.sum())
        if total:
            # Expand each (kernel, instruction) entry into its per-resource
            # uses: gather positions into the flat CSR arrays.
            ends = np.cumsum(lengths)
            positions = np.arange(total, dtype=np.intp) + np.repeat(
                self._starts[blocks] - (ends - lengths), lengths
            )
            # Same expression tree as the scalar path: (σ · uses) / throughput.
            contributions = (
                np.repeat(multiplicities, lengths)
                * self._flat_amounts[positions]
                / self._flat_throughputs[positions]
            )
            loads = np.bincount(
                np.repeat(kernel_ids, lengths) * self.num_resources
                + self._flat_resources[positions],
                weights=contributions,
                minlength=num_kernels * self.num_resources,
            ).reshape(num_kernels, self.num_resources)
            cycles = loads.max(axis=1)
        else:
            cycles = np.zeros(num_kernels)

        fractions = supported_weight / sizes
        ipcs = np.divide(
            sizes, cycles, out=np.zeros(num_kernels), where=cycles > 0
        )

        # NaN-encode the scalar tail's case split without changing a bit:
        # the selected ipc/fraction values are passed through untouched.
        return (
            np.where(processed & (cycles > 0), ipcs, np.nan),
            np.where(processed, fractions, 0.0),
        )


def predictions_from_arrays(
    ipcs: np.ndarray, fractions: np.ndarray
) -> List[Prediction]:
    """Rewrap an ``(ipcs, fractions)`` pair into :class:`Prediction` objects.

    The exact inverse of the NaN encoding
    :meth:`MappingMatrix.predict_lowered_arrays` produces: NaN means
    ``ipc=None``, every other float crosses unchanged (``x != x`` is the
    allocation-free NaN test).
    """
    return [
        Prediction(ipc=None if ipc != ipc else ipc, supported_fraction=fraction)
        for ipc, fraction in zip(ipcs.tolist(), fractions.tolist())
    ]
