"""Throughput predictors: PALMED and the baselines of the evaluation.

The paper (Sec. VI) compares PALMED's IPC predictions against four tools.
None of them can be run here (IACA is closed-source and deprecated,
llvm-mca and uops.info need real x86 encodings, PMEvo needs hours of
benchmarking on real hardware), so each is replaced by a predictor that
reproduces *how the paper evaluates it*:

``PalmedPredictor``
    Wraps a :class:`~repro.palmed.PalmedResult` (or any conjunctive
    mapping inferred from measurements).
``UopsInfoPredictor``
    The ground-truth port mapping evaluated "with exact compatibility and
    approximating the execution time by the port with the highest usage",
    i.e. the machine's conjunctive dual *without* any non-port resource —
    this is literally the protocol of Sec. VI.B item (3).
``IacaLikePredictor`` / ``LlvmMcaPredictor``
    Expert static analyzers: ground-truth port mapping plus a front-end
    model, with configurable per-instruction table errors and coverage
    gaps mimicking hand-maintained scheduler models.  IACA only supports
    the Intel machine, as in the paper.
``PMEvoPredictor``
    A reimplementation of PMEvo's approach: evolutionary inference of a
    disjunctive instruction → port-set mapping from pairwise benchmarks,
    with restricted instruction coverage.

Every predictor also exposes a batched entry point, ``predict_batch`` —
required to be bitwise-identical to the scalar ``predict`` loop.  The
mapping-backed tools (Palmed, uops.info) serve it through a compiled numpy
lowering of their conjunctive mapping (:class:`MappingMatrix`, one
bincount + column-max per suite); the others use the generic serial
fallback (:func:`predict_batch_serial`).  See ``docs/serving.md``.
"""

from repro.predictors.base import Prediction, Predictor
from repro.predictors.batch import (
    KernelLowering,
    LoweredBatch,
    LoweredBatchBuilder,
    MappingMatrix,
    SuiteMatrix,
    instruction_id,
    predict_batch_serial,
    predictions_from_arrays,
)
from repro.predictors.palmed_predictor import PalmedPredictor
from repro.predictors.portmap_oracle import UopsInfoPredictor
from repro.predictors.static_analyzer import IacaLikePredictor, LlvmMcaPredictor
from repro.predictors.pmevo import PMEvoConfig, PMEvoPredictor, train_pmevo

__all__ = [
    "IacaLikePredictor",
    "KernelLowering",
    "LlvmMcaPredictor",
    "LoweredBatch",
    "LoweredBatchBuilder",
    "MappingMatrix",
    "instruction_id",
    "PMEvoConfig",
    "PMEvoPredictor",
    "PalmedPredictor",
    "Prediction",
    "Predictor",
    "SuiteMatrix",
    "UopsInfoPredictor",
    "predict_batch_serial",
    "predictions_from_arrays",
    "train_pmevo",
]
