"""Predictor wrapping a PALMED-inferred conjunctive mapping."""

from __future__ import annotations

from typing import Optional, Union

from repro.isa.instruction import Instruction
from repro.mapping.conjunctive import ConjunctiveResourceMapping
from repro.mapping.microkernel import Microkernel
from repro.palmed.result import PalmedResult
from repro.predictors.base import Prediction


class PalmedPredictor:
    """IPC predictions from an inferred conjunctive resource mapping.

    Accepts either a :class:`~repro.palmed.PalmedResult` or a bare
    :class:`~repro.mapping.ConjunctiveResourceMapping` (e.g. one loaded from
    JSON), so mappings can be stored and reused without re-running the
    inference.
    """

    def __init__(
        self,
        source: Union[PalmedResult, ConjunctiveResourceMapping],
        name: str = "Palmed",
    ) -> None:
        if isinstance(source, PalmedResult):
            self.mapping = source.mapping
        else:
            self.mapping = source
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def supports(self, instruction: Instruction) -> bool:
        return self.mapping.supports(instruction)

    def predict(self, kernel: Microkernel) -> Prediction:
        supported = {
            instruction: count
            for instruction, count in kernel.items()
            if self.mapping.supports(instruction)
        }
        fraction = sum(supported.values()) / kernel.size if kernel.size else 0.0
        if not supported:
            return Prediction(ipc=None, supported_fraction=0.0)
        reduced = Microkernel(supported)
        cycles = self.mapping.cycles(reduced)
        if cycles <= 0:
            return Prediction(ipc=None, supported_fraction=fraction)
        return Prediction(ipc=kernel.size / cycles, supported_fraction=fraction)

    def predict_ipc(self, kernel: Microkernel) -> Optional[float]:
        """Convenience accessor returning just the IPC (or None)."""
        return self.predict(kernel).ipc
