"""Predictor wrapping a PALMED-inferred conjunctive mapping."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.isa.instruction import Instruction
from repro.mapping.conjunctive import ConjunctiveResourceMapping
from repro.mapping.microkernel import Microkernel
from repro.palmed.result import PalmedResult
from repro.predictors.base import Prediction
from repro.predictors.batch import MappingMatrix


class PalmedPredictor:
    """IPC predictions from an inferred conjunctive resource mapping.

    This is the serving side of the paper's pipeline: predictions use the
    closed formula of Definition IV.2 (``t(K) = max_r load_r``), evaluated
    per kernel by :meth:`predict` and for whole suites by
    :meth:`predict_batch`, which lowers the mapping once to a compiled
    numpy form (:class:`~repro.predictors.batch.MappingMatrix`).

    Accepts either a :class:`~repro.palmed.PalmedResult` or a bare
    :class:`~repro.mapping.ConjunctiveResourceMapping` (e.g. one loaded from
    a saved artifact, see :mod:`repro.artifacts`), so mappings can be stored
    and reused without re-running the inference.
    """

    def __init__(
        self,
        source: Union[PalmedResult, ConjunctiveResourceMapping],
        name: str = "Palmed",
    ) -> None:
        if isinstance(source, PalmedResult):
            self.mapping = source.mapping
        else:
            self.mapping = source
        self._name = name
        self._matrix: Optional[MappingMatrix] = None

    @property
    def name(self) -> str:
        return self._name

    def supports(self, instruction: Instruction) -> bool:
        return self.mapping.supports(instruction)

    def predict(self, kernel: Microkernel) -> Prediction:
        supported = {
            instruction: count
            for instruction, count in kernel.items()
            if self.mapping.supports(instruction)
        }
        fraction = sum(supported.values()) / kernel.size if kernel.size else 0.0
        if not supported:
            return Prediction(ipc=None, supported_fraction=0.0)
        reduced = Microkernel(supported)
        cycles = self.mapping.cycles(reduced)
        if cycles <= 0:
            return Prediction(ipc=None, supported_fraction=fraction)
        return Prediction(ipc=kernel.size / cycles, supported_fraction=fraction)

    def predict_batch(self, kernels: Sequence[Microkernel]) -> List[Prediction]:
        """Vectorized predictions for a suite, bitwise-equal to :meth:`predict`.

        The mapping is lowered to its ρ/throughput arrays on first use and
        the whole batch is evaluated with a handful of numpy operations —
        the fast path behind the evaluation harness and the
        ``python -m repro predict`` / ``evaluate`` subcommands.
        """
        if self._matrix is None:
            self._matrix = MappingMatrix(self.mapping)
        return self._matrix.predict_batch(kernels)

    def predict_ipc(self, kernel: Microkernel) -> Optional[float]:
        """Convenience accessor returning just the IPC (or None)."""
        return self.predict(kernel).ipc
