"""The common predictor interface used by the evaluation harness.

A predictor is the serving-side view of a throughput model (paper Sec. VI):
a name for the Fig. 4b tables, a per-instruction ``supports`` test (the
coverage columns), a scalar ``predict`` and a batched ``predict_batch``.
The batch entry point is what the evaluation harness and the CLI use — for
mapping-backed predictors it compiles down to a few numpy operations over
the whole suite (see :mod:`repro.predictors.batch`), with results required
to be bitwise-identical to the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, runtime_checkable

from repro.isa.instruction import Instruction
from repro.mapping.microkernel import Microkernel


@dataclass(frozen=True, slots=True)
class Prediction:
    """Outcome of asking a tool about one kernel.

    ``ipc`` is ``None`` when the tool could not process the kernel at all
    (no supported instruction); ``supported_fraction`` reports how much of
    the kernel the tool actually modeled — the paper's coverage metric
    counts a kernel as covered when the tool processed it, possibly in
    degraded mode.

    The class is slotted: the online serving layer (:mod:`repro.serving`)
    constructs one instance per served request on its hot path, where the
    per-instance ``__dict__`` of a regular dataclass is measurable
    overhead.
    """

    ipc: Optional[float]
    supported_fraction: float = 1.0

    @property
    def is_full_support(self) -> bool:
        return self.ipc is not None and self.supported_fraction >= 1.0 - 1e-9


@runtime_checkable
class Predictor(Protocol):
    """A throughput predictor: a name plus per-kernel IPC estimates.

    ``predict_batch`` must be observationally identical to calling
    :meth:`predict` on each kernel in sequence (bitwise-equal floats) — the
    same contract :meth:`repro.simulator.backend.MeasurementBackend.measure_batch`
    imposes on the measurement side.  Implementations without a vectorized
    fast path delegate to :func:`repro.predictors.batch.predict_batch_serial`.
    """

    @property
    def name(self) -> str:
        """Short tool name used in tables (e.g. ``"uops.info"``)."""
        ...

    def supports(self, instruction: Instruction) -> bool:
        """Whether the tool models this instruction at all."""
        ...

    def predict(self, kernel: Microkernel) -> Prediction:
        """Predicted IPC (and coverage) for a kernel."""
        ...

    def predict_batch(self, kernels: Sequence[Microkernel]) -> List[Prediction]:
        """Predictions for every kernel, in input order (see class docs)."""
        ...
