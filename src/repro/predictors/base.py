"""The common predictor interface used by the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

from repro.isa.instruction import Instruction
from repro.mapping.microkernel import Microkernel


@dataclass(frozen=True)
class Prediction:
    """Outcome of asking a tool about one kernel.

    ``ipc`` is ``None`` when the tool could not process the kernel at all
    (no supported instruction); ``supported_fraction`` reports how much of
    the kernel the tool actually modeled — the paper's coverage metric
    counts a kernel as covered when the tool processed it, possibly in
    degraded mode.
    """

    ipc: Optional[float]
    supported_fraction: float = 1.0

    @property
    def is_full_support(self) -> bool:
        return self.ipc is not None and self.supported_fraction >= 1.0 - 1e-9


@runtime_checkable
class Predictor(Protocol):
    """A throughput predictor: a name plus a per-kernel IPC estimate."""

    @property
    def name(self) -> str:
        """Short tool name used in tables (e.g. ``"uops.info"``)."""
        ...

    def supports(self, instruction: Instruction) -> bool:
        """Whether the tool models this instruction at all."""
        ...

    def predict(self, kernel: Microkernel) -> Prediction:
        """Predicted IPC (and coverage) for a kernel."""
        ...
