"""IACA-like and llvm-mca-like expert static analyzers.

Both tools rely on hand-maintained scheduler models of the target
microarchitecture.  They model the front-end in addition to port pressure,
which is why the paper finds them accurate on Skylake (IACA 8.7 % / llvm-mca
20.1 % RMS error on SPEC) while uops.info's port-only view over-estimates.
Their weaknesses come from the hand-written tables: some instructions carry
simplified or wrong port assignments, and coverage is not perfect.

The reproduction models them as predictors over the machine's ground-truth
dual mapping *with* the front-end resource, degraded in a deterministic,
configurable way:

* a fraction of instructions (chosen by hash) uses a *simplified* mapping —
  the instruction is charged only to its widest combined resource, losing
  the pressure it puts on narrow port groups;
* IACA supports only the Intel-like machine (``machine.name`` containing
  ``"SKL"``), as in the paper where no AMD data exists.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence

from repro.isa.instruction import Instruction
from repro.machines.machine import FRONT_END_RESOURCE, Machine
from repro.mapping.conjunctive import ConjunctiveResourceMapping
from repro.mapping.microkernel import Microkernel
from repro.predictors.base import Prediction
from repro.predictors.batch import predict_batch_serial


def _stable_fraction(instruction: Instruction, salt: str) -> float:
    """Deterministic pseudo-uniform value in [0, 1) per (instruction, salt)."""
    digest = hashlib.sha256(f"{salt}:{instruction.name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") / 2**64


class _ExpertModelPredictor:
    """Shared implementation of the hand-tuned-scheduler-model predictors."""

    def __init__(
        self,
        machine: Machine,
        name: str,
        table_error_rate: float,
        unsupported_rate: float,
        salt: str,
    ) -> None:
        self.machine = machine
        self._name = name
        self.table_error_rate = table_error_rate
        self.unsupported_rate = unsupported_rate
        self._salt = salt
        self._mapping = self._degraded_mapping()

    # -- model degradation ---------------------------------------------------
    def _degraded_mapping(self) -> ConjunctiveResourceMapping:
        exact = self.machine.true_conjunctive(include_front_end=True)
        resources = {name: exact.throughput_of(name) for name in exact.resources}
        usage: Dict[Instruction, Dict[str, float]] = {}
        for instruction in exact.instructions:
            if _stable_fraction(instruction, self._salt + ":drop") < self.unsupported_rate:
                continue
            uses = exact.usage_of(instruction)
            if _stable_fraction(instruction, self._salt + ":err") < self.table_error_rate:
                uses = self._simplify(uses)
            usage[instruction] = uses
        return ConjunctiveResourceMapping(resources, usage)

    @staticmethod
    def _simplify(uses: Dict[str, float]) -> Dict[str, float]:
        """Keep only the front-end and the widest (largest-throughput) resource.

        This mimics a scheduler-model entry that knows the instruction's
        overall throughput class but not which narrow port group it
        pressures.
        """
        port_uses = {r: u for r, u in uses.items() if r != FRONT_END_RESOURCE}
        simplified = {r: u for r, u in uses.items() if r == FRONT_END_RESOURCE}
        if port_uses:
            widest = max(port_uses, key=lambda r: (len(r), r))
            simplified[widest] = port_uses[widest]
        return simplified

    # -- predictor interface ---------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    def supports(self, instruction: Instruction) -> bool:
        return self._mapping.supports(instruction)

    def predict(self, kernel: Microkernel) -> Prediction:
        supported = {
            instruction: count
            for instruction, count in kernel.items()
            if self.supports(instruction)
        }
        fraction = sum(supported.values()) / kernel.size if kernel.size else 0.0
        if not supported:
            return Prediction(ipc=None, supported_fraction=0.0)
        reduced = Microkernel(supported)
        cycles = self._mapping.cycles(reduced)
        if cycles <= 0:
            return Prediction(ipc=None, supported_fraction=fraction)
        return Prediction(ipc=kernel.size / cycles, supported_fraction=fraction)

    def predict_batch(self, kernels: Sequence[Microkernel]) -> List[Prediction]:
        """Per-kernel predictions via the generic serial fallback."""
        return predict_batch_serial(self, kernels)


class IacaLikePredictor(_ExpertModelPredictor):
    """Intel's IACA: accurate proprietary model, Intel machines only.

    Raises :class:`ValueError` when instantiated for a non-Intel-like
    machine, reproducing the "N/A" cells of the paper's Zen1 rows.
    """

    def __init__(
        self,
        machine: Machine,
        table_error_rate: float = 0.03,
        unsupported_rate: float = 0.0,
    ) -> None:
        if not self.supports_machine(machine):
            raise ValueError(
                f"IACA does not support machine {machine.name!r} (Intel-only tool)"
            )
        super().__init__(
            machine,
            name="IACA",
            table_error_rate=table_error_rate,
            unsupported_rate=unsupported_rate,
            salt="iaca",
        )

    @staticmethod
    def supports_machine(machine: Machine) -> bool:
        return "skl" in machine.name.lower() or "intel" in machine.name.lower() \
            or "toy" in machine.name.lower()


class LlvmMcaPredictor(_ExpertModelPredictor):
    """llvm-mca: open-source scheduler models, broader but less precise."""

    def __init__(
        self,
        machine: Machine,
        table_error_rate: float = 0.15,
        unsupported_rate: float = 0.03,
    ) -> None:
        super().__init__(
            machine,
            name="llvm-mca",
            table_error_rate=table_error_rate,
            unsupported_rate=unsupported_rate,
            salt="llvm-mca",
        )
