"""The uops.info-like baseline: a port-mapping oracle without front-end.

Section VI.B of the paper evaluates uops.info's data "by running a
conjunctive mapping with exact compatibility and approximating the execution
time by the port with the highest usage".  The reproduction does exactly
that: it takes the *ground-truth* disjunctive port mapping of the machine
(playing the role of Abel & Reineke's measured mapping, which is considered
extremely accurate for port usage), converts it to its conjunctive dual, and
predicts throughput from port pressure alone — no front-end, reorder-buffer
or non-pipelined-unit modeling beyond the per-port occupancies.

As discussed in the paper, this family of tools therefore tends to
*over-estimate* the IPC of kernels whose real bottleneck is not a port
(e.g. front-end-bound kernels of cheap single-µOP instructions).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.isa.instruction import Instruction
from repro.machines.machine import Machine
from repro.mapping.microkernel import Microkernel
from repro.predictors.base import Prediction
from repro.predictors.batch import MappingMatrix


class UopsInfoPredictor:
    """Ground-truth port mapping, port-pressure-only throughput estimate.

    Reproduces the paper's Sec. VI.B protocol for uops.info's data: the
    machine's exact disjunctive port mapping converted to its conjunctive
    dual without any front-end resource, so throughput is approximated "by
    the port with the highest usage".  Suites are served through the same
    compiled batch path as :class:`~repro.predictors.PalmedPredictor`.
    """

    def __init__(
        self,
        machine: Machine,
        name: str = "uops.info",
        supported_instructions: Optional[Sequence[Instruction]] = None,
    ) -> None:
        self.machine = machine
        self._name = name
        self.mapping = machine.true_conjunctive(include_front_end=False)
        if supported_instructions is None:
            self._supported = set(machine.benchmarkable_instructions())
        else:
            self._supported = set(supported_instructions)
        self._matrix: Optional[MappingMatrix] = None

    @property
    def name(self) -> str:
        return self._name

    def supports(self, instruction: Instruction) -> bool:
        return instruction in self._supported and self.mapping.supports(instruction)

    def predict(self, kernel: Microkernel) -> Prediction:
        supported = {
            instruction: count
            for instruction, count in kernel.items()
            if self.supports(instruction)
        }
        fraction = sum(supported.values()) / kernel.size if kernel.size else 0.0
        if not supported:
            return Prediction(ipc=None, supported_fraction=0.0)
        reduced = Microkernel(supported)
        cycles = self.mapping.cycles(reduced)
        if cycles <= 0:
            return Prediction(ipc=None, supported_fraction=fraction)
        return Prediction(ipc=kernel.size / cycles, supported_fraction=fraction)

    def predict_batch(self, kernels: Sequence[Microkernel]) -> List[Prediction]:
        """Vectorized predictions for a suite, bitwise-equal to :meth:`predict`."""
        if self._matrix is None:
            self._matrix = MappingMatrix(self.mapping, supported=self._supported)
        return self._matrix.predict_batch(kernels)
