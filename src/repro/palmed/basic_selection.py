"""Basic instruction selection (Algorithm 1 of the paper).

The selection trims the full instruction set down to ``n`` *basic
instructions* — instructions that map to as few resources as possible, yet
together touch every resource — which are the only instructions the
expensive core-mapping ILPs ever see.  Four successive steps:

1. **Low-IPC filter**: instructions whose standalone IPC is at most
   ``1 - ε`` use some resource more than once per instruction and are kept
   out of the basic set (they are still mapped later by LPAUX).
2. **Equivalence classes**: instructions with identical pairwise-IPC
   signatures are duplicates; only a representative is kept.
3. **Very basic instructions**: a maximal clique of pairwise *disjoint*
   instructions (``IPC(aabb) = IPC(a) + IPC(b)``), greedily built following
   the ``<_VB`` order (most disjoint first).  These are instructions that
   plausibly use a single resource each.
4. **Most greedy instructions**: if the clique is smaller than ``n``, the
   remaining slots are filled with the instructions that slow everything
   else down the most (smallest pairwise IPCs), which guarantees the shared
   resources are represented too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.isa.instruction import Instruction
from repro.palmed.clustering import cluster_representatives, hierarchical_clusters
from repro.palmed.config import PalmedConfig
from repro.palmed.quadratic import QuadraticBenchmarks


@dataclass
class BasicSelectionResult:
    """Outcome of Algorithm 1.

    Attributes
    ----------
    basic:
        The selected basic instructions ``I_B`` (very basic + greedy).
    very_basic:
        The disjoint clique ``I_VB``.
    greedy:
        The greedy completion ``I_MF``.
    candidates:
        Instructions that survived the low-IPC filter (before clustering).
    representatives:
        Mapping from each kept representative to its equivalence class.
    low_ipc:
        Instructions excluded by the low-IPC filter (still mapped by LPAUX).
    disjoint:
        The ``Dj`` relation: for each representative, the set of
        representatives it is disjoint from.
    """

    basic: List[Instruction]
    very_basic: List[Instruction]
    greedy: List[Instruction]
    candidates: List[Instruction]
    representatives: Dict[Instruction, List[Instruction]]
    low_ipc: List[Instruction]
    disjoint: Dict[Instruction, Set[Instruction]] = field(default_factory=dict)

    @property
    def num_classes(self) -> int:
        """Number of behavioural equivalence classes."""
        return len(self.representatives)

    def class_of(self, instruction: Instruction) -> List[Instruction]:
        """The equivalence class containing ``instruction`` (if any)."""
        for representative, members in self.representatives.items():
            if instruction in members:
                return members
        raise KeyError(instruction.name)

    def non_disjoint_partners(self, instruction: Instruction) -> Set[Instruction]:
        """Representatives sharing at least one resource with ``instruction``.

        This is the ``><`` relation used by the LP1 constraints for the
        greedy instructions.
        """
        others = set(self.representatives) - {instruction}
        return others - self.disjoint.get(instruction, set())


def select_basic_instructions(
    quadratic: QuadraticBenchmarks,
    config: PalmedConfig,
) -> BasicSelectionResult:
    """Run Algorithm 1 on a set of quadratic benchmark measurements."""
    instructions = list(quadratic.instructions)

    # Step 1 — low-IPC filter.
    low_ipc = [
        inst for inst in instructions
        if quadratic.single_ipc(inst) <= config.low_ipc_threshold
    ]
    candidates = [inst for inst in instructions if inst not in set(low_ipc)]

    # Step 2 — equivalence classes among the remaining candidates.
    vectors = {inst: quadratic.behaviour_vector(inst) for inst in candidates}
    clusters = hierarchical_clusters(vectors, config.cluster_tolerance)
    scores = {inst: quadratic.single_ipc(inst) for inst in candidates}
    representatives = cluster_representatives(clusters, scores)
    kept = sorted(representatives, key=lambda inst: inst.name)

    # Step 3 — disjointness relation and the very-basic clique.
    disjoint: Dict[Instruction, Set[Instruction]] = {
        a: {
            b
            for b in kept
            if b != a and quadratic.are_disjoint(a, b, config.epsilon)
        }
        for a in kept
    }

    n_basic = config.target_basic_count(len(representatives))

    def vb_sort_key(inst: Instruction) -> Tuple[float, float, str]:
        # Most-disjoint first; ties broken by higher standalone IPC, then name.
        return (-float(len(disjoint[inst])), -quadratic.single_ipc(inst), inst.name)

    very_basic: List[Instruction] = []
    for inst in sorted(kept, key=vb_sort_key):
        if all(other in disjoint[inst] for other in very_basic):
            very_basic.append(inst)
        if len(very_basic) >= n_basic:
            break

    # Step 4 — greedy completion (highest greediness score first: the
    # instructions that keep everything fast because they can use many
    # alternative ports, hence exercise the wide combined resources).
    greedy: List[Instruction] = []
    if len(very_basic) < n_basic:
        by_greediness = sorted(
            (inst for inst in kept if inst not in set(very_basic)),
            key=lambda inst: (-quadratic.greediness_score(inst), inst.name),
        )
        for inst in by_greediness:
            greedy.append(inst)
            if len(very_basic) + len(greedy) >= n_basic:
                break

    basic = sorted(very_basic + greedy, key=lambda inst: inst.name)
    return BasicSelectionResult(
        basic=basic,
        very_basic=sorted(very_basic, key=lambda inst: inst.name),
        greedy=sorted(greedy, key=lambda inst: inst.name),
        candidates=candidates,
        representatives=representatives,
        low_ipc=sorted(low_ipc, key=lambda inst: inst.name),
        disjoint=disjoint,
    )
