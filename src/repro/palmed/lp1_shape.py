"""LP1 — the shape of the core mapping (Algorithm 3 of the paper).

The shape problem decides *how many* abstract resources are needed and
*which* basic instructions may use each of them, before any edge weight is
computed.  It is an integer linear program over binary usage indicators
``ρ_{i,r} ∈ {0, 1}``:

* every very-basic instruction owns at least one resource that no other
  very-basic instruction uses (it was selected as pairwise disjoint from
  them);
* every greedy instruction shares at least one resource with *all* the
  instructions it is not disjoint from (the ``><`` relation);
* for every measured microkernel, each *saturating* instruction (one whose
  own execution time equals the kernel's) owns a resource unused by the rest
  of the kernel; kernels without a saturating instruction must have a
  resource shared by all their instructions;
* the number of resources used is minimized (with a secondary objective
  minimizing the number of edges).

"Exists a resource such that …" constraints are encoded with auxiliary
binary selector variables and big-M implications (the big-M is always the
number of terms involved, so the relaxation stays tight).

The ILP is assembled through the sparse :class:`repro.solvers.ModelBuilder`
(COO triplets, one compilation per solve) — the shape problem is solved a
handful of times per run, but it is by far the *largest* model in the
pipeline and profits most from skipping per-expression dict merging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.isa.instruction import Instruction
from repro.mapping.microkernel import Microkernel
from repro.palmed.basic_selection import BasicSelectionResult
from repro.palmed.config import PalmedConfig
from repro.solvers import ModelBuilder


@dataclass(frozen=True)
class KernelObservation:
    """A measured microkernel fed to LP1/LP2."""

    kernel: Microkernel
    ipc: float

    @property
    def cycles(self) -> float:
        """Measured cycles per loop iteration (``t(K) = |K| / IPC``)."""
        return self.kernel.size / self.ipc


@dataclass
class ShapeMapping:
    """Result of the shape problem: admissible edges per basic instruction."""

    num_resources: int
    edges: Dict[Instruction, Set[int]]

    def users_of(self, resource: int) -> List[Instruction]:
        """Basic instructions allowed to use a given resource."""
        return sorted(
            (inst for inst, resources in self.edges.items() if resource in resources),
            key=lambda inst: inst.name,
        )

    @property
    def num_edges(self) -> int:
        return sum(len(resources) for resources in self.edges.values())


def saturating_instructions(
    observation: KernelObservation,
    single_ipc: Dict[Instruction, float],
    epsilon: float,
) -> List[Instruction]:
    """Instructions whose own execution time equals the kernel's.

    An instruction ``i`` saturates kernel ``K`` when executing only its
    ``σ_{K,i}`` instances already takes (within tolerance) as long as the
    whole kernel: its private resource is the kernel's bottleneck.
    """
    result = []
    kernel_cycles = observation.cycles
    for instruction, multiplicity in observation.kernel.items():
        own_cycles = multiplicity / single_ipc[instruction]
        if own_cycles >= kernel_cycles * (1.0 - epsilon):
            result.append(instruction)
    return result


def solve_shape(
    observations: Sequence[KernelObservation],
    selection: BasicSelectionResult,
    single_ipc: Dict[Instruction, float],
    config: PalmedConfig,
) -> ShapeMapping:
    """Solve the LP1 ILP and return the inferred shape.

    Raises
    ------
    repro.solvers.InfeasibleError
        If no mapping with at most ``config.max_resources`` resources can
        explain the observations (increase ``max_resources``).
    """
    basic = list(selection.basic)
    basic_set = set(basic)
    very_basic = [inst for inst in selection.very_basic if inst in basic_set]
    greedy = [inst for inst in selection.greedy if inst in basic_set]
    num_resources = config.max_resources
    resources = range(num_resources)

    builder = ModelBuilder("lp1-shape")
    rho = {
        (inst, r): builder.add_binary()
        for inst in basic
        for r in resources
    }
    used = {r: builder.add_binary() for r in resources}

    def add_exists(selectors: Sequence[int]) -> None:
        """Require at least one of the binary selector columns to be 1."""
        builder.add_row_entries(selectors, [1.0] * len(selectors), lo=1.0)

    # A resource is "used" as soon as any instruction maps to it; symmetry is
    # broken by forcing used resources to occupy the lowest indices and by
    # ordering resource columns lexicographically (interpreting each column
    # as a binary number over the basic instructions), which removes the
    # factorial blow-up of permuting identical resources.
    for r in resources:
        for inst in basic:
            builder.add_row_entries([rho[(inst, r)], used[r]], [1.0, -1.0], hi=0.0)
    for r in range(num_resources - 1):
        builder.add_row_entries([used[r + 1], used[r]], [1.0, -1.0], hi=0.0)
        row = builder.add_row(hi=0.0)
        for i, inst in enumerate(basic):
            builder.add_entry(row, rho[(inst, r + 1)], float(2 ** i))
            builder.add_entry(row, rho[(inst, r)], -float(2 ** i))

    # Every basic instruction uses at least one resource.
    for inst in basic:
        add_exists([rho[(inst, r)] for r in resources])

    # Very basic instructions: at least one resource unused by the other
    # very basic instructions (Algorithm 3, line 4).
    for inst in very_basic:
        others = [other for other in very_basic if other != inst]
        selectors = []
        for r in resources:
            selector = builder.add_binary()
            selectors.append(selector)
            builder.add_row_entries([selector, rho[(inst, r)]], [1.0, -1.0], hi=0.0)
            for other in others:
                builder.add_row_entries([selector, rho[(other, r)]], [1.0, 1.0], hi=1.0)
        add_exists(selectors)

    # Greedy instructions: at least one resource shared with every
    # non-disjoint basic instruction (Algorithm 3, line 5).
    for inst in greedy:
        partners = sorted(
            selection.non_disjoint_partners(inst) & basic_set - {inst},
            key=lambda other: other.name,
        )
        if not partners:
            continue
        selectors = []
        for r in resources:
            selector = builder.add_binary()
            selectors.append(selector)
            builder.add_row_entries([selector, rho[(inst, r)]], [1.0, -1.0], hi=0.0)
            for other in partners:
                builder.add_row_entries(
                    [selector, rho[(other, r)]], [1.0, -1.0], hi=0.0
                )
        add_exists(selectors)

    # Per-kernel constraints (Algorithm 3, lines 6-10).
    for observation in observations:
        kernel_instructions = [
            inst for inst in observation.kernel.instructions if inst in basic_set
        ]
        if len(kernel_instructions) < 2:
            # Single-instruction kernels only assert "uses some resource",
            # which is already enforced above.
            continue
        saturating = [
            inst
            for inst in saturating_instructions(observation, single_ipc, config.epsilon)
            if inst in basic_set
        ]
        if saturating:
            for inst in saturating:
                others = [other for other in kernel_instructions if other != inst]
                selectors = []
                for r in resources:
                    selector = builder.add_binary()
                    selectors.append(selector)
                    builder.add_row_entries(
                        [selector, rho[(inst, r)]], [1.0, -1.0], hi=0.0
                    )
                    for other in others:
                        builder.add_row_entries(
                            [selector, rho[(other, r)]], [1.0, 1.0], hi=1.0
                        )
                add_exists(selectors)
        else:
            selectors = []
            for r in resources:
                selector = builder.add_binary()
                selectors.append(selector)
                for inst in kernel_instructions:
                    builder.add_row_entries(
                        [selector, rho[(inst, r)]], [1.0, -1.0], hi=0.0
                    )
            add_exists(selectors)

    # Primary objective: number of resources; secondary: number of edges.
    big = float(len(basic) * num_resources + 1)
    objective = {col: 1.0 for col in rho.values()}
    for col in used.values():
        objective[col] = big
    builder.set_objective(objective, maximize=False)

    solution = builder.build().solve(
        time_limit=config.lp1_time_limit, mip_rel_gap=config.lp1_mip_gap
    )

    active_resources = [r for r in resources if solution.x[used[r]] > 0.5]
    renumber = {r: new_index for new_index, r in enumerate(active_resources)}
    edges: Dict[Instruction, Set[int]] = {
        inst: {
            renumber[r]
            for r in active_resources
            if solution.x[rho[(inst, r)]] > 0.5
        }
        for inst in basic
    }
    return ShapeMapping(num_resources=len(active_resources), edges=edges)
