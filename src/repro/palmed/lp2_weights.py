"""LP2 / LPAUX — the Bipartite Weight Problem (Algorithm 4 of the paper).

Given a set of measured microkernels and the admissible edges of the
mapping, the BWP finds edge weights ``ρ_{i,r} ∈ [0, 1]`` such that for every
kernel the predicted resource loads are consistent with the measured IPC:

    ρ_{K,r} = (Σ_i σ_{K,i} ρ_{i,r}) · IPC(K) / |K|      (proportion of r used)
    ρ_{K,r} ≤ 1                                          (capacity)
    S_K = max_r ρ_{K,r}                                  (saturation of K)

and the total prediction error ``Σ_K (1 - S_K)`` is minimized: an exactly
predicted kernel has one fully saturated resource.

``S_K = max_r ρ_{K,r}`` cannot be maximized directly in a pure LP, so two
solvers are provided:

* an **exact MILP** that introduces one binary selector per (kernel,
  resource) pair choosing which resource realises the max;
* an **alternating heuristic** that fixes the argmax resource of every
  kernel, solves the resulting LP, recomputes the argmax from the solution
  and repeats until the assignment stabilizes.  This is the default for
  large kernel sets (the role Gurobi's scale plays in the original tool).

The same routine serves LP2 (all basic-instruction weights free) and LPAUX
(core weights frozen, a single instruction free, possibly unbounded above
for low-IPC instructions), which only differ by their inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.isa.instruction import Instruction
from repro.palmed.config import PalmedConfig
from repro.palmed.lp1_shape import KernelObservation
from repro.solvers import LinearExpression, Model, lin_sum


@dataclass
class WeightProblem:
    """Inputs of one Bipartite Weight Problem instance."""

    observations: Sequence[KernelObservation]
    num_resources: int
    free_edges: Mapping[Instruction, Set[int]]
    frozen_rho: Mapping[Instruction, Mapping[int, float]]
    rho_upper_bound: Optional[float] = 1.0
    #: When the frozen part of the mapping alone already over-uses a resource
    #: for some kernel (possible because the core is itself an approximation),
    #: a hard capacity constraint would make the problem infeasible.  With
    #: ``soft_capacity`` the capacity bound is relaxed to the frozen usage for
    #: those kernels, which simply forbids the free instruction from adding
    #: load there.  Used by LPAUX.
    soft_capacity: bool = False

    def __post_init__(self) -> None:
        if self.num_resources <= 0:
            raise ValueError("num_resources must be positive")
        overlap = set(self.free_edges) & set(self.frozen_rho)
        if overlap:
            names = ", ".join(sorted(inst.name for inst in overlap))
            raise ValueError(f"instructions both free and frozen: {names}")


@dataclass
class WeightSolution:
    """Solution of a Bipartite Weight Problem."""

    rho: Dict[Instruction, Dict[int, float]]
    saturation: Dict[KernelObservation, float]
    total_error: float

    def saturated_kernels(self, resource: int, problem: WeightProblem,
                          tolerance: float = 0.05) -> List[KernelObservation]:
        """Kernels whose load on ``resource`` reaches (1 - tolerance)."""
        result = []
        for observation in problem.observations:
            load = kernel_resource_usage(observation, resource, self.rho, problem.frozen_rho)
            if load >= 1.0 - tolerance:
                result.append(observation)
        return result


def kernel_resource_usage(
    observation: KernelObservation,
    resource: int,
    free_rho: Mapping[Instruction, Mapping[int, float]],
    frozen_rho: Mapping[Instruction, Mapping[int, float]],
) -> float:
    """Evaluate ``ρ_{K,r}`` for concrete edge weights."""
    total = 0.0
    for instruction, multiplicity in observation.kernel.items():
        weights = free_rho.get(instruction) or frozen_rho.get(instruction) or {}
        total += multiplicity * weights.get(resource, 0.0)
    return total * observation.ipc / observation.kernel.size


def solve_weights(problem: WeightProblem, config: PalmedConfig) -> WeightSolution:
    """Solve the BWP with the solver selected by the configuration."""
    mode = config.lp2_mode
    if mode == "auto":
        mode = (
            "exact"
            if len(problem.observations) <= config.lp2_exact_max_kernels
            else "heuristic"
        )
    if mode == "exact":
        return solve_weights_exact(problem, config)
    return solve_weights_heuristic(problem, config)


# ---------------------------------------------------------------------------
# Shared model construction
# ---------------------------------------------------------------------------

def _build_base_model(
    problem: WeightProblem, name: str
) -> Tuple[Model, Dict[Tuple[Instruction, int], object], Dict[int, Dict[int, LinearExpression]]]:
    """Create the model with ρ variables and the per-kernel usage expressions."""
    model = Model(name)
    upper = problem.rho_upper_bound
    rho_vars: Dict[Tuple[Instruction, int], object] = {}
    for instruction in sorted(problem.free_edges, key=lambda inst: inst.name):
        for resource in sorted(problem.free_edges[instruction]):
            rho_vars[(instruction, resource)] = model.add_variable(
                f"rho[{instruction.name},{resource}]",
                lb=0.0,
                ub=math.inf if upper is None else upper,
            )

    usage: Dict[int, Dict[int, LinearExpression]] = {}
    for index, observation in enumerate(problem.observations):
        usage[index] = {}
        scale = observation.ipc / observation.kernel.size
        for resource in range(problem.num_resources):
            expr = LinearExpression()
            for instruction, multiplicity in observation.kernel.items():
                coefficient = multiplicity * scale
                if instruction in problem.free_edges:
                    if resource in problem.free_edges[instruction]:
                        expr.add_term(rho_vars[(instruction, resource)], coefficient)
                else:
                    frozen = problem.frozen_rho.get(instruction, {})
                    expr.constant += coefficient * frozen.get(resource, 0.0)
            usage[index][resource] = expr
            # Capacity: no resource can be used beyond its throughput.  When
            # the frozen contribution alone exceeds it (soft_capacity), the
            # bound degrades gracefully to "the free part adds nothing".
            bound = 1.0
            if problem.soft_capacity and expr.constant > 1.0:
                bound = expr.constant
            model.add_constraint(expr <= bound)
    return model, rho_vars, usage


def _extract_solution(
    problem: WeightProblem,
    solution,
    rho_vars: Mapping[Tuple[Instruction, int], object],
    saturation_values: Mapping[int, float],
) -> WeightSolution:
    rho: Dict[Instruction, Dict[int, float]] = {}
    for (instruction, resource), variable in rho_vars.items():
        value = float(solution[variable])
        if value < 0:
            value = 0.0
        rho.setdefault(instruction, {})[resource] = value
    for instruction in problem.free_edges:
        rho.setdefault(instruction, {})
    saturation = {
        observation: saturation_values[index]
        for index, observation in enumerate(problem.observations)
    }
    total_error = sum(1.0 - value for value in saturation.values())
    return WeightSolution(rho=rho, saturation=saturation, total_error=total_error)


# ---------------------------------------------------------------------------
# Exact MILP
# ---------------------------------------------------------------------------

def solve_weights_exact(problem: WeightProblem, config: PalmedConfig) -> WeightSolution:
    """Exact BWP: per-kernel binaries select the saturated resource."""
    model, rho_vars, usage = _build_base_model(problem, "lp2-bwp-exact")

    saturation_vars = {}
    for index, observation in enumerate(problem.observations):
        s_var = model.add_variable(f"S[{index}]", lb=0.0, ub=1.0)
        saturation_vars[index] = s_var
        selectors = []
        for resource in range(problem.num_resources):
            selector = model.add_binary(f"sel[{index},{resource}]")
            selectors.append(selector)
            # When this resource is selected, S_K may not exceed its usage.
            model.add_constraint(s_var - usage[index][resource] + selector <= 1.0)
        model.add_constraint(lin_sum(selectors) >= 1.0)

    objective = lin_sum(saturation_vars.values()) - 1e-4 * lin_sum(rho_vars.values())
    model.maximize(objective)
    solution = model.solve(time_limit=config.milp_time_limit)

    saturation_values = {
        index: float(solution[s_var]) for index, s_var in saturation_vars.items()
    }
    return _extract_solution(problem, solution, rho_vars, saturation_values)


# ---------------------------------------------------------------------------
# Alternating heuristic
# ---------------------------------------------------------------------------

def solve_weights_heuristic(problem: WeightProblem, config: PalmedConfig) -> WeightSolution:
    """Alternating argmax / LP refinement of the BWP.

    Starting from the resource with the largest *potential* usage for every
    kernel, the heuristic solves the LP with the saturation constrained by
    that resource only, then recomputes every kernel's argmax resource from
    the solution and repeats.  The objective is non-decreasing across rounds
    (the previous solution stays feasible when the assignment is unchanged),
    and the loop stops as soon as the assignment is stable.
    """
    num_resources = problem.num_resources

    def potential_usage(observation: KernelObservation, resource: int) -> float:
        total = 0.0
        for instruction, multiplicity in observation.kernel.items():
            if instruction in problem.free_edges:
                if resource in problem.free_edges[instruction]:
                    total += multiplicity
            else:
                total += multiplicity * problem.frozen_rho.get(instruction, {}).get(resource, 0.0)
        return total * observation.ipc / observation.kernel.size

    assignment: List[int] = []
    for observation in problem.observations:
        best = max(range(num_resources), key=lambda r: potential_usage(observation, r))
        assignment.append(best)

    best_result: Optional[WeightSolution] = None
    for _ in range(max(1, config.lp2_heuristic_rounds)):
        model, rho_vars, usage = _build_base_model(problem, "lp2-bwp-heuristic")
        saturation_vars = {}
        for index, observation in enumerate(problem.observations):
            s_var = model.add_variable(f"S[{index}]", lb=0.0, ub=1.0)
            saturation_vars[index] = s_var
            model.add_constraint(s_var - usage[index][assignment[index]] <= 0.0)
        objective = lin_sum(saturation_vars.values()) - 1e-4 * lin_sum(rho_vars.values())
        model.maximize(objective)
        solution = model.solve(time_limit=config.milp_time_limit)

        saturation_values = {}
        rho_values: Dict[Instruction, Dict[int, float]] = {}
        for (instruction, resource), variable in rho_vars.items():
            rho_values.setdefault(instruction, {})[resource] = float(solution[variable])
        new_assignment = []
        for index, observation in enumerate(problem.observations):
            loads = [
                kernel_resource_usage(observation, r, rho_values, problem.frozen_rho)
                for r in range(num_resources)
            ]
            new_assignment.append(int(max(range(num_resources), key=lambda r: loads[r])))
            saturation_values[index] = min(1.0, max(loads))
        result = _extract_solution(problem, solution, rho_vars, saturation_values)
        if best_result is None or result.total_error < best_result.total_error - 1e-9:
            best_result = result
        if new_assignment == assignment:
            break
        assignment = new_assignment

    assert best_result is not None
    return best_result
