"""LP2 / LPAUX — the Bipartite Weight Problem (Algorithm 4 of the paper).

Given a set of measured microkernels and the admissible edges of the
mapping, the BWP finds edge weights ``ρ_{i,r} ∈ [0, 1]`` such that for every
kernel the predicted resource loads are consistent with the measured IPC:

    ρ_{K,r} = (Σ_i σ_{K,i} ρ_{i,r}) · IPC(K) / |K|      (proportion of r used)
    ρ_{K,r} ≤ 1                                          (capacity)
    S_K = max_r ρ_{K,r}                                  (saturation of K)

and the total prediction error ``Σ_K (1 - S_K)`` is minimized: an exactly
predicted kernel has one fully saturated resource.

``S_K = max_r ρ_{K,r}`` cannot be maximized directly in a pure LP, so two
solvers are provided:

* an **exact MILP** that introduces one binary selector per (kernel,
  resource) pair choosing which resource realises the max;
* an **alternating heuristic** that fixes the argmax resource of every
  kernel, solves the resulting LP, recomputes the argmax from the solution
  and repeats until the assignment stabilizes.  This is the default for
  large kernel sets (the role Gurobi's scale plays in the original tool).

The same routine serves LP2 (all basic-instruction weights free) and LPAUX
(core weights frozen, a single instruction free, possibly unbounded above
for low-IPC instructions), which only differ by their inputs.

Sparse incremental construction
-------------------------------
Models are built through :class:`repro.solvers.ModelBuilder` (COO triplets,
no per-expression dict merging) and compiled once per *structure* into a
:class:`repro.solvers.ModelTemplate`: the sparsity pattern of a BWP depends
only on which free instructions appear in which kernels and which edges are
admissible, while every number in it — usage coefficients, frozen-core
constants, capacity bounds, ρ upper bounds — is rebindable data.  The
alternating heuristic therefore re-solves one template across its rounds,
and :class:`WeightModelCache` lets LPAUX's thousands of identically-shaped
per-instruction problems rebind data instead of rebuilding structure (see
``model_builds`` vs ``solves`` in :func:`repro.solvers.solver_stats`).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.isa.instruction import Instruction
from repro.palmed.config import PalmedConfig
from repro.palmed.lp1_shape import KernelObservation
from repro.solvers import ModelBuilder, ModelTemplate
from repro.solvers.stats import record_rebind


@dataclass
class WeightProblem:
    """Inputs of one Bipartite Weight Problem instance."""

    observations: Sequence[KernelObservation]
    num_resources: int
    free_edges: Mapping[Instruction, Set[int]]
    frozen_rho: Mapping[Instruction, Mapping[int, float]]
    rho_upper_bound: Optional[float] = 1.0
    #: When the frozen part of the mapping alone already over-uses a resource
    #: for some kernel (possible because the core is itself an approximation),
    #: a hard capacity constraint would make the problem infeasible.  With
    #: ``soft_capacity`` the capacity bound is relaxed to the frozen usage for
    #: those kernels, which simply forbids the free instruction from adding
    #: load there.  Used by LPAUX.
    soft_capacity: bool = False

    def __post_init__(self) -> None:
        if self.num_resources <= 0:
            raise ValueError("num_resources must be positive")
        overlap = set(self.free_edges) & set(self.frozen_rho)
        if overlap:
            names = ", ".join(sorted(inst.name for inst in overlap))
            raise ValueError(f"instructions both free and frozen: {names}")


@dataclass
class WeightSolution:
    """Solution of a Bipartite Weight Problem."""

    rho: Dict[Instruction, Dict[int, float]]
    saturation: Dict[KernelObservation, float]
    total_error: float

    def saturated_kernels(self, resource: int, problem: WeightProblem,
                          tolerance: float = 0.05) -> List[KernelObservation]:
        """Kernels whose load on ``resource`` reaches (1 - tolerance)."""
        result = []
        for observation in problem.observations:
            load = kernel_resource_usage(observation, resource, self.rho, problem.frozen_rho)
            if load >= 1.0 - tolerance:
                result.append(observation)
        return result


def kernel_resource_usage(
    observation: KernelObservation,
    resource: int,
    free_rho: Mapping[Instruction, Mapping[int, float]],
    frozen_rho: Mapping[Instruction, Mapping[int, float]],
) -> float:
    """Evaluate ``ρ_{K,r}`` for concrete edge weights."""
    total = 0.0
    for instruction, multiplicity in observation.kernel.items():
        weights = free_rho.get(instruction) or frozen_rho.get(instruction) or {}
        total += multiplicity * weights.get(resource, 0.0)
    return total * observation.ipc / observation.kernel.size


def solve_weights(
    problem: WeightProblem,
    config: PalmedConfig,
    cache: Optional["WeightModelCache"] = None,
) -> WeightSolution:
    """Solve the BWP with the solver selected by the configuration."""
    mode = config.lp2_mode
    if mode == "auto":
        mode = (
            "exact"
            if len(problem.observations) <= config.lp2_exact_max_kernels
            else "heuristic"
        )
    if mode == "exact":
        return solve_weights_exact(problem, config, cache)
    return solve_weights_heuristic(problem, config, cache)


# ---------------------------------------------------------------------------
# Structure templates
# ---------------------------------------------------------------------------

#: Tie-break weight pulling ρ towards sparse mappings (secondary objective).
_RHO_PENALTY = 1e-4


def _free_order(problem: WeightProblem) -> List[Instruction]:
    return sorted(problem.free_edges, key=lambda inst: inst.name)


def _structure_signature(problem: WeightProblem, mode: str) -> tuple:
    """Hashable key of everything that shapes the model (not its numbers).

    Two problems with equal signatures compile to the same sparsity
    pattern, variable kinds and row layout; all remaining differences
    (usage coefficients, frozen constants, capacity and ρ bounds) are
    rebindable data.
    """
    free = _free_order(problem)
    edges = tuple(tuple(sorted(problem.free_edges[inst])) for inst in free)
    present = tuple(
        tuple(fi for fi, inst in enumerate(free) if inst in observation.kernel)
        for observation in problem.observations
    )
    return (mode, problem.num_resources, edges, present)


@dataclass
class _BoundData:
    """Per-observation numbers computed while binding a problem."""

    #: ``fi -> multiplicity * ipc / |K|`` for free instructions present.
    coefficients: List[Dict[int, float]]
    #: Frozen-core contribution to ``ρ_{K,r}`` per (observation, resource).
    constants: List[List[float]]


class _BwpTemplate:
    """Compiled BWP structure for one :func:`_structure_signature` family.

    Holds the :class:`ModelTemplate` plus the handle maps needed to rebind
    a concrete :class:`WeightProblem` (and, in heuristic mode, a concrete
    argmax assignment) into it.
    """

    def __init__(
        self,
        mode: str,
        num_resources: int,
        edges: Tuple[Tuple[int, ...], ...],
        present: Tuple[Tuple[int, ...], ...],
        warm_start: bool = False,
    ) -> None:
        self.mode = mode
        self.num_resources = num_resources
        self.edges = edges
        self.present = present
        num_obs = len(present)

        builder = ModelBuilder(f"lp2-bwp-{mode}")
        self.rho_cols: Dict[Tuple[int, int], int] = {}
        for fi, resources in enumerate(edges):
            for resource in resources:
                self.rho_cols[(fi, resource)] = builder.add_variable(0.0, math.inf)
        self.s_cols: List[int] = []
        self.sel_cols: Dict[Tuple[int, int], int] = {}
        for k in range(num_obs):
            self.s_cols.append(builder.add_variable(0.0, 1.0))
            if mode == "exact":
                for resource in range(num_resources):
                    self.sel_cols[(k, resource)] = builder.add_binary()

        # Capacity rows: usage(k, r) <= bound, one per (observation, resource).
        self.cap_rows: Dict[Tuple[int, int], int] = {}
        self.cap_entries: Dict[Tuple[int, int, int], int] = {}
        for k in range(num_obs):
            for resource in range(num_resources):
                row = builder.add_row(-math.inf, 1.0)
                self.cap_rows[(k, resource)] = row
                for fi in present[k]:
                    if resource in edges[fi]:
                        self.cap_entries[(k, resource, fi)] = builder.add_entry(
                            row, self.rho_cols[(fi, resource)], 0.0
                        )

        self.sdef_rows: Dict[Tuple[int, int], int] = {}
        self.sdef_entries: Dict[Tuple[int, int, int], int] = {}
        self.s_rows: List[int] = []
        self.s_entries: Dict[Tuple[int, int, int], int] = {}
        if mode == "exact":
            # S_K <= usage(k, r) + (1 - sel(k, r)): when resource r is
            # selected, the saturation may not exceed its usage.
            for k in range(num_obs):
                for resource in range(num_resources):
                    row = builder.add_row(-math.inf, 1.0)
                    self.sdef_rows[(k, resource)] = row
                    builder.add_entry(row, self.s_cols[k], 1.0)
                    builder.add_entry(row, self.sel_cols[(k, resource)], 1.0)
                    for fi in present[k]:
                        if resource in edges[fi]:
                            self.sdef_entries[(k, resource, fi)] = builder.add_entry(
                                row, self.rho_cols[(fi, resource)], 0.0
                            )
                builder.add_row_entries(
                    [self.sel_cols[(k, r)] for r in range(num_resources)],
                    [1.0] * num_resources,
                    lo=1.0,
                )
        else:
            # S_K <= usage(k, assignment[k]); the pattern covers every
            # resource an assignment could pick, the per-round bind zeroes
            # the entries of the non-assigned resources.
            for k in range(num_obs):
                row = builder.add_row(-math.inf, 0.0)
                self.s_rows.append(row)
                builder.add_entry(row, self.s_cols[k], 1.0)
                for fi in present[k]:
                    for resource in edges[fi]:
                        self.s_entries[(k, fi, resource)] = builder.add_entry(
                            row, self.rho_cols[(fi, resource)], 0.0
                        )

        objective = {col: -_RHO_PENALTY for col in self.rho_cols.values()}
        for s_col in self.s_cols:
            objective[s_col] = 1.0
        builder.set_objective(objective, maximize=True)
        self.template: ModelTemplate = builder.build(warm_start=warm_start)

    # -- binding -------------------------------------------------------------
    def bind(self, problem: WeightProblem) -> _BoundData:
        """Write a problem's data into the template (full rebind)."""
        started = time.monotonic()
        template = self.template
        upper = (
            math.inf if problem.rho_upper_bound is None else problem.rho_upper_bound
        )
        for col in self.rho_cols.values():
            template.set_variable_bounds(col, 0.0, upper)

        free = _free_order(problem)
        free_index = {inst: fi for fi, inst in enumerate(free)}
        num_resources = self.num_resources
        coefficients: List[Dict[int, float]] = []
        constants: List[List[float]] = []
        for k, observation in enumerate(problem.observations):
            scale = observation.ipc / observation.kernel.size
            coeff: Dict[int, float] = {}
            const = [0.0] * num_resources
            for instruction, multiplicity in observation.kernel.items():
                coefficient = multiplicity * scale
                fi = free_index.get(instruction)
                if fi is not None:
                    coeff[fi] = coefficient
                else:
                    frozen = problem.frozen_rho.get(instruction, {})
                    for resource, weight in frozen.items():
                        if resource < num_resources:
                            const[resource] += coefficient * weight
            coefficients.append(coeff)
            constants.append(const)

            for resource in range(num_resources):
                bound = 1.0
                if problem.soft_capacity and const[resource] > 1.0:
                    bound = const[resource]
                template.set_row_bounds(
                    self.cap_rows[(k, resource)], -math.inf, bound - const[resource]
                )
                for fi in self.present[k]:
                    if resource in self.edges[fi]:
                        template.set_entry(
                            self.cap_entries[(k, resource, fi)], coeff[fi]
                        )
                if self.mode == "exact":
                    template.set_row_bounds(
                        self.sdef_rows[(k, resource)], -math.inf, 1.0 + const[resource]
                    )
                    for fi in self.present[k]:
                        if resource in self.edges[fi]:
                            template.set_entry(
                                self.sdef_entries[(k, resource, fi)], -coeff[fi]
                            )
        record_rebind(time.monotonic() - started)
        return _BoundData(coefficients=coefficients, constants=constants)

    def bind_assignment(
        self, data: _BoundData, assignment: Sequence[int]
    ) -> None:
        """Heuristic mode: point every S row at its assigned resource."""
        started = time.monotonic()
        template = self.template
        for k, assigned in enumerate(assignment):
            template.set_row_bounds(
                self.s_rows[k], -math.inf, data.constants[k][assigned]
            )
            for fi in self.present[k]:
                coefficient = data.coefficients[k][fi]
                for resource in self.edges[fi]:
                    template.set_entry(
                        self.s_entries[(k, fi, resource)],
                        -coefficient if resource == assigned else 0.0,
                    )
        record_rebind(time.monotonic() - started)

    # -- extraction ----------------------------------------------------------
    def extract_rho(
        self, problem: WeightProblem, x, clamp: bool = True
    ) -> Dict[Instruction, Dict[int, float]]:
        rho: Dict[Instruction, Dict[int, float]] = {}
        for fi, instruction in enumerate(_free_order(problem)):
            weights: Dict[int, float] = {}
            for resource in self.edges[fi]:
                value = float(x[self.rho_cols[(fi, resource)]])
                if clamp and value < 0:
                    value = 0.0
                weights[resource] = value
            rho[instruction] = weights
        return rho


class WeightModelCache:
    """Reusable BWP templates keyed by problem structure.

    LPAUX solves one constant-shape problem per instruction; within one
    cache, problems sharing a :func:`_structure_signature` rebind data into
    the same compiled :class:`ModelTemplate` instead of rebuilding it.
    The cache is cheap enough to keep per worker lane — the batched
    complete-mapping phase keeps one per lane across all of that lane's
    chunks.  With ``warm_start=True`` every template it compiles also
    memoizes solved incumbents (see :class:`repro.solvers.ModelTemplate`),
    so instructions in the same behavioral equivalence class — whose bound
    problems are byte-identical — collapse to a single backend solve.
    """

    def __init__(self, warm_start: bool = False) -> None:
        self.warm_start = warm_start
        self._templates: Dict[tuple, _BwpTemplate] = {}

    def template_for(self, problem: WeightProblem, mode: str) -> _BwpTemplate:
        signature = _structure_signature(problem, mode)
        template = self._templates.get(signature)
        if template is None:
            mode_, num_resources, edges, present = signature
            template = _BwpTemplate(
                mode_, num_resources, edges, present, warm_start=self.warm_start
            )
            self._templates[signature] = template
        return template

    @property
    def num_templates(self) -> int:
        return len(self._templates)

    @property
    def num_solves(self) -> int:
        return sum(t.template.solve_count for t in self._templates.values())

    @property
    def num_warm_hits(self) -> int:
        return sum(t.template.warm_start_hits for t in self._templates.values())


def _template_for(
    problem: WeightProblem,
    mode: str,
    cache: Optional[WeightModelCache],
    warm_start: bool = False,
) -> _BwpTemplate:
    if cache is not None:
        return cache.template_for(problem, mode)
    mode_, num_resources, edges, present = _structure_signature(problem, mode)
    return _BwpTemplate(mode_, num_resources, edges, present, warm_start=warm_start)


def _finalize(
    problem: WeightProblem,
    rho: Dict[Instruction, Dict[int, float]],
    saturation_values: Mapping[int, float],
) -> WeightSolution:
    saturation = {
        observation: saturation_values[index]
        for index, observation in enumerate(problem.observations)
    }
    total_error = sum(1.0 - value for value in saturation.values())
    return WeightSolution(rho=rho, saturation=saturation, total_error=total_error)


# ---------------------------------------------------------------------------
# Exact MILP
# ---------------------------------------------------------------------------

def solve_weights_exact(
    problem: WeightProblem,
    config: PalmedConfig,
    cache: Optional[WeightModelCache] = None,
) -> WeightSolution:
    """Exact BWP: per-kernel binaries select the saturated resource."""
    bwp = _template_for(
        problem, "exact", cache, warm_start=getattr(config, "lp_warm_start", False)
    )
    bwp.bind(problem)
    solution = bwp.template.solve(time_limit=config.milp_time_limit)

    saturation_values = {
        k: float(solution.x[s_col]) for k, s_col in enumerate(bwp.s_cols)
    }
    rho = bwp.extract_rho(problem, solution.x)
    return _finalize(problem, rho, saturation_values)


# ---------------------------------------------------------------------------
# Alternating heuristic
# ---------------------------------------------------------------------------

def solve_weights_heuristic(
    problem: WeightProblem,
    config: PalmedConfig,
    cache: Optional[WeightModelCache] = None,
) -> WeightSolution:
    """Alternating argmax / LP refinement of the BWP.

    Starting from the resource with the largest *potential* usage for every
    kernel, the heuristic solves the LP with the saturation constrained by
    that resource only, then recomputes every kernel's argmax resource from
    the solution and repeats.  The objective is non-decreasing across rounds
    (the previous solution stays feasible when the assignment is unchanged),
    and the loop stops as soon as the assignment is stable.  Every round
    re-solves the *same* compiled template with the S rows re-pointed at the
    new assignment — structure is built once per problem family.
    """
    num_resources = problem.num_resources

    def potential_usage(observation: KernelObservation, resource: int) -> float:
        total = 0.0
        for instruction, multiplicity in observation.kernel.items():
            if instruction in problem.free_edges:
                if resource in problem.free_edges[instruction]:
                    total += multiplicity
            else:
                total += multiplicity * problem.frozen_rho.get(instruction, {}).get(resource, 0.0)
        return total * observation.ipc / observation.kernel.size

    assignment: List[int] = []
    for observation in problem.observations:
        best = max(range(num_resources), key=lambda r: potential_usage(observation, r))
        assignment.append(best)

    bwp = _template_for(
        problem, "heuristic", cache, warm_start=getattr(config, "lp_warm_start", False)
    )
    data = bwp.bind(problem)

    best_result: Optional[WeightSolution] = None
    for _ in range(max(1, config.lp2_heuristic_rounds)):
        bwp.bind_assignment(data, assignment)
        solution = bwp.template.solve(time_limit=config.milp_time_limit)

        rho_values = bwp.extract_rho(problem, solution.x, clamp=False)
        saturation_values: Dict[int, float] = {}
        new_assignment = []
        for index, observation in enumerate(problem.observations):
            loads = [
                kernel_resource_usage(observation, r, rho_values, problem.frozen_rho)
                for r in range(num_resources)
            ]
            new_assignment.append(int(max(range(num_resources), key=lambda r: loads[r])))
            saturation_values[index] = min(1.0, max(loads))
        # The argmax above uses the raw LP values; the reported weights clamp
        # solver noise below zero (same split as the exact path).
        clamped = {
            instruction: {
                resource: (0.0 if value < 0 else value)
                for resource, value in weights.items()
            }
            for instruction, weights in rho_values.items()
        }
        result = _finalize(problem, clamped, saturation_values)
        if best_result is None or result.total_error < best_result.total_error - 1e-9:
            best_result = result
        if new_assignment == assignment:
            break
        assignment = new_assignment

    assert best_result is not None
    return best_result
