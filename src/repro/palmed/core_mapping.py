"""Core mapping and saturating kernels (Algorithm 2 of the paper).

The core mapping assigns abstract resources to the basic instructions only.
It alternates the LP1 shape problem with a benchmark-enrichment step (every
discovered resource contributes one kernel combining all its users at their
standalone IPC), then solves the LP2 weight problem once on the enriched
benchmark set.  Finally, for every resource a *saturating kernel* is chosen:
a measured kernel that loads the resource at full capacity while consuming
as little of everything else as possible.  Saturating kernels are the lever
the complete-mapping phase (LPAUX) uses to expose the resource usage of all
remaining instructions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.instruction import Instruction
from repro.mapping.conjunctive import ConjunctiveResourceMapping
from repro.mapping.microkernel import Microkernel
from repro.palmed.basic_selection import BasicSelectionResult
from repro.palmed.benchmarks import BenchmarkRunner, mixes_vector_extensions
from repro.palmed.config import PalmedConfig
from repro.palmed.lp1_shape import KernelObservation, ShapeMapping, solve_shape
from repro.palmed.lp2_weights import (
    WeightProblem,
    WeightSolution,
    kernel_resource_usage,
    solve_weights,
)
from repro.solvers import SolveStats, record_stats, use_stats


def resource_label(index: int) -> str:
    """Canonical name of the ``index``-th inferred abstract resource."""
    return f"R{index}"


@dataclass
class CoreMappingResult:
    """Outcome of Algorithm 2."""

    shape: ShapeMapping
    weights: WeightSolution
    observations: List[KernelObservation]
    saturating_kernels: Dict[int, Microkernel]
    lp1_iterations: int
    lp_time: float = 0.0
    #: Solver-layer accounting of the LP1/LP2 solves of this stage.
    solver_stats: SolveStats = field(default_factory=SolveStats)
    _mapping: Optional[ConjunctiveResourceMapping] = field(default=None, repr=False)

    @property
    def num_resources(self) -> int:
        return self.shape.num_resources

    @property
    def basic_rho(self) -> Dict[Instruction, Dict[int, float]]:
        """Inferred normalized usage of every basic instruction."""
        return {inst: dict(weights) for inst, weights in self.weights.rho.items()}

    def mapping(self, edge_threshold: float = 1e-3) -> ConjunctiveResourceMapping:
        """The core conjunctive mapping (basic instructions only)."""
        if self._mapping is not None:
            return self._mapping
        resources = {resource_label(r): 1.0 for r in range(self.num_resources)}
        usage = {
            instruction: {
                resource_label(r): value
                for r, value in weights.items()
                if value >= edge_threshold
            }
            for instruction, weights in self.weights.rho.items()
        }
        self._mapping = ConjunctiveResourceMapping(resources, usage)
        return self._mapping


def _seed_observations(
    runner: BenchmarkRunner, selection: BasicSelectionResult
) -> List[KernelObservation]:
    """The seed benchmark set of Algorithm 2: ``{a, a^a b^b, a^M b}``."""
    kernels: List[Microkernel] = []
    seen = set()

    def add(kernel: Microkernel) -> None:
        if kernel in seen:
            return
        seen.add(kernel)
        kernels.append(kernel)

    basic = selection.basic
    # The singles are already warm: compute_core_mapping (the only caller)
    # batch-prefetches them before building pair kernels, which consume
    # their IPC.
    for instruction in basic:
        add(Microkernel.single(instruction))
    for i, a in enumerate(basic):
        for b in basic[i + 1 :]:
            if runner.config.separate_extensions and mixes_vector_extensions(a, b):
                continue
            add(runner.pair_kernel(a, b))
            add(runner.repeated_pair_kernel(a, b))
            add(runner.repeated_pair_kernel(b, a))
    ipcs = runner.ipc_batch(kernels)
    return [
        KernelObservation(kernel=kernel, ipc=ipc) for kernel, ipc in zip(kernels, ipcs)
    ]


def _enrichment_kernels(
    runner: BenchmarkRunner,
    shape: ShapeMapping,
    single_ipc: Dict[Instruction, float],
) -> List[Microkernel]:
    """One kernel per discovered resource, combining all its users at their IPC."""
    kernels: List[Microkernel] = []
    for resource in range(shape.num_resources):
        users = shape.users_of(resource)
        if len(users) < 2:
            continue
        counts = {inst: max(single_ipc[inst], runner.config.min_ipc) for inst in users}
        kernels.append(Microkernel(counts))
    return kernels


def _consumption(
    observation: KernelObservation, rho: Dict[Instruction, Dict[int, float]]
) -> float:
    """Total resource consumption ``cons(K)`` of a kernel under the mapping."""
    total = 0.0
    for instruction, multiplicity in observation.kernel.items():
        total += multiplicity * sum(rho.get(instruction, {}).values())
    return total


def _select_saturating_kernels(
    result_rho: Dict[Instruction, Dict[int, float]],
    observations: List[KernelObservation],
    shape: ShapeMapping,
    single_ipc: Dict[Instruction, float],
    runner: BenchmarkRunner,
    epsilon: float,
) -> Dict[int, Microkernel]:
    """Pick, for every resource, the cheapest kernel that saturates it.

    If no measured kernel saturates a resource (possible when the LP settled
    for sub-saturation), a synthetic one is built from the resource's users
    weighted by the inverse of their usage, which saturates it by
    construction of the inferred mapping.
    """
    saturating: Dict[int, Microkernel] = {}
    for resource in range(shape.num_resources):
        candidates = []
        for observation in observations:
            usage = kernel_resource_usage(observation, resource, result_rho, {})
            if usage >= 1.0 - epsilon:
                candidates.append((_consumption(observation, result_rho), observation))
        if candidates:
            candidates.sort(key=lambda item: (item[0], item[1].kernel.notation()))
            saturating[resource] = candidates[0][1].kernel
            continue
        users = shape.users_of(resource)
        counts = {}
        for instruction in users:
            weight = result_rho.get(instruction, {}).get(resource, 0.0)
            if weight > 0:
                counts[instruction] = max(single_ipc[instruction], runner.config.min_ipc)
        if not counts and users:
            counts = {users[0]: max(single_ipc[users[0]], runner.config.min_ipc)}
        if counts:
            saturating[resource] = Microkernel(counts)
    return saturating


def compute_core_mapping(
    runner: BenchmarkRunner,
    selection: BasicSelectionResult,
    config: PalmedConfig,
) -> CoreMappingResult:
    """Run Algorithm 2: iterated LP1, LP2, saturating-kernel selection."""
    runner.prefetch(Microkernel.single(inst) for inst in selection.basic)
    single_ipc = {inst: runner.ipc_single(inst) for inst in selection.basic}
    observations = _seed_observations(runner, selection)
    known_kernels = {obs.kernel for obs in observations}

    lp_time = 0.0
    stats = SolveStats()
    shape: Optional[ShapeMapping] = None
    iterations = 0
    for iterations in range(1, config.lp1_max_iterations + 1):
        start = time.monotonic()
        with use_stats(stats):
            shape = solve_shape(observations, selection, single_ipc, config)
        lp_time += time.monotonic() - start
        new_kernels = [
            kernel
            for kernel in _enrichment_kernels(runner, shape, single_ipc)
            if kernel not in known_kernels
        ]
        if not new_kernels:
            break
        new_ipcs = runner.ipc_batch(new_kernels)
        for kernel, ipc in zip(new_kernels, new_ipcs):
            known_kernels.add(kernel)
            observations.append(KernelObservation(kernel=kernel, ipc=ipc))
    assert shape is not None

    problem = WeightProblem(
        observations=observations,
        num_resources=shape.num_resources,
        free_edges=shape.edges,
        frozen_rho={},
        rho_upper_bound=1.0,
    )
    start = time.monotonic()
    with use_stats(stats):
        weights = solve_weights(problem, config)
    lp_time += time.monotonic() - start
    # Re-inject the locally-attributed records so process-global solver
    # statistics stay complete.
    record_stats(stats)

    saturating = _select_saturating_kernels(
        weights.rho, observations, shape, single_ipc, runner, config.epsilon
    )
    return CoreMappingResult(
        shape=shape,
        weights=weights,
        observations=observations,
        saturating_kernels=saturating,
        lp1_iterations=iterations,
        lp_time=lp_time,
        solver_stats=stats,
    )
