"""Quadratic (pairwise) benchmarking.

The first stage of PALMED measures, for every pair of candidate instructions
``(a, b)``, the IPC of the kernel ``a^IPC(a) b^IPC(b)``.  The resulting
matrix drives the equivalence-class clustering, the disjointness relation and
the greediness pre-order of Algorithm 1.  The number of measurements is
quadratic in the number of candidates — the paper's motivation for trimming
the instruction set to a small basic set before solving any LP.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.instruction import Instruction
from repro.mapping.microkernel import Microkernel
from repro.palmed.benchmarks import BenchmarkRunner, mixes_vector_extensions


class QuadraticBenchmarks:
    """Pairwise benchmark measurements over a set of candidate instructions.

    Parameters
    ----------
    runner:
        The measurement front-end.
    instructions:
        Candidate instructions (already filtered to benchmarkable ones).
    """

    def __init__(self, runner: BenchmarkRunner, instructions: Sequence[Instruction]) -> None:
        self.runner = runner
        self.instructions: Tuple[Instruction, ...] = tuple(
            sorted(set(instructions), key=lambda inst: inst.name)
        )
        self._single_ipc: Dict[Instruction, float] = {}
        self._pair_ipc: Dict[Tuple[Instruction, Instruction], float] = {}
        self._unmeasurable: set = set()
        self._measure()

    @classmethod
    def from_measurements(
        cls,
        instructions: Sequence[Instruction],
        single_ipc: Dict[Instruction, float],
        pair_ipc: Dict[Tuple[Instruction, Instruction], float],
        unmeasurable: Sequence[Tuple[Instruction, Instruction]] = (),
        runner: Optional[BenchmarkRunner] = None,
    ) -> "QuadraticBenchmarks":
        """Rebuild the measurement table from already-known values.

        Used by the stage-graph checkpoints (:mod:`repro.pipeline`) to
        restore the quadratic-benchmarking stage without re-measuring: the
        accessors then serve exactly the persisted values, so everything
        downstream (clustering, disjointness, greediness) is bitwise
        identical to the run that produced them.  ``runner`` is only needed
        when the restored instance must still build kernels
        (:meth:`pair_kernel`); it is not consulted for any IPC.
        """
        restored = cls.__new__(cls)
        restored.runner = runner
        restored.instructions = tuple(
            sorted(set(instructions), key=lambda inst: inst.name)
        )
        restored._single_ipc = dict(single_ipc)
        restored._pair_ipc = dict(pair_ipc)
        restored._unmeasurable = set(unmeasurable)
        return restored

    def _measure(self) -> None:
        """Measure all singles, then all pairs, as two batched sweeps.

        Batching lets the measurement layer deduplicate, serve cached
        kernels and fan the rest out over worker processes; the measured
        values are identical to the historical one-at-a-time loop.
        """
        config = self.runner.config
        singles = self.runner.ipc_batch(
            [Microkernel.single(instruction) for instruction in self.instructions]
        )
        for instruction, value in zip(self.instructions, singles):
            self._single_ipc[instruction] = value

        measurable_pairs: List[Tuple[Instruction, Instruction]] = []
        for i, a in enumerate(self.instructions):
            for b in self.instructions[i + 1 :]:
                if config.separate_extensions and mixes_vector_extensions(a, b):
                    # Forbidden benchmark (SSE+AVX mix): the pair cannot be
                    # measured.  The signature falls back to the additive
                    # value for clustering purposes, but the pair is recorded
                    # as unmeasurable so that no conclusion (in particular
                    # not disjointness) is drawn from it.
                    value = self._single_ipc[a] + self._single_ipc[b]
                    self._unmeasurable.add((a, b))
                    self._unmeasurable.add((b, a))
                    self._pair_ipc[(a, b)] = value
                    self._pair_ipc[(b, a)] = value
                else:
                    measurable_pairs.append((a, b))

        pair_values = self.runner.ipc_batch(
            [self.runner.pair_kernel(a, b) for a, b in measurable_pairs]
        )
        for (a, b), value in zip(measurable_pairs, pair_values):
            self._pair_ipc[(a, b)] = value
            self._pair_ipc[(b, a)] = value

    # -- accessors -------------------------------------------------------------
    def single_ipc(self, instruction: Instruction) -> float:
        """Standalone IPC of an instruction."""
        return self._single_ipc[instruction]

    def pair_ipc(self, a: Instruction, b: Instruction) -> float:
        """IPC of the quadratic benchmark ``aabb`` (symmetric in a and b)."""
        if a == b:
            return self._single_ipc[a]
        return self._pair_ipc[(a, b)]

    def is_measurable(self, a: Instruction, b: Instruction) -> bool:
        """Whether the pair benchmark could actually be generated and run."""
        return (a, b) not in self._unmeasurable

    def are_disjoint(self, a: Instruction, b: Instruction, epsilon: float) -> bool:
        """Disjointness test of Algorithm 1: ``aabb == IPC(a) + IPC(b)``.

        Unmeasurable pairs (mixed vector extensions) are conservatively
        reported as non-disjoint: disjointness can only be concluded from an
        actual measurement.
        """
        if a == b or not self.is_measurable(a, b):
            return False
        expected = self._single_ipc[a] + self._single_ipc[b]
        return abs(self.pair_ipc(a, b) - expected) <= epsilon * expected

    def behaviour_vector(self, instruction: Instruction) -> np.ndarray:
        """The clustering feature vector of an instruction.

        Concatenates the standalone IPC with the pairwise IPC against every
        candidate (the ``∀p, aapp`` signature of the equivalence-class test).
        """
        values = [self._single_ipc[instruction]]
        values.extend(
            self.pair_ipc(instruction, other) for other in self.instructions
        )
        return np.asarray(values, dtype=float)

    def greediness_score(self, instruction: Instruction) -> float:
        """Total pairwise IPC — *larger* means the instruction is greedier.

        Following the paper's pre-order (``a`` is more greedy than ``b`` when
        ``∀p, aapp ≥ bbpp``): a greedy instruction keeps the combined IPC
        high against every partner because it can fall back to many
        alternative ports — it is a port hog that uses wide combined
        resources.  Summing the pairwise IPCs gives a total order compatible
        with that pre-order; the selection keeps the highest scores.
        """
        return float(
            sum(self.pair_ipc(instruction, other) for other in self.instructions
                if other != instruction)
        )

    def pair_kernel(self, a: Instruction, b: Instruction) -> Microkernel:
        """The kernel whose measurement is reported by :meth:`pair_ipc`."""
        return self.runner.pair_kernel(a, b)

    @property
    def num_pairs(self) -> int:
        """Number of distinct measured pairs."""
        return len(self._pair_ipc) // 2

    def as_matrix(self) -> Tuple[List[Instruction], np.ndarray]:
        """Dense pairwise-IPC matrix (diagonal = standalone IPC)."""
        order = list(self.instructions)
        size = len(order)
        matrix = np.zeros((size, size))
        for i, a in enumerate(order):
            for j, b in enumerate(order):
                matrix[i, j] = self.pair_ipc(a, b)
        return order, matrix
