"""Complete mapping — LPAUX (Algorithm 5 of the paper).

Once the core mapping is known, every remaining instruction is mapped
independently: the instruction is mixed with the saturating kernel of each
resource (scaled by ``L`` so the resource stays the bottleneck), the
resulting benchmarks are measured, and a small weight problem with the core
edges *frozen* recovers the instruction's usage of every resource.  Because
each instruction is handled by its own constant-size problem, this phase
scales linearly with the ISA — the key to mapping thousands of instructions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.isa.instruction import Instruction
from repro.mapping.microkernel import Microkernel
from repro.palmed.benchmarks import BenchmarkRunner, mixes_vector_extensions
from repro.palmed.config import PalmedConfig
from repro.palmed.core_mapping import CoreMappingResult
from repro.palmed.lp1_shape import KernelObservation
from repro.palmed.lp2_weights import (
    WeightProblem,
    solve_weights_exact,
    solve_weights_heuristic,
)
from repro.solvers import SolverError


def _kernel_mixes_extensions(instruction: Instruction, kernel: Microkernel) -> bool:
    return any(mixes_vector_extensions(instruction, other) for other in kernel.instructions)


def map_single_instruction(
    runner: BenchmarkRunner,
    instruction: Instruction,
    core: CoreMappingResult,
    config: PalmedConfig,
) -> Dict[int, float]:
    """Infer the resource usage of one instruction against the frozen core."""
    observations: List[KernelObservation] = []
    if config.include_singleton_in_lpaux:
        kernel = Microkernel.single(instruction)
        observations.append(KernelObservation(kernel=kernel, ipc=runner.ipc(kernel)))
    for resource in sorted(core.saturating_kernels):
        saturating = core.saturating_kernels[resource]
        if config.separate_extensions and _kernel_mixes_extensions(instruction, saturating):
            # The benchmark cannot be generated (mixed vector extensions);
            # the resource usage of this instruction is then inferred from
            # the remaining benchmarks only, as on real hardware.
            continue
        kernel = runner.saturating_benchmark(instruction, saturating)
        observations.append(KernelObservation(kernel=kernel, ipc=runner.ipc(kernel)))
    if not observations:
        kernel = Microkernel.single(instruction)
        observations.append(KernelObservation(kernel=kernel, ipc=runner.ipc(kernel)))

    problem = WeightProblem(
        observations=observations,
        num_resources=core.num_resources,
        free_edges={instruction: set(range(core.num_resources))},
        frozen_rho=core.basic_rho,
        rho_upper_bound=None,
        soft_capacity=True,
    )
    if config.lpaux_mode == "exact":
        solution = solve_weights_exact(problem, config)
    else:
        solution = solve_weights_heuristic(problem, config)
    rho = solution.rho.get(instruction, {})
    return {
        resource: value
        for resource, value in rho.items()
        if value >= config.edge_threshold
    }


def _prefetch_lpaux_benchmarks(
    runner: BenchmarkRunner,
    instructions: List[Instruction],
    core: CoreMappingResult,
    config: PalmedConfig,
) -> None:
    """Batch-measure every LPAUX benchmark before the per-instruction LPs.

    The LPAUX phase needs ``|instructions| × |resources|`` saturating
    benchmarks plus the singletons; issuing them as one batch lets the
    measurement layer parallelize and consult the persistent cache, while
    :func:`map_single_instruction` then reads everything from the runner's
    memo.  The measured set (and every value) is exactly what the
    one-at-a-time path would have produced.
    """
    runner.prefetch(Microkernel.single(instruction) for instruction in instructions)
    kernels: List[Microkernel] = []
    for instruction in instructions:
        for resource in sorted(core.saturating_kernels):
            saturating = core.saturating_kernels[resource]
            if config.separate_extensions and _kernel_mixes_extensions(
                instruction, saturating
            ):
                continue
            kernels.append(runner.saturating_benchmark(instruction, saturating))
    runner.prefetch(kernels)


def complete_mapping(
    runner: BenchmarkRunner,
    instructions: Iterable[Instruction],
    core: CoreMappingResult,
    config: PalmedConfig,
    on_error: str = "skip",
) -> Dict[Instruction, Dict[int, float]]:
    """Run LPAUX for every instruction not already in the core mapping.

    Parameters
    ----------
    on_error:
        ``"skip"`` drops instructions whose weight problem fails (mirroring
        the paper's "instructions mapped" < "instructions supported" gap);
        ``"raise"`` propagates the solver error.
    """
    core_instructions = set(core.basic_rho)
    remaining = [
        instruction
        for instruction in sorted(set(instructions), key=lambda inst: inst.name)
        if instruction not in core_instructions
    ]
    _prefetch_lpaux_benchmarks(runner, remaining, core, config)
    mapped: Dict[Instruction, Dict[int, float]] = {}
    for instruction in remaining:
        try:
            mapped[instruction] = map_single_instruction(runner, instruction, core, config)
        except SolverError:
            if on_error == "raise":
                raise
    return mapped
