"""Complete mapping — LPAUX (Algorithm 5 of the paper).

Once the core mapping is known, every remaining instruction is mapped
independently: the instruction is mixed with the saturating kernel of each
resource (scaled by ``L`` so the resource stays the bottleneck), the
resulting benchmarks are measured, and a small weight problem with the core
edges *frozen* recovers the instruction's usage of every resource.  Because
each instruction is handled by its own constant-size problem, this phase
scales linearly with the ISA — the key to mapping thousands of instructions.

Execution model
---------------
The phase splits into a *measurement* half and a *solving* half, and both
are batched:

* every saturating benchmark and singleton is prefetched in one batch
  through the measurement layer (parallel dispatch + persistent cache,
  per ``PalmedConfig.parallelism`` / ``cache_path``);
* the per-instruction weight problems — independent and identically
  shaped — are fanned out over the shared
  :class:`repro.runtime.ParallelRuntime` per ``PalmedConfig.lp_parallelism``,
  each worker rebinding one compiled
  :class:`~repro.palmed.lp2_weights.WeightModelCache` template per problem
  shape instead of rebuilding LP structure per instruction.

Both halves are bitwise-deterministic: the inferred usages are identical
for every worker count and chunking (see ``tests/test_lp_parallel.py``),
and :class:`CompleteMappingOutcome` reports the measurement/solve wall
clocks separately so the pipeline can keep the paper's Table II
benchmarking-vs-LP-time split faithful.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.isa.instruction import Instruction
from repro.mapping.microkernel import Microkernel
from repro.palmed.benchmarks import BenchmarkRunner, mixes_vector_extensions
from repro.palmed.config import PalmedConfig
from repro.palmed.core_mapping import CoreMappingResult
from repro.palmed.lp1_shape import KernelObservation
from repro.palmed.lp2_weights import (
    WeightModelCache,
    WeightProblem,
    solve_weights_exact,
    solve_weights_heuristic,
)
from repro.runtime import ParallelRuntime
from repro.solvers import SolverError, SolveStats, record_stats, use_stats


def _kernel_mixes_extensions(instruction: Instruction, kernel: Microkernel) -> bool:
    return any(mixes_vector_extensions(instruction, other) for other in kernel.instructions)


def _gather_observations(
    runner: BenchmarkRunner,
    instruction: Instruction,
    core: CoreMappingResult,
    config: PalmedConfig,
) -> List[KernelObservation]:
    """The measured kernels feeding one instruction's weight problem."""
    observations: List[KernelObservation] = []
    if config.include_singleton_in_lpaux:
        kernel = Microkernel.single(instruction)
        observations.append(KernelObservation(kernel=kernel, ipc=runner.ipc(kernel)))
    for resource in sorted(core.saturating_kernels):
        saturating = core.saturating_kernels[resource]
        if config.separate_extensions and _kernel_mixes_extensions(instruction, saturating):
            # The benchmark cannot be generated (mixed vector extensions);
            # the resource usage of this instruction is then inferred from
            # the remaining benchmarks only, as on real hardware.
            continue
        kernel = runner.saturating_benchmark(instruction, saturating)
        observations.append(KernelObservation(kernel=kernel, ipc=runner.ipc(kernel)))
    if not observations:
        kernel = Microkernel.single(instruction)
        observations.append(KernelObservation(kernel=kernel, ipc=runner.ipc(kernel)))
    return observations


def _solve_instruction(
    instruction: Instruction,
    observations: Sequence[KernelObservation],
    num_resources: int,
    frozen_rho: Dict[Instruction, Dict[int, float]],
    config: PalmedConfig,
    cache: Optional[WeightModelCache],
) -> Dict[int, float]:
    """Solve one frozen-core weight problem and threshold the edges."""
    problem = WeightProblem(
        observations=observations,
        num_resources=num_resources,
        free_edges={instruction: set(range(num_resources))},
        frozen_rho=frozen_rho,
        rho_upper_bound=None,
        soft_capacity=True,
    )
    if config.lpaux_mode == "exact":
        solution = solve_weights_exact(problem, config, cache)
    else:
        solution = solve_weights_heuristic(problem, config, cache)
    rho = solution.rho.get(instruction, {})
    return {
        resource: value
        for resource, value in rho.items()
        if value >= config.edge_threshold
    }


def map_single_instruction(
    runner: BenchmarkRunner,
    instruction: Instruction,
    core: CoreMappingResult,
    config: PalmedConfig,
) -> Dict[int, float]:
    """Infer the resource usage of one instruction against the frozen core."""
    observations = _gather_observations(runner, instruction, core, config)
    return _solve_instruction(
        instruction, observations, core.num_resources, core.basic_rho, config, None
    )


def _prefetch_lpaux_benchmarks(
    runner: BenchmarkRunner,
    instructions: List[Instruction],
    core: CoreMappingResult,
    config: PalmedConfig,
) -> None:
    """Batch-measure every LPAUX benchmark before the per-instruction LPs.

    The LPAUX phase needs ``|instructions| × |resources|`` saturating
    benchmarks plus the singletons; issuing them as one batch lets the
    measurement layer parallelize and consult the persistent cache, while
    the solving half then reads everything from the runner's memo.  The
    measured set (and every value) is exactly what the one-at-a-time path
    would have produced.
    """
    runner.prefetch(Microkernel.single(instruction) for instruction in instructions)
    kernels: List[Microkernel] = []
    for instruction in instructions:
        for resource in sorted(core.saturating_kernels):
            saturating = core.saturating_kernels[resource]
            if config.separate_extensions and _kernel_mixes_extensions(
                instruction, saturating
            ):
                continue
            kernels.append(runner.saturating_benchmark(instruction, saturating))
    runner.prefetch(kernels)


# ---------------------------------------------------------------------------
# Parallel fan-out over the shared runtime
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _LpauxContext:
    """Shared worker context: everything but the per-instruction data."""

    num_resources: int
    frozen_rho: Dict[Instruction, Dict[int, float]]
    config: PalmedConfig
    on_error: str


def _solve_chunk(
    context: _LpauxContext,
    items: List[Tuple[Instruction, List[KernelObservation]]],
) -> List[Tuple[Optional[Dict[int, float]], SolveStats]]:
    """Solve a chunk of per-instruction weight problems.

    Runs identically in-process and inside pool workers: one
    :class:`WeightModelCache` per chunk (identically-shaped problems rebind
    its templates), per-instruction solver statistics captured locally so
    the parent process can account work done in workers.  ``SolverError``
    maps to ``None`` under ``on_error="skip"``; under ``"raise"`` it
    propagates (out of the pool, with its original type).
    """
    cache = WeightModelCache()
    results: List[Tuple[Optional[Dict[int, float]], SolveStats]] = []
    for instruction, observations in items:
        local = SolveStats()
        try:
            with use_stats(local):
                rho: Optional[Dict[int, float]] = _solve_instruction(
                    instruction,
                    observations,
                    context.num_resources,
                    context.frozen_rho,
                    context.config,
                    cache,
                )
        except SolverError:
            if context.on_error == "raise":
                raise
            rho = None
        results.append((rho, local))
    return results


@dataclass
class CompleteMappingOutcome:
    """Everything the complete-mapping phase produced.

    ``measurement_time`` covers the batched prefetch of the saturating
    benchmarks (benchmarking in the paper's Table II accounting);
    ``solve_time`` is the wall clock of the per-instruction LP fan-out.
    ``solver_stats`` aggregates the LP work across every worker —
    template reuse shows as ``model_builds`` well below ``solves``.
    """

    mapped: Dict[Instruction, Dict[int, float]]
    measurement_time: float = 0.0
    solve_time: float = 0.0
    solver_stats: SolveStats = field(default_factory=SolveStats)


def run_complete_mapping(
    runner: BenchmarkRunner,
    instructions: Iterable[Instruction],
    core: CoreMappingResult,
    config: PalmedConfig,
    on_error: str = "skip",
    runtime: Optional[ParallelRuntime] = None,
) -> CompleteMappingOutcome:
    """Run LPAUX for every instruction not already in the core mapping.

    Parameters
    ----------
    on_error:
        ``"skip"`` drops instructions whose weight problem fails (mirroring
        the paper's "instructions mapped" < "instructions supported" gap);
        ``"raise"`` propagates the solver error.
    runtime:
        LP-solve executor; ``None`` builds one sized by
        ``config.lp_parallelism``.  The inferred usages are bitwise
        identical for every worker count.
    """
    core_instructions = set(core.basic_rho)
    remaining = [
        instruction
        for instruction in sorted(set(instructions), key=lambda inst: inst.name)
        if instruction not in core_instructions
    ]

    measure_start = time.monotonic()
    _prefetch_lpaux_benchmarks(runner, remaining, core, config)
    items = [
        (instruction, _gather_observations(runner, instruction, core, config))
        for instruction in remaining
    ]
    measurement_time = time.monotonic() - measure_start

    lp_workers_requested = lp_workers_effective = 0
    if runtime is None:
        lp_workers_requested = config.lp_parallelism
        lp_workers_effective = lp_workers_requested
        if lp_workers_requested > 1 and (os.cpu_count() or 1) <= 1:
            # A single-core host gains nothing from LP worker processes:
            # every fork pays serialization and scheduler churn for zero
            # added CPU.  Results are bitwise-identical either way, so
            # degrade to in-process solving and record the decision.
            lp_workers_effective = 1
        # One chunk per worker: LPAUX items are uniform (constant-size
        # problems), so finer chunking buys no load balance and each extra
        # chunk rebuilds its WeightModelCache templates once more.
        chunk_size = None
        if lp_workers_effective > 1 and items:
            chunk_size = math.ceil(len(items) / lp_workers_effective)
        runtime = ParallelRuntime(
            workers=lp_workers_effective, chunk_size=chunk_size
        )
    context = _LpauxContext(
        num_resources=core.num_resources,
        frozen_rho=core.basic_rho,
        config=config,
        on_error=on_error,
    )
    solve_start = time.monotonic()
    results = runtime.run(_solve_chunk, items, context=context)
    solve_time = time.monotonic() - solve_start

    mapped: Dict[Instruction, Dict[int, float]] = {}
    stats = SolveStats()
    stats.lp_workers_requested = lp_workers_requested
    stats.lp_workers_effective = lp_workers_effective
    for (instruction, _), (rho, local) in zip(items, results):
        stats.merge(local)
        if rho is not None:
            mapped[instruction] = rho
    # Re-inject the per-instruction records (possibly accumulated inside
    # worker processes) into the enclosing accounting, so process-global
    # solver statistics stay complete for every execution strategy.
    record_stats(stats)
    return CompleteMappingOutcome(
        mapped=mapped,
        measurement_time=measurement_time,
        solve_time=solve_time,
        solver_stats=stats,
    )


def complete_mapping(
    runner: BenchmarkRunner,
    instructions: Iterable[Instruction],
    core: CoreMappingResult,
    config: PalmedConfig,
    on_error: str = "skip",
) -> Dict[Instruction, Dict[int, float]]:
    """Backwards-compatible wrapper around :func:`run_complete_mapping`."""
    return run_complete_mapping(runner, instructions, core, config, on_error).mapped
