"""Complete mapping — LPAUX (Algorithm 5 of the paper).

Once the core mapping is known, every remaining instruction is mapped
independently: the instruction is mixed with the saturating kernel of each
resource (scaled by ``L`` so the resource stays the bottleneck), the
resulting benchmarks are measured, and a small weight problem with the core
edges *frozen* recovers the instruction's usage of every resource.  Because
each instruction is handled by its own constant-size problem, this phase
scales linearly with the ISA — the key to mapping thousands of instructions.

Execution model
---------------
The phase splits into a *measurement* half and a *solving* half, and both
are batched:

* every saturating benchmark and singleton is prefetched in one batch
  through the measurement layer (parallel dispatch + persistent cache,
  per ``PalmedConfig.parallelism`` / ``cache_path``);
* the per-instruction weight problems — independent and identically
  shaped — are grouped into contiguous *chunks* (``lp_chunk_size``,
  auto-sized to one chunk per requested lane) and executed on the
  batched solver engine: chunk ``i`` is pinned to worker lane
  ``i % lp_parallelism``, each lane is one long-lived process
  (:class:`repro.runtime.LanePool`) whose
  :class:`~repro.palmed.lp2_weights.WeightModelCache` — compiled
  templates plus warm-start memos — persists across all of that lane's
  chunks.  A host that cannot run lane processes (or a single-core
  host, where fan-out buys no CPU) executes the *identical* lane-pinned
  layout in-process (:func:`repro.runtime.run_chunks_in_process`).

Both halves are bitwise-deterministic: chunk layout and lane pinning are
planned from the requested configuration (never from host sizing or
scheduling), so the inferred usages *and* the deterministic solver
counters — solve requests, model builds, warm-start hits, chunk count —
are identical for every worker count, chunk size, warm-start setting and
execution path (see ``tests/test_lp_parallel.py``).
:class:`CompleteMappingOutcome` reports the measurement/solve wall clocks
separately so the pipeline can keep the paper's Table II
benchmarking-vs-LP-time split faithful.
"""

from __future__ import annotations

import math
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.isa.instruction import Instruction
from repro.mapping.microkernel import Microkernel
from repro.palmed.benchmarks import BenchmarkRunner, mixes_vector_extensions
from repro.palmed.config import PalmedConfig
from repro.palmed.core_mapping import CoreMappingResult
from repro.palmed.lp1_shape import KernelObservation
from repro.palmed.lp2_weights import (
    WeightModelCache,
    WeightProblem,
    solve_weights_exact,
    solve_weights_heuristic,
)
from repro.runtime import (
    LanePool,
    LanePoolError,
    ParallelRuntime,
    lane_state,
    run_chunks_in_process,
)
from repro.solvers import SolverError, SolveStats, record_stats, use_stats


def _kernel_mixes_extensions(instruction: Instruction, kernel: Microkernel) -> bool:
    return any(mixes_vector_extensions(instruction, other) for other in kernel.instructions)


def _gather_observations(
    runner: BenchmarkRunner,
    instruction: Instruction,
    core: CoreMappingResult,
    config: PalmedConfig,
) -> List[KernelObservation]:
    """The measured kernels feeding one instruction's weight problem."""
    observations: List[KernelObservation] = []
    if config.include_singleton_in_lpaux:
        kernel = Microkernel.single(instruction)
        observations.append(KernelObservation(kernel=kernel, ipc=runner.ipc(kernel)))
    for resource in sorted(core.saturating_kernels):
        saturating = core.saturating_kernels[resource]
        if config.separate_extensions and _kernel_mixes_extensions(instruction, saturating):
            # The benchmark cannot be generated (mixed vector extensions);
            # the resource usage of this instruction is then inferred from
            # the remaining benchmarks only, as on real hardware.
            continue
        kernel = runner.saturating_benchmark(instruction, saturating)
        observations.append(KernelObservation(kernel=kernel, ipc=runner.ipc(kernel)))
    if not observations:
        kernel = Microkernel.single(instruction)
        observations.append(KernelObservation(kernel=kernel, ipc=runner.ipc(kernel)))
    return observations


def _solve_instruction(
    instruction: Instruction,
    observations: Sequence[KernelObservation],
    num_resources: int,
    frozen_rho: Dict[Instruction, Dict[int, float]],
    config: PalmedConfig,
    cache: Optional[WeightModelCache],
) -> Dict[int, float]:
    """Solve one frozen-core weight problem and threshold the edges."""
    problem = WeightProblem(
        observations=observations,
        num_resources=num_resources,
        free_edges={instruction: set(range(num_resources))},
        frozen_rho=frozen_rho,
        rho_upper_bound=None,
        soft_capacity=True,
    )
    if config.lpaux_mode == "exact":
        solution = solve_weights_exact(problem, config, cache)
    else:
        solution = solve_weights_heuristic(problem, config, cache)
    rho = solution.rho.get(instruction, {})
    return {
        resource: value
        for resource, value in rho.items()
        if value >= config.edge_threshold
    }


def map_single_instruction(
    runner: BenchmarkRunner,
    instruction: Instruction,
    core: CoreMappingResult,
    config: PalmedConfig,
) -> Dict[int, float]:
    """Infer the resource usage of one instruction against the frozen core."""
    observations = _gather_observations(runner, instruction, core, config)
    return _solve_instruction(
        instruction, observations, core.num_resources, core.basic_rho, config, None
    )


def _prefetch_lpaux_benchmarks(
    runner: BenchmarkRunner,
    instructions: List[Instruction],
    core: CoreMappingResult,
    config: PalmedConfig,
) -> None:
    """Batch-measure every LPAUX benchmark before the per-instruction LPs.

    The LPAUX phase needs ``|instructions| × |resources|`` saturating
    benchmarks plus the singletons; issuing them as one batch lets the
    measurement layer parallelize and consult the persistent cache, while
    the solving half then reads everything from the runner's memo.  The
    measured set (and every value) is exactly what the one-at-a-time path
    would have produced.
    """
    runner.prefetch(Microkernel.single(instruction) for instruction in instructions)
    kernels: List[Microkernel] = []
    for instruction in instructions:
        for resource in sorted(core.saturating_kernels):
            saturating = core.saturating_kernels[resource]
            if config.separate_extensions and _kernel_mixes_extensions(
                instruction, saturating
            ):
                continue
            kernels.append(runner.saturating_benchmark(instruction, saturating))
    runner.prefetch(kernels)


# ---------------------------------------------------------------------------
# Batched lane-pinned fan-out
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _LpauxContext:
    """Shared worker context: everything but the per-instruction data."""

    num_resources: int
    frozen_rho: Dict[Instruction, Dict[int, float]]
    config: PalmedConfig
    on_error: str


def _solve_chunk(
    context: _LpauxContext,
    items: List[Tuple[Instruction, List[KernelObservation]]],
) -> List[Tuple[Optional[Dict[int, float]], SolveStats]]:
    """Solve a chunk of per-instruction weight problems.

    Runs identically inside lane processes and in-process emulation: the
    :class:`WeightModelCache` lives in :func:`repro.runtime.lane_state`,
    so one lane's compiled templates *and* warm-start memos persist across
    every chunk pinned to it — structure is built once per lane, later
    chunks only rebind data.  Per-instruction solver statistics are
    captured locally so the parent process can account work done in
    workers.  ``SolverError`` maps to ``None`` under ``on_error="skip"``;
    under ``"raise"`` it propagates (out of the lane, with its original
    type).
    """
    state = lane_state()
    cache: Optional[WeightModelCache] = state.get("lpaux_cache")
    if cache is None:
        cache = WeightModelCache(warm_start=context.config.lp_warm_start)
        state["lpaux_cache"] = cache
    results: List[Tuple[Optional[Dict[int, float]], SolveStats]] = []
    for instruction, observations in items:
        local = SolveStats()
        try:
            with use_stats(local):
                rho: Optional[Dict[int, float]] = _solve_instruction(
                    instruction,
                    observations,
                    context.num_resources,
                    context.frozen_rho,
                    context.config,
                    cache,
                )
        except SolverError:
            if context.on_error == "raise":
                raise
            rho = None
        results.append((rho, local))
    return results


def _plan_chunks(
    num_items: int, lanes_requested: int, chunk_size: Optional[int]
) -> List[Tuple[int, int]]:
    """Contiguous ``(start, size)`` chunks of the LPAUX item list.

    Planned from the *requested* lane count and the configured chunk size
    only — never from effective workers, host sizing or scheduling — so
    the layout (and with it the lane-pinned cache/memo state evolution,
    hence every deterministic solver counter) is identical on every host
    and execution path.  ``chunk_size=None`` auto-sizes one chunk per
    requested lane: LPAUX items are uniform constant-size problems, so
    finer chunking buys no load balance.
    """
    if num_items == 0:
        return []
    if chunk_size is None:
        chunk_size = math.ceil(num_items / max(1, lanes_requested))
    return [
        (start, min(chunk_size, num_items - start))
        for start in range(0, num_items, chunk_size)
    ]


@dataclass
class CompleteMappingOutcome:
    """Everything the complete-mapping phase produced.

    ``measurement_time`` covers the batched prefetch of the saturating
    benchmarks (benchmarking in the paper's Table II accounting);
    ``solve_time`` is the wall clock of the per-instruction LP fan-out.
    ``solver_stats`` aggregates the LP work across every worker —
    template reuse shows as ``model_builds`` well below ``solves``.
    """

    mapped: Dict[Instruction, Dict[int, float]]
    measurement_time: float = 0.0
    solve_time: float = 0.0
    solver_stats: SolveStats = field(default_factory=SolveStats)


def run_complete_mapping(
    runner: BenchmarkRunner,
    instructions: Iterable[Instruction],
    core: CoreMappingResult,
    config: PalmedConfig,
    on_error: str = "skip",
    runtime: Optional[ParallelRuntime] = None,
) -> CompleteMappingOutcome:
    """Run LPAUX for every instruction not already in the core mapping.

    Parameters
    ----------
    on_error:
        ``"skip"`` drops instructions whose weight problem fails (mirroring
        the paper's "instructions mapped" < "instructions supported" gap);
        ``"raise"`` propagates the solver error.
    runtime:
        Legacy executor override: when given, its ``workers`` and
        ``chunk_size`` take the place of ``config.lp_parallelism`` /
        ``config.lp_chunk_size`` in the chunk plan (and host-sizing
        degradation is skipped — an explicit runtime is an explicit
        demand).  Execution always goes through the lane-pinned engine;
        the inferred usages are bitwise identical for every setting.
    """
    core_instructions = set(core.basic_rho)
    remaining = [
        instruction
        for instruction in sorted(set(instructions), key=lambda inst: inst.name)
        if instruction not in core_instructions
    ]

    measure_start = time.monotonic()
    _prefetch_lpaux_benchmarks(runner, remaining, core, config)
    items = [
        (instruction, _gather_observations(runner, instruction, core, config))
        for instruction in remaining
    ]
    measurement_time = time.monotonic() - measure_start

    if runtime is not None:
        lp_workers_requested = max(1, runtime.workers)
        lp_workers_effective = lp_workers_requested
        chunk_size = runtime.chunk_size
    else:
        lp_workers_requested = config.lp_parallelism
        lp_workers_effective = lp_workers_requested
        if lp_workers_requested > 1 and (os.cpu_count() or 1) <= 1:
            # A single-core host gains nothing from LP worker lanes: every
            # fork pays serialization and scheduler churn for zero added
            # CPU.  The chunk plan below is lane-pinned from the
            # *requested* count, so counters are bitwise-identical either
            # way; only the execution strategy degrades.  Recorded in
            # lp_workers_requested/effective.
            lp_workers_effective = 1
        chunk_size = config.lp_chunk_size

    lanes = max(1, lp_workers_requested)
    plan = _plan_chunks(len(items), lanes, chunk_size)
    chunks = [items[start : start + size] for start, size in plan]

    context = _LpauxContext(
        num_resources=core.num_resources,
        frozen_rho=core.basic_rho,
        config=config,
        on_error=on_error,
    )
    solve_start = time.monotonic()
    chunk_results: Optional[List[List[Tuple[Optional[Dict[int, float]], SolveStats]]]]
    chunk_results = None
    if lp_workers_effective > 1 and len(chunks) > 1:
        # Fewer chunks than lanes leaves the tail lanes unused; chunk i
        # still lands on lane i either way, so capping changes nothing in
        # the deterministic layout.
        pool_lanes = min(lanes, len(chunks))
        pool = LanePool(pool_lanes, name="lp-lane")
        try:
            chunk_results = pool.run(_solve_chunk, chunks, context=context)
            lp_workers_effective = pool_lanes
        except LanePoolError as error:
            # Environments without working lane processes degrade to the
            # identical in-process layout rather than failing the phase.
            warnings.warn(
                f"LP worker lanes unavailable ({error!r}); "
                "falling back to in-process solving",
                stacklevel=2,
            )
            lp_workers_effective = 1
    elif lp_workers_effective > 1:
        # Nothing to fan out (zero or one chunk): solve in-process.
        lp_workers_effective = 1
    if chunk_results is None:
        chunk_results = run_chunks_in_process(_solve_chunk, chunks, context, lanes)
    solve_time = time.monotonic() - solve_start

    mapped: Dict[Instruction, Dict[int, float]] = {}
    stats = SolveStats()
    stats.lp_workers_requested = lp_workers_requested
    stats.lp_workers_effective = lp_workers_effective
    stats.lp_chunks = len(chunks)
    results = [result for chunk in chunk_results for result in chunk]
    for (instruction, _), (rho, local) in zip(items, results):
        stats.merge(local)
        if rho is not None:
            mapped[instruction] = rho
    # Re-inject the per-instruction records (possibly accumulated inside
    # worker processes) into the enclosing accounting, so process-global
    # solver statistics stay complete for every execution strategy.
    record_stats(stats)
    return CompleteMappingOutcome(
        mapped=mapped,
        measurement_time=measurement_time,
        solve_time=solve_time,
        solver_stats=stats,
    )


def complete_mapping(
    runner: BenchmarkRunner,
    instructions: Iterable[Instruction],
    core: CoreMappingResult,
    config: PalmedConfig,
    on_error: str = "skip",
) -> Dict[Instruction, Dict[int, float]]:
    """Backwards-compatible wrapper around :func:`run_complete_mapping`."""
    return run_complete_mapping(runner, instructions, core, config, on_error).mapped
