"""The PALMED inference pipeline (Sec. V of the paper).

Given only a measurement backend (elapsed cycles / IPC of dependency-free
microkernels) and a list of instructions, the pipeline builds a conjunctive
resource mapping in three stages:

1. **Basic instruction selection** (:mod:`repro.palmed.basic_selection`,
   Algorithm 1) — quadratic benchmarking, low-IPC filtering, equivalence
   classes, very-basic clique and most-greedy selection.
2. **Core mapping** (:mod:`repro.palmed.core_mapping`, Algorithm 2) — the
   LP1 shape ILP iterated with benchmark enrichment, the LP2 bipartite
   weight problem, and per-resource saturating kernels.
3. **Complete mapping** (:mod:`repro.palmed.complete_mapping`, Algorithm 5 /
   LPAUX) — per remaining instruction, a small frozen-core weight problem
   over benchmarks that saturate each resource.

:class:`Palmed` (in :mod:`repro.palmed.pipeline`) drives the stages and
returns a :class:`PalmedResult`.  It is a thin facade over the
checkpointable stage graph of :mod:`repro.pipeline`, which adds per-stage
persistence, content-hash invalidation, incremental resume and fleet
orchestration on top of the algorithms implemented here.
"""

from repro.palmed.config import PalmedConfig
from repro.palmed.benchmarks import BenchmarkRunner, quantize_kernel
from repro.palmed.quadratic import QuadraticBenchmarks
from repro.palmed.basic_selection import BasicSelectionResult, select_basic_instructions
from repro.palmed.core_mapping import CoreMappingResult, compute_core_mapping
from repro.palmed.complete_mapping import (
    CompleteMappingOutcome,
    complete_mapping,
    run_complete_mapping,
)
from repro.palmed.result import PalmedResult, PalmedStats
from repro.palmed.pipeline import Palmed

__all__ = [
    "BasicSelectionResult",
    "BenchmarkRunner",
    "CompleteMappingOutcome",
    "CoreMappingResult",
    "Palmed",
    "PalmedConfig",
    "PalmedResult",
    "PalmedStats",
    "QuadraticBenchmarks",
    "complete_mapping",
    "compute_core_mapping",
    "quantize_kernel",
    "run_complete_mapping",
    "select_basic_instructions",
]
