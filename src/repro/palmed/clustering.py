"""Hierarchical clustering of instruction behaviour vectors.

Algorithm 1 removes duplicate instructions: two instructions whose pairwise
IPC signature is identical (within measurement tolerance) behave the same
with respect to basic-instruction selection, so only one representative is
kept.  The paper builds these equivalence classes with hierarchical
clustering [Nielsen 2016]; the implementation below is an agglomerative,
complete-linkage clustering with a relative-difference metric, which
guarantees that *every* pair inside a cluster is within the tolerance.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, TypeVar

import numpy as np

Key = TypeVar("Key", bound=Hashable)


def relative_distance(left: np.ndarray, right: np.ndarray, floor: float = 1e-9) -> float:
    """Maximum componentwise relative difference between two vectors."""
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    if left.shape != right.shape:
        raise ValueError("vectors must have the same shape")
    denominator = np.maximum(np.maximum(np.abs(left), np.abs(right)), floor)
    return float(np.max(np.abs(left - right) / denominator))


def pairwise_relative_distances(matrix: np.ndarray, floor: float = 1e-9) -> np.ndarray:
    """Full pairwise matrix of :func:`relative_distance` values.

    Computed one row at a time (vectorized over the other rows) so the
    memory footprint stays ``O(n · dim)`` even for large instruction sets.
    """
    size = matrix.shape[0]
    distances = np.zeros((size, size))
    absolute = np.abs(matrix)
    for i in range(size):
        diff = np.abs(matrix - matrix[i])
        denominator = np.maximum(np.maximum(absolute, absolute[i]), floor)
        distances[i] = np.max(diff / denominator, axis=1)
    return distances


def hierarchical_clusters(
    vectors: Mapping[Key, np.ndarray],
    tolerance: float,
) -> List[List[Key]]:
    """Group keys whose vectors are pairwise within ``tolerance``.

    Agglomerative clustering with complete linkage: at every step the two
    clusters at minimal inter-cluster distance (the *maximum* pairwise
    distance between their members) are merged, as long as that distance does
    not exceed ``tolerance``.  Complete linkage ensures the defining property
    of the paper's equivalence classes — all members behave alike — rather
    than the weaker chained similarity of single linkage.

    The linkage itself is delegated to :mod:`scipy.cluster.hierarchy`, which
    keeps the step cheap even for the full quadratic-benchmark matrices of a
    few hundred instructions.

    Returns clusters as lists of keys; the clusters and their members are
    sorted deterministically.
    """
    keys = sorted(vectors, key=repr)
    if not keys:
        return []
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if len(keys) == 1:
        return [list(keys)]

    matrix = np.vstack([np.asarray(vectors[key], dtype=float) for key in keys])
    distances = pairwise_relative_distances(matrix)

    from scipy.cluster import hierarchy
    from scipy.spatial.distance import squareform

    condensed = squareform(distances, checks=False)
    linkage = hierarchy.linkage(condensed, method="complete")
    labels = hierarchy.fcluster(linkage, t=tolerance, criterion="distance")

    grouped: Dict[int, List[Key]] = {}
    for key, label in zip(keys, labels):
        grouped.setdefault(int(label), []).append(key)
    result = [sorted(members, key=repr) for members in grouped.values()]
    result.sort(key=lambda members: repr(members[0]))
    return result


def cluster_representatives(
    clusters: Sequence[Sequence[Key]],
    score: Mapping[Key, float],
) -> Dict[Key, List[Key]]:
    """Pick one representative per cluster (highest score, ties by repr).

    Returns a mapping ``representative -> members`` (members include the
    representative itself).
    """
    representatives: Dict[Key, List[Key]] = {}
    for members in clusters:
        best = max(members, key=lambda key: (score.get(key, 0.0), repr(key)))
        representatives[best] = list(members)
    return representatives
