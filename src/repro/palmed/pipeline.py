"""The end-to-end PALMED driver (Fig. 3 of the paper).

``Palmed`` is a thin facade over the stage graph of :mod:`repro.pipeline`:
the four Fig. 3 stages (quadratic benchmarking, basic selection, core
mapping, complete mapping) plus the final assembly run as explicit,
individually-checkpointable stages, and this class only builds the shared
:class:`~repro.pipeline.stage.StageContext`, executes the graph and wraps
the stage outputs back into the historical :class:`PalmedResult`.

Attach an :class:`~repro.artifacts.ArtifactRegistry` to persist each
stage's output as a content-hashed checkpoint; pass ``resume=True`` to
skip every stage whose inputs (upstream outputs + the config fields it
reads + the machine fingerprint) match a stored checkpoint.  Resumed runs
are bitwise-identical to cold runs — mapping and all deterministic
statistics — and a fully-warm re-run executes zero measurement batches
and zero LP solves (see ``tests/test_resume.py``).

All wall-clock accounting uses a monotonic clock; ``benchmarking_time``
vs ``lp_time`` keeps the paper's Table II split (LPAUX *measurements* are
benchmarking, not LP solving).  Both halves of the pipeline parallelize
over the shared :class:`repro.runtime.ParallelRuntime` substrate
(``PalmedConfig.parallelism`` / ``lp_parallelism``), and
``PalmedConfig.cache_path`` persists raw measurements across runs —
neither knob affects inferred mappings or checkpoint validity.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.isa.instruction import Instruction
from repro.measure import MeasurementCache, ParallelDispatcher
from repro.palmed.benchmarks import BenchmarkRunner
from repro.palmed.config import PalmedConfig
from repro.palmed.core_mapping import resource_label
from repro.palmed.result import PalmedResult
from repro.simulator.backend import MeasurementBackend


class Palmed:
    """Automatic construction of a resource mapping from cycle measurements.

    Parameters
    ----------
    backend:
        The measurement backend ("the hardware"): anything implementing
        :class:`repro.simulator.MeasurementBackend`.
    instructions:
        The instructions to characterize.  Non-benchmarkable instructions
        (those the microbenchmark generator cannot instrument) are dropped,
        as are instructions whose standalone IPC is below ``config.min_ipc``.
    config:
        Pipeline parameters; defaults to :class:`PalmedConfig`.
    machine_name:
        Label used in the statistics (defaults to the backend's machine name
        when available).
    cache:
        Persistent measurement cache; ``None`` builds one from
        ``config.cache_path`` (no persistence when that is also unset).
    dispatcher:
        Measurement batch executor; ``None`` builds one sized by
        ``config.parallelism``.
    registry:
        Optional :class:`~repro.artifacts.ArtifactRegistry`: every stage
        output is persisted as a content-hashed checkpoint.  ``None`` (the
        historical behaviour) disables checkpointing entirely.
    resume:
        Serve stages from matching checkpoints in ``registry`` instead of
        re-running them.  Requires ``registry``.
    force_stages:
        Stage names to re-run even when a matching checkpoint exists
        (their checkpoints are overwritten; downstream stages still hit
        when the re-run reproduces the same output, which it does unless
        code or config changed).
    """

    def __init__(
        self,
        backend: MeasurementBackend,
        instructions: Sequence[Instruction],
        config: Optional[PalmedConfig] = None,
        machine_name: Optional[str] = None,
        cache: Optional[MeasurementCache] = None,
        dispatcher: Optional[ParallelDispatcher] = None,
        registry: Optional["ArtifactRegistry"] = None,
        resume: bool = False,
        force_stages: Iterable[str] = (),
    ) -> None:
        self.backend = backend
        self.config = config if config is not None else PalmedConfig()
        self.runner = BenchmarkRunner(
            backend, self.config, cache=cache, dispatcher=dispatcher
        )
        self.instructions: List[Instruction] = sorted(set(instructions), key=lambda i: i.name)
        if machine_name is None:
            machine = getattr(backend, "machine", None)
            machine_name = getattr(machine, "name", "unknown-machine")
        self.machine_name = machine_name
        if resume and registry is None:
            raise ValueError("resume=True requires a checkpoint registry")
        self.registry = registry
        self.resume = resume
        self.force_stages = tuple(force_stages)
        #: The :class:`repro.pipeline.GraphRun` of the most recent
        #: :meth:`run` call (per-stage hit/miss reports, ``format_explain``).
        self.last_run: Optional["GraphRun"] = None

    # ------------------------------------------------------------------
    def run(self, stop_after: Optional[str] = None) -> PalmedResult:
        """Run the stage graph and return the inferred mapping.

        ``stop_after`` interrupts the run once the named stage has been
        checkpointed (raising
        :class:`repro.pipeline.PipelineInterrupted`) — the crash-injection
        hook of the resume test-suite.
        """
        from repro.measure.fingerprint import backend_fingerprint
        from repro.pipeline import StageContext, StageGraph, palmed_stages
        from repro.telemetry import TRACER, telemetry_session

        context = StageContext(
            runner=self.runner,
            config=self.config,
            instructions=list(self.instructions),
            machine_name=self.machine_name,
        )
        graph = StageGraph(palmed_stages())
        # The session is a no-op when ``config.telemetry`` is unset, and
        # yields ``None`` (without double-recording) when an outer CLI
        # session already owns the tracer.  Telemetry never feeds back
        # into results: everything recorded is run-local wall clocks.
        with telemetry_session(
            self.config.telemetry,
            kind="characterize",
            machine_name=self.machine_name,
            machine_fingerprint=backend_fingerprint(self.backend),
        ):
            run = graph.run(
                context,
                registry=self.registry,
                resume=self.resume,
                force=self.force_stages,
                stop_after=stop_after,
            )
            self.last_run = run

            final = run.outputs["finalize"]
            stats = final.stats
            # Per-run accounting: which stages this particular execution
            # served from checkpoints, and every stage's canonical wall
            # clock.  Both are run-local (excluded from the deterministic
            # view).
            stats.stage_wall_clock = {
                name: record.wall_time for name, record in run.records.items()
            }
            stats.stage_checkpoint_hits = dict(run.checkpoint_hits)

            # Persist whatever was measured, so the next run (another
            # ablation, the evaluation harness, a re-run with different LP
            # settings) can skip every benchmark measured here.
            self.runner.flush_cache()

            if TRACER.enabled:
                # End-of-run summary metrics mirroring the deterministic
                # solver counters, so warm-hit rates are queryable
                # (``repro stats solver``) next to the traced spans.
                TRACER.metric("solver.solves", stats.lp_solves)
                TRACER.metric("solver.warm_start_hits", stats.lp_warm_start_hits)
                TRACER.metric("solver.model_builds", stats.lp_model_builds)
                TRACER.metric("solver.chunks", stats.lp_chunks)
                TRACER.metric("solver.lp_time_s", stats.lp_time)
                TRACER.metric(
                    "pipeline.benchmarking_time_s", stats.benchmarking_time
                )

        core = run.outputs["core"]
        saturating = {
            resource_label(index): kernel
            for index, kernel in core.saturating_kernels.items()
        }
        return PalmedResult(
            mapping=final.mapping,
            stats=stats,
            selection=run.outputs["selection"],
            core=core,
            saturating_kernels=saturating,
        )

    def explain(self) -> str:
        """Per-stage hit/miss and timing table of the most recent run."""
        if self.last_run is None:
            return "no pipeline run yet"
        return self.last_run.format_explain()
