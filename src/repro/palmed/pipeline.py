"""The end-to-end PALMED driver (Fig. 3 of the paper).

``Palmed`` chains the three stages — quadratic benchmarking + basic
instruction selection, core mapping, complete mapping — over a measurement
backend, and assembles the final conjunctive resource mapping together with
the Table II statistics (number of benchmarks, resources found, instructions
mapped, benchmarking vs. LP solving time).

All wall-clock accounting uses a monotonic clock (:func:`time.monotonic`),
so the reported stage timings are immune to system clock adjustments.  The
complete-mapping phase reports its measurement and LP halves separately, so
``benchmarking_time`` vs ``lp_time`` reproduces the paper's Table II split
faithfully (LPAUX *measurements* are benchmarking, not LP solving).

Both halves of the pipeline parallelize over the shared
:class:`repro.runtime.ParallelRuntime` substrate: configure
``PalmedConfig.parallelism`` to fan microbenchmark batches out over worker
processes, ``PalmedConfig.lp_parallelism`` to fan the per-instruction LPAUX
weight problems out, and ``PalmedConfig.cache_path`` to persist
measurements across runs.  The statistics report how many benchmarks were
measured versus served from the cache, plus the solver layer's
model-build/solve split (template reuse shows as builds < solves).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.isa.instruction import Instruction
from repro.mapping.conjunctive import ConjunctiveResourceMapping
from repro.mapping.microkernel import Microkernel
from repro.measure import MeasurementCache, ParallelDispatcher
from repro.palmed.basic_selection import select_basic_instructions
from repro.palmed.benchmarks import BenchmarkRunner
from repro.palmed.complete_mapping import run_complete_mapping
from repro.palmed.config import PalmedConfig
from repro.palmed.core_mapping import CoreMappingResult, compute_core_mapping, resource_label
from repro.palmed.quadratic import QuadraticBenchmarks
from repro.palmed.result import PalmedResult, PalmedStats
from repro.simulator.backend import MeasurementBackend


class Palmed:
    """Automatic construction of a resource mapping from cycle measurements.

    Parameters
    ----------
    backend:
        The measurement backend ("the hardware"): anything implementing
        :class:`repro.simulator.MeasurementBackend`.
    instructions:
        The instructions to characterize.  Non-benchmarkable instructions
        (those the microbenchmark generator cannot instrument) are dropped,
        as are instructions whose standalone IPC is below ``config.min_ipc``.
    config:
        Pipeline parameters; defaults to :class:`PalmedConfig`.
    machine_name:
        Label used in the statistics (defaults to the backend's machine name
        when available).
    cache:
        Persistent measurement cache; ``None`` builds one from
        ``config.cache_path`` (no persistence when that is also unset).
    dispatcher:
        Measurement batch executor; ``None`` builds one sized by
        ``config.parallelism``.
    """

    def __init__(
        self,
        backend: MeasurementBackend,
        instructions: Sequence[Instruction],
        config: Optional[PalmedConfig] = None,
        machine_name: Optional[str] = None,
        cache: Optional[MeasurementCache] = None,
        dispatcher: Optional[ParallelDispatcher] = None,
    ) -> None:
        self.backend = backend
        self.config = config if config is not None else PalmedConfig()
        self.runner = BenchmarkRunner(
            backend, self.config, cache=cache, dispatcher=dispatcher
        )
        self.instructions: List[Instruction] = sorted(set(instructions), key=lambda i: i.name)
        if machine_name is None:
            machine = getattr(backend, "machine", None)
            machine_name = getattr(machine, "name", "unknown-machine")
        self.machine_name = machine_name

    # ------------------------------------------------------------------
    def run(self) -> PalmedResult:
        """Run the full pipeline and return the inferred mapping."""
        start_total = time.monotonic()

        benchmarkable = [inst for inst in self.instructions if inst.is_benchmarkable]
        usable, discarded_slow = self._filter_by_ipc(benchmarkable)

        bench_start = time.monotonic()
        quadratic = QuadraticBenchmarks(self.runner, usable)
        selection = select_basic_instructions(quadratic, self.config)
        benchmarking_time = time.monotonic() - bench_start

        core = compute_core_mapping(self.runner, selection, self.config)

        lpaux = run_complete_mapping(self.runner, usable, core, self.config)

        mapping = self._assemble_mapping(core, lpaux.mapped)
        # Persist whatever was measured, so the next run (another ablation,
        # the evaluation harness, a re-run with different LP settings) can
        # skip every benchmark measured here.
        self.runner.flush_cache()
        total_time = time.monotonic() - start_total

        lp_stats = core.solver_stats.copy().merge(lpaux.solver_stats)
        stats = PalmedStats(
            machine_name=self.machine_name,
            num_instructions_total=len(self.instructions),
            num_benchmarkable=len(benchmarkable),
            num_instructions_mapped=len(mapping.instructions),
            num_basic_instructions=len(selection.basic),
            num_resources=core.num_resources,
            num_benchmarks=self.runner.num_benchmarks,
            num_equivalence_classes=selection.num_classes,
            num_low_ipc=len(selection.low_ipc) + len(discarded_slow),
            lp1_iterations=core.lp1_iterations,
            # LPAUX's saturating-benchmark measurements are benchmarking
            # work, not LP solving (Table II charges them to the former).
            benchmarking_time=benchmarking_time + lpaux.measurement_time,
            lp_time=core.lp_time + lpaux.solve_time,
            total_time=total_time,
            num_benchmarks_measured=self.runner.num_benchmarks_measured,
            num_benchmarks_cached=self.runner.num_benchmarks_cached,
            lp_solves=lp_stats.solves,
            lp_model_builds=lp_stats.model_builds,
            lp_build_time=lp_stats.build_time,
            lp_solve_time=lp_stats.solve_time,
        )
        saturating = {
            resource_label(index): kernel
            for index, kernel in core.saturating_kernels.items()
        }
        return PalmedResult(
            mapping=mapping,
            stats=stats,
            selection=selection,
            core=core,
            saturating_kernels=saturating,
        )

    # ------------------------------------------------------------------
    def _filter_by_ipc(
        self, instructions: Iterable[Instruction]
    ) -> tuple[List[Instruction], List[Instruction]]:
        """Drop instructions whose standalone IPC is below ``min_ipc``."""
        instructions = list(instructions)
        self.runner.prefetch(
            Microkernel.single(instruction) for instruction in instructions
        )
        usable: List[Instruction] = []
        discarded: List[Instruction] = []
        for instruction in instructions:
            if self.runner.ipc_single(instruction) < self.config.min_ipc:
                discarded.append(instruction)
            else:
                usable.append(instruction)
        return usable, discarded

    def _assemble_mapping(
        self,
        core: CoreMappingResult,
        remaining: Dict[Instruction, Dict[int, float]],
    ) -> ConjunctiveResourceMapping:
        """Merge core and LPAUX results into the final normalized mapping."""
        resources = {resource_label(r): 1.0 for r in range(core.num_resources)}
        usage: Dict[Instruction, Dict[str, float]] = {}
        for instruction, weights in core.basic_rho.items():
            usage[instruction] = {
                resource_label(r): value
                for r, value in weights.items()
                if value >= self.config.edge_threshold
            }
        for instruction, weights in remaining.items():
            usage[instruction] = {
                resource_label(r): value
                for r, value in weights.items()
                if value >= self.config.edge_threshold
            }
        # Instructions whose inferred usage came out empty cannot be
        # meaningfully predicted by the model: they are reported as
        # *unmapped* (the paper's "instructions mapped" is likewise smaller
        # than "instructions supported") rather than silently predicted with
        # a near-infinite throughput.
        usage = {instruction: uses for instruction, uses in usage.items() if uses}
        return ConjunctiveResourceMapping(resources, usage)
