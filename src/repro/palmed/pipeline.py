"""The end-to-end PALMED driver (Fig. 3 of the paper).

``Palmed`` chains the three stages — quadratic benchmarking + basic
instruction selection, core mapping, complete mapping — over a measurement
backend, and assembles the final conjunctive resource mapping together with
the Table II statistics (number of benchmarks, resources found, instructions
mapped, benchmarking vs. LP solving time).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.isa.instruction import Instruction
from repro.mapping.conjunctive import ConjunctiveResourceMapping
from repro.palmed.basic_selection import select_basic_instructions
from repro.palmed.benchmarks import BenchmarkRunner
from repro.palmed.complete_mapping import complete_mapping
from repro.palmed.config import PalmedConfig
from repro.palmed.core_mapping import CoreMappingResult, compute_core_mapping, resource_label
from repro.palmed.quadratic import QuadraticBenchmarks
from repro.palmed.result import PalmedResult, PalmedStats
from repro.simulator.backend import MeasurementBackend


class Palmed:
    """Automatic construction of a resource mapping from cycle measurements.

    Parameters
    ----------
    backend:
        The measurement backend ("the hardware"): anything implementing
        :class:`repro.simulator.MeasurementBackend`.
    instructions:
        The instructions to characterize.  Non-benchmarkable instructions
        (those the microbenchmark generator cannot instrument) are dropped,
        as are instructions whose standalone IPC is below ``config.min_ipc``.
    config:
        Pipeline parameters; defaults to :class:`PalmedConfig`.
    machine_name:
        Label used in the statistics (defaults to the backend's machine name
        when available).
    """

    def __init__(
        self,
        backend: MeasurementBackend,
        instructions: Sequence[Instruction],
        config: Optional[PalmedConfig] = None,
        machine_name: Optional[str] = None,
    ) -> None:
        self.backend = backend
        self.config = config if config is not None else PalmedConfig()
        self.runner = BenchmarkRunner(backend, self.config)
        self.instructions: List[Instruction] = sorted(set(instructions), key=lambda i: i.name)
        if machine_name is None:
            machine = getattr(backend, "machine", None)
            machine_name = getattr(machine, "name", "unknown-machine")
        self.machine_name = machine_name

    # ------------------------------------------------------------------
    def run(self) -> PalmedResult:
        """Run the full pipeline and return the inferred mapping."""
        start_total = time.perf_counter()

        benchmarkable = [inst for inst in self.instructions if inst.is_benchmarkable]
        usable, discarded_slow = self._filter_by_ipc(benchmarkable)

        bench_start = time.perf_counter()
        quadratic = QuadraticBenchmarks(self.runner, usable)
        selection = select_basic_instructions(quadratic, self.config)
        benchmarking_time = time.perf_counter() - bench_start

        core = compute_core_mapping(self.runner, selection, self.config)

        lpaux_start = time.perf_counter()
        remaining = complete_mapping(self.runner, usable, core, self.config)
        lpaux_time = time.perf_counter() - lpaux_start

        mapping = self._assemble_mapping(core, remaining)
        total_time = time.perf_counter() - start_total

        stats = PalmedStats(
            machine_name=self.machine_name,
            num_instructions_total=len(self.instructions),
            num_benchmarkable=len(benchmarkable),
            num_instructions_mapped=len(mapping.instructions),
            num_basic_instructions=len(selection.basic),
            num_resources=core.num_resources,
            num_benchmarks=self.runner.num_benchmarks,
            num_equivalence_classes=selection.num_classes,
            num_low_ipc=len(selection.low_ipc) + len(discarded_slow),
            lp1_iterations=core.lp1_iterations,
            benchmarking_time=benchmarking_time,
            lp_time=core.lp_time + lpaux_time,
            total_time=total_time,
        )
        saturating = {
            resource_label(index): kernel
            for index, kernel in core.saturating_kernels.items()
        }
        return PalmedResult(
            mapping=mapping,
            stats=stats,
            selection=selection,
            core=core,
            saturating_kernels=saturating,
        )

    # ------------------------------------------------------------------
    def _filter_by_ipc(
        self, instructions: Iterable[Instruction]
    ) -> tuple[List[Instruction], List[Instruction]]:
        """Drop instructions whose standalone IPC is below ``min_ipc``."""
        usable: List[Instruction] = []
        discarded: List[Instruction] = []
        for instruction in instructions:
            if self.runner.ipc_single(instruction) < self.config.min_ipc:
                discarded.append(instruction)
            else:
                usable.append(instruction)
        return usable, discarded

    def _assemble_mapping(
        self,
        core: CoreMappingResult,
        remaining: Dict[Instruction, Dict[int, float]],
    ) -> ConjunctiveResourceMapping:
        """Merge core and LPAUX results into the final normalized mapping."""
        resources = {resource_label(r): 1.0 for r in range(core.num_resources)}
        usage: Dict[Instruction, Dict[str, float]] = {}
        for instruction, weights in core.basic_rho.items():
            usage[instruction] = {
                resource_label(r): value
                for r, value in weights.items()
                if value >= self.config.edge_threshold
            }
        for instruction, weights in remaining.items():
            usage[instruction] = {
                resource_label(r): value
                for r, value in weights.items()
                if value >= self.config.edge_threshold
            }
        # Instructions whose inferred usage came out empty cannot be
        # meaningfully predicted by the model: they are reported as
        # *unmapped* (the paper's "instructions mapped" is likewise smaller
        # than "instructions supported") rather than silently predicted with
        # a near-infinite throughput.
        usage = {instruction: uses for instruction, uses in usage.items() if uses}
        return ConjunctiveResourceMapping(resources, usage)
