"""Configuration of the PALMED pipeline.

Every constant called out in the paper (the 5 % measurement tolerance, the
``M = 4`` and ``L = 4`` benchmark multipliers, the low-IPC cutoff of 0.05)
has a corresponding knob here so that the ablation benchmarks can vary them.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass
class PalmedConfig:
    """Tunable parameters of the inference pipeline.

    Attributes
    ----------
    n_basic:
        Target number of basic instructions (the ``n`` of Algorithm 1).
        ``None`` (the default) selects one basic instruction per behavioural
        equivalence class, capped at ``n_basic_cap`` — in the paper's running
        example the 754 port-0/1/6 instructions reduce to 9 classes and the
        basic set is drawn from those.
    n_basic_cap:
        Upper bound on the automatically sized basic set.
    min_ipc:
        Instructions with a standalone IPC below this value are discarded
        entirely (the paper uses 0.05: such instructions are irrelevant for
        throughput-limited kernels).
    epsilon:
        Relative measurement tolerance (5 % in the paper): used for the
        low-IPC filter (``IPC ≤ 1 - ε``), the disjointness test, the
        saturation test and benchmark-coefficient rounding.
    m_repeat:
        ``M`` of the ``a^M b`` seed benchmarks of LP1 (4 in the paper).
    l_repeat:
        ``L`` of the ``i^i · sat[r]^L`` benchmarks of LPAUX (4 in the paper).
    max_resources:
        Upper bound on the number of abstract resources LP1 may introduce.
    lp1_max_iterations:
        Cap on the LP1 / benchmark-enrichment loop of Algorithm 2.
    lp2_mode:
        ``"exact"`` (MILP with per-kernel resource-selection binaries),
        ``"heuristic"`` (alternating argmax/LP refinement) or ``"auto"``
        (exact below ``lp2_exact_max_kernels`` kernels, heuristic above).
    lp2_exact_max_kernels:
        Threshold used by ``"auto"``.
    lp2_heuristic_rounds:
        Maximum number of alternating rounds of the heuristic BWP solver.
    lpaux_mode:
        Solver used for the per-instruction complete-mapping problems
        (``"exact"`` by default: they are small, and the exact solver avoids
        the local optima the alternating heuristic can fall into).
    lp1_time_limit / lp1_mip_gap:
        Time limit (seconds) and relative MIP gap for the LP1 shape ILP;
        the incumbent solution is used when the limit is hit.
    cluster_tolerance:
        Relative tolerance of the hierarchical clustering used to build
        equivalence classes of instructions.
    quantize_coefficients:
        Round benchmark multiplicities to small integers within ``epsilon``
        (the paper's behaviour on real hardware).  Disabled by default
        because the simulated backend accepts fractional multiplicities
        exactly; enabled by the noise-robustness experiments.
    separate_extensions:
        Do not generate microbenchmarks mixing SSE-like and AVX-like
        instructions (Sec. VI-A); the corresponding pairs are treated as
        resource-disjoint during selection.
    include_singleton_in_lpaux:
        Also feed the single-instruction kernel to LPAUX (implementation
        choice on top of Algorithm 5; anchors the total usage of the
        instruction and measurably improves accuracy — see the ablation
        bench).
    edge_threshold:
        Inferred usages below this value are dropped from the final mapping.
    milp_time_limit:
        Time limit (seconds) handed to the MILP solver for LP1/LP2.
    parallelism:
        Number of worker processes used by the batched measurement layer
        (:class:`repro.measure.ParallelDispatcher`).  ``0`` or ``1`` keeps
        every measurement in-process (the seed behaviour); larger values fan
        benchmark batches out over a process pool.  The inferred mapping is
        identical for every setting (see ``tests/test_measure_parallel.py``).
    lp_parallelism:
        Number of worker processes used to fan the independent
        per-instruction LPAUX weight problems of the complete-mapping phase
        over the shared :class:`repro.runtime.ParallelRuntime`.  ``0`` or
        ``1`` solves them in-process.  The inferred mapping is bitwise
        identical for every setting (see ``tests/test_lp_parallel.py``).
    lp_chunk_size:
        Number of LPAUX instructions per solve chunk of the batched
        complete-mapping engine.  ``None`` (the default) auto-sizes one
        chunk per requested worker lane.  Chunk layout is planned from
        the *requested* parallelism, never from host sizing or
        scheduling, so mappings and deterministic solver counters are
        identical for every value and on every host.  Like
        ``lp_parallelism``, this is an execution knob: it is not part of
        any stage's declared config fields, so changing it never
        invalidates stage checkpoints (a resumed run keeps the counters
        of the run that produced the checkpoint).
    lp_warm_start:
        Enable the incumbent memo of the solver templates
        (:class:`repro.solvers.ModelTemplate`): solve requests whose
        bound problem matches an already-solved one bit-for-bit are
        answered from the memo without invoking the backend.  Mappings,
        objective values and deterministic solver counters are identical
        with the memo on or off (``solves`` counts requests; hits are
        additionally visible in ``warm_start_hits``).  Also an execution
        knob, excluded from stage config hashes.
    cache_path:
        Optional path of the persistent on-disk measurement cache
        (:class:`repro.measure.MeasurementCache`).  ``None`` disables
        persistence; repeated runs with the same machine model and noise
        configuration then re-measure every kernel.
    telemetry:
        Optional path of a telemetry warehouse (sqlite) to record this
        run into (:mod:`repro.telemetry`).  ``None`` (the default) keeps
        the tracer disabled: hot-path hooks cost one attribute check and
        nothing is written.  Telemetry is observational only — spans and
        metrics are run-local wall clocks, never hashed into stage
        checkpoints (this field is not part of any stage's declared
        config fields) and never able to change results: a telemetry-on
        run is bitwise-identical to a telemetry-off run.
    """

    n_basic: Optional[int] = None
    n_basic_cap: int = 18
    min_ipc: float = 0.05
    epsilon: float = 0.05
    m_repeat: int = 4
    l_repeat: int = 4
    max_resources: int = 14
    lp1_max_iterations: int = 2
    lp2_mode: str = "auto"
    lp2_exact_max_kernels: int = 400
    lp2_heuristic_rounds: int = 8
    lpaux_mode: str = "exact"
    lp1_time_limit: float = 30.0
    lp1_mip_gap: float = 0.02
    cluster_tolerance: float = 0.05
    quantize_coefficients: bool = False
    separate_extensions: bool = True
    include_singleton_in_lpaux: bool = True
    edge_threshold: float = 1e-3
    milp_time_limit: float = 120.0
    parallelism: int = 0
    lp_parallelism: int = 0
    lp_chunk_size: Optional[int] = None
    lp_warm_start: bool = True
    cache_path: Optional[str] = None
    telemetry: Optional[str] = None

    def __post_init__(self) -> None:
        if self.parallelism < 0:
            raise ValueError("parallelism must be non-negative")
        if self.lp_parallelism < 0:
            raise ValueError("lp_parallelism must be non-negative")
        if self.lp_chunk_size is not None and self.lp_chunk_size < 1:
            raise ValueError("lp_chunk_size must be positive (or None for auto)")
        if self.n_basic is not None and self.n_basic < 2:
            raise ValueError("n_basic must be at least 2 (or None for automatic sizing)")
        if self.n_basic_cap < 2:
            raise ValueError("n_basic_cap must be at least 2")
        if not 0 < self.epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        if self.lp2_mode not in ("exact", "heuristic", "auto"):
            raise ValueError("lp2_mode must be 'exact', 'heuristic' or 'auto'")
        if self.lpaux_mode not in ("exact", "heuristic"):
            raise ValueError("lpaux_mode must be 'exact' or 'heuristic'")
        if self.max_resources < 2:
            raise ValueError("max_resources must be at least 2")
        if self.m_repeat < 2 or self.l_repeat < 1:
            raise ValueError("m_repeat must be >= 2 and l_repeat >= 1")

    def config_hash(self, fields: Optional[Sequence[str]] = None) -> str:
        """Stable content hash over a subset of configuration fields.

        The stage-graph checkpoints (:mod:`repro.pipeline`) key each stage on
        the hash of *only the fields that stage declares it reads*, so editing
        an unrelated knob (say ``lp_parallelism``) never invalidates a stored
        benchmarking checkpoint.  ``fields=None`` hashes every field.

        Values are serialized with ``repr`` (floats round-trip exactly) and
        fields are hashed in sorted order, so the digest is independent of
        declaration order and of how the config instance was produced.
        """
        known = {field.name for field in dataclasses.fields(self)}
        if fields is None:
            selected = sorted(known)
        else:
            unknown = set(fields) - known
            if unknown:
                raise ValueError(
                    f"unknown PalmedConfig fields: {', '.join(sorted(unknown))}"
                )
            selected = sorted(set(fields))
        digest = hashlib.sha256()
        for name in selected:
            digest.update(f"{name}={getattr(self, name)!r}".encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    @property
    def low_ipc_threshold(self) -> float:
        """IPC below which an instruction is not a basic-instruction candidate."""
        return 1.0 - self.epsilon

    def target_basic_count(self, num_classes: int) -> int:
        """Resolve ``n_basic``: explicit value, or one per class up to the cap."""
        if self.n_basic is not None:
            return self.n_basic
        return max(2, min(num_classes, self.n_basic_cap))

    def for_fast_tests(self) -> "PalmedConfig":
        """A cheaper configuration used by the unit-test suite.

        The time limits are headroom, not budgets: at this problem scale
        every solve terminates by optimality well inside them, so results
        do not depend on machine speed.  They are set high enough that a
        loaded CI machine cannot clip an almost-finished solve into a
        worse (and load-dependent) incumbent.
        """
        return PalmedConfig(
            n_basic=None,
            n_basic_cap=10,
            max_resources=10,
            lp1_max_iterations=1,
            lp1_time_limit=30.0,
            lp2_mode="exact",
            milp_time_limit=60.0,
        )
