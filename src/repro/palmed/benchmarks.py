"""Microbenchmark construction and measurement bookkeeping.

The paper's microbenchmark generator emits unrolled assembly loops; here a
"benchmark" is simply a :class:`Microkernel` handed to the measurement
backend.  This module centralizes the kernel shapes PALMED uses —

* ``a``                      (single-instruction kernels),
* ``a^IPC(a) b^IPC(b)``      (the *quadratic* pair benchmarks),
* ``a^M b``                  (the anti-degeneracy seed of LP1),
* ``i^IPC(i) · sat[r]^L``    (the saturating benchmarks of LPAUX),

— as well as the coefficient quantization of Sec. VI-A (multiplicities are
rounded so that they differ by at most ε from the ideal values) and a
:class:`BenchmarkRunner` that memoizes measurements and counts how many
distinct benchmarks were executed.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional

from repro.isa.instruction import Extension, Instruction
from repro.mapping.microkernel import Microkernel
from repro.palmed.config import PalmedConfig
from repro.simulator.backend import MeasurementBackend


def quantize_multiplicity(value: float, epsilon: float = 0.05, max_denominator: int = 64) -> float:
    """Round a multiplicity to a small rational within relative tolerance ε.

    The paper rounds benchmark coefficients so that the number of repetitions
    of an instruction differs by at most 5 % from what the algorithm asks
    for (e.g. ``a^0.06 b^1`` becomes ``a^1 b^20`` after scaling).  For the
    purposes of kernel construction it is enough to snap each multiplicity to
    the closest small rational within the tolerance.
    """
    if value <= 0:
        raise ValueError("multiplicity must be positive")
    best = Fraction(value).limit_denominator(max_denominator)
    quantized = float(best)
    if quantized <= 0:
        quantized = 1.0 / max_denominator
    if abs(quantized - value) > epsilon * value:
        # The rational approximation failed the tolerance (possible for very
        # small values with a bounded denominator); fall back to the raw value.
        return value
    return quantized


def quantize_kernel(kernel: Microkernel, epsilon: float = 0.05) -> Microkernel:
    """Quantize every multiplicity of a kernel (see :func:`quantize_multiplicity`)."""
    return Microkernel(
        {
            instruction: quantize_multiplicity(count, epsilon)
            for instruction, count in kernel.items()
        }
    )


def mixes_vector_extensions(a: Instruction, b: Instruction) -> bool:
    """True when a kernel mixing ``a`` and ``b`` would mix SSE and AVX.

    The paper forbids such benchmarks because transitioning between vector
    widths introduces dependencies that violate the throughput model.
    """
    extensions = {a.extension, b.extension}
    return Extension.SSE in extensions and Extension.AVX in extensions


class BenchmarkRunner:
    """Measurement front-end used by every stage of the pipeline.

    Wraps a :class:`MeasurementBackend`, optionally quantizes kernel
    coefficients before measuring (mirroring the paper's generator
    limitations), and memoizes results.
    """

    def __init__(self, backend: MeasurementBackend, config: Optional[PalmedConfig] = None) -> None:
        self.backend = backend
        self.config = config if config is not None else PalmedConfig()
        self._ipc_cache: Dict[Microkernel, float] = {}

    # -- measurements -------------------------------------------------------
    def ipc(self, kernel: Microkernel) -> float:
        """Measured IPC of a kernel (quantized if the configuration asks for it)."""
        cached = self._ipc_cache.get(kernel)
        if cached is not None:
            return cached
        measured_kernel = kernel
        if self.config.quantize_coefficients:
            measured_kernel = quantize_kernel(kernel, self.config.epsilon)
        value = self.backend.ipc(measured_kernel)
        self._ipc_cache[kernel] = value
        return value

    def cycles(self, kernel: Microkernel) -> float:
        """Measured cycles per loop iteration of a kernel."""
        return kernel.size / self.ipc(kernel)

    def ipc_single(self, instruction: Instruction) -> float:
        """Measured standalone IPC of one instruction (``a`` in the paper)."""
        return self.ipc(Microkernel.single(instruction))

    @property
    def num_benchmarks(self) -> int:
        """Number of distinct microbenchmarks measured so far."""
        return self.backend.measurement_count

    # -- kernel shapes --------------------------------------------------------
    def pair_kernel(self, a: Instruction, b: Instruction) -> Microkernel:
        """The quadratic benchmark ``a^IPC(a) b^IPC(b)`` (written ``aabb``)."""
        if a == b:
            raise ValueError("pair kernels need two distinct instructions")
        return Microkernel(
            {a: max(self.ipc_single(a), self.config.min_ipc),
             b: max(self.ipc_single(b), self.config.min_ipc)}
        )

    def repeated_pair_kernel(self, a: Instruction, b: Instruction) -> Microkernel:
        """The ``a^M b`` benchmark used to stop LP1 from degenerate merges."""
        return Microkernel({a: float(self.config.m_repeat), b: 1.0})

    def saturating_benchmark(
        self, instruction: Instruction, saturating_kernel: Microkernel
    ) -> Microkernel:
        """``Ksat(i, r) = i^IPC(i) · sat[r]^L`` (Sec. V-C).

        The saturating kernel is scaled by ``L`` so that the resource it
        saturates stays the bottleneck even with the extra instruction mixed
        in, which is what lets LPAUX read off ``ρ_{i,r}``.
        """
        own = Microkernel.single(
            instruction, max(self.ipc_single(instruction), self.config.min_ipc)
        )
        return own + saturating_kernel.scaled(float(self.config.l_repeat))
