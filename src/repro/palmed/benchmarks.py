"""Microbenchmark construction and measurement bookkeeping.

The paper's microbenchmark generator emits unrolled assembly loops; here a
"benchmark" is simply a :class:`Microkernel` handed to the measurement
backend.  This module centralizes the kernel shapes PALMED uses —

* ``a``                      (single-instruction kernels),
* ``a^IPC(a) b^IPC(b)``      (the *quadratic* pair benchmarks),
* ``a^M b``                  (the anti-degeneracy seed of LP1),
* ``i^IPC(i) · sat[r]^L``    (the saturating benchmarks of LPAUX),

— as well as the coefficient quantization of Sec. VI-A (multiplicities are
rounded so that they differ by at most ε from the ideal values) and a
:class:`BenchmarkRunner` that memoizes measurements and counts how many
distinct benchmarks were executed.

The runner is also the integration point of the batched measurement layer
(:mod:`repro.measure`): :meth:`BenchmarkRunner.ipc_batch` deduplicates a
batch of kernels, serves what it can from the persistent
:class:`~repro.measure.MeasurementCache`, and hands the rest to a
:class:`~repro.measure.ParallelDispatcher` in one shot.  The scalar
:meth:`BenchmarkRunner.ipc` is a batch of size one, so both paths yield
bitwise-identical values.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.isa.instruction import Extension, Instruction
from repro.mapping.microkernel import Microkernel
from repro.measure import MeasurementCache, ParallelDispatcher, backend_fingerprint
from repro.palmed.config import PalmedConfig
from repro.simulator.backend import MeasurementBackend


def quantize_multiplicity(value: float, epsilon: float = 0.05, max_denominator: int = 64) -> float:
    """Round a multiplicity to a small rational within relative tolerance ε.

    The paper rounds benchmark coefficients so that the number of repetitions
    of an instruction differs by at most 5 % from what the algorithm asks
    for (e.g. ``a^0.06 b^1`` becomes ``a^1 b^20`` after scaling).  For the
    purposes of kernel construction it is enough to snap each multiplicity to
    the closest small rational within the tolerance.
    """
    if value <= 0:
        raise ValueError("multiplicity must be positive")
    best = Fraction(value).limit_denominator(max_denominator)
    quantized = float(best)
    if quantized <= 0:
        quantized = 1.0 / max_denominator
    if abs(quantized - value) > epsilon * value:
        # The rational approximation failed the tolerance (possible for very
        # small values with a bounded denominator); fall back to the raw value.
        return value
    return quantized


def quantize_kernel(kernel: Microkernel, epsilon: float = 0.05) -> Microkernel:
    """Quantize every multiplicity of a kernel (see :func:`quantize_multiplicity`)."""
    return Microkernel(
        {
            instruction: quantize_multiplicity(count, epsilon)
            for instruction, count in kernel.items()
        }
    )


def mixes_vector_extensions(a: Instruction, b: Instruction) -> bool:
    """True when a kernel mixing ``a`` and ``b`` would mix SSE and AVX.

    The paper forbids such benchmarks because transitioning between vector
    widths introduces dependencies that violate the throughput model.
    """
    extensions = {a.extension, b.extension}
    return Extension.SSE in extensions and Extension.AVX in extensions


class BenchmarkRunner:
    """Measurement front-end used by every stage of the pipeline.

    Wraps a :class:`MeasurementBackend`, optionally quantizes kernel
    coefficients before measuring (mirroring the paper's generator
    limitations), and memoizes results.

    Parameters
    ----------
    backend:
        The measurement backend ("the hardware").
    config:
        Pipeline parameters; ``config.parallelism`` sizes the default
        dispatcher and ``config.cache_path`` the default persistent cache.
    cache:
        Persistent measurement cache shared across runs.  ``None`` builds
        one from ``config.cache_path`` (or disables persistence).
    dispatcher:
        Batch-execution strategy.  ``None`` builds one from
        ``config.parallelism``.
    """

    def __init__(
        self,
        backend: MeasurementBackend,
        config: Optional[PalmedConfig] = None,
        cache: Optional[MeasurementCache] = None,
        dispatcher: Optional[ParallelDispatcher] = None,
    ) -> None:
        self.backend = backend
        self.config = config if config is not None else PalmedConfig()
        if cache is None and self.config.cache_path is not None:
            cache = MeasurementCache(self.config.cache_path)
        self.cache = cache
        self.dispatcher = (
            dispatcher
            if dispatcher is not None
            else ParallelDispatcher(workers=self.config.parallelism)
        )
        self._fingerprint = backend_fingerprint(backend) if cache is not None else None
        self._ipc_cache: Dict[Microkernel, float] = {}
        #: IPC keyed by the kernel actually handed to the backend
        #: (post-quantization); several requested kernels may share one.
        self._measured_ipc: Dict[Microkernel, float] = {}
        self._num_measured = 0
        self._num_cache_served = 0

    # -- measurements -------------------------------------------------------
    def ipc(self, kernel: Microkernel) -> float:
        """Measured IPC of a kernel (quantized if the configuration asks for it)."""
        cached = self._ipc_cache.get(kernel)
        if cached is not None:
            return cached
        return self.ipc_batch([kernel])[0]

    def ipc_batch(self, kernels: Sequence[Microkernel]) -> List[float]:
        """Measured IPC of every kernel, in input order.

        The batch is deduplicated, served from the runner's memo and the
        persistent cache where possible, and the remaining kernels are
        measured in one dispatcher call (sequentially or over a process
        pool, per the configuration).  Values are bitwise identical to the
        scalar :meth:`ipc` path regardless of batching, worker count or
        cache state.
        """
        kernels = list(kernels)
        to_measure: List[Microkernel] = []
        queued = set()
        for kernel in kernels:
            if kernel in self._ipc_cache:
                continue
            measured_kernel = self._quantized(kernel)
            if measured_kernel in self._measured_ipc or measured_kernel in queued:
                continue
            if self.cache is not None and self._fingerprint is not None:
                value = self.cache.lookup(self._fingerprint, measured_kernel)
                if value is not None:
                    self._measured_ipc[measured_kernel] = value
                    self._num_cache_served += 1
                    continue
            queued.add(measured_kernel)
            to_measure.append(measured_kernel)

        if to_measure:
            values = self.dispatcher.measure(self.backend, to_measure)
            for measured_kernel, value in zip(to_measure, values):
                self._measured_ipc[measured_kernel] = value
                self._num_measured += 1
                if self.cache is not None and self._fingerprint is not None:
                    self.cache.store(self._fingerprint, measured_kernel, value)

        results: List[float] = []
        for kernel in kernels:
            value = self._ipc_cache.get(kernel)
            if value is None:
                value = self._measured_ipc[self._quantized(kernel)]
                self._ipc_cache[kernel] = value
            results.append(value)
        return results

    def _quantized(self, kernel: Microkernel) -> Microkernel:
        """The kernel actually handed to the backend for measurement."""
        if self.config.quantize_coefficients:
            return quantize_kernel(kernel, self.config.epsilon)
        return kernel

    def cycles(self, kernel: Microkernel) -> float:
        """Measured cycles per loop iteration of a kernel."""
        return kernel.size / self.ipc(kernel)

    def ipc_single(self, instruction: Instruction) -> float:
        """Measured standalone IPC of one instruction (``a`` in the paper)."""
        return self.ipc(Microkernel.single(instruction))

    def prefetch(self, kernels: Iterable[Microkernel]) -> None:
        """Warm the runner's memo for a set of kernels in one batch.

        Used by the pipeline stages to front-load their measurement demand
        (and thus benefit from parallel dispatch) before entering code that
        consumes measurements one at a time.
        """
        self.ipc_batch(list(kernels))

    def preload(self, measurements: Mapping[Microkernel, float]) -> None:
        """Warm the memo with already-known measurements, without counting.

        Used by the stage-graph executor (:mod:`repro.pipeline`) when a stage
        is served from a checkpoint: the measurements that stage consumed on
        its original run are replayed into the memo so later *live* stages
        observe exactly the memo state a cold run would have left behind —
        same values, and the same "distinct benchmarks" accounting (a kernel
        replayed here was already counted by the stage that measured it, and
        is not counted again).
        """
        for kernel, value in measurements.items():
            self._ipc_cache.setdefault(kernel, float(value))
            self._measured_ipc.setdefault(self._quantized(kernel), float(value))

    @property
    def num_benchmarks(self) -> int:
        """Number of distinct microbenchmarks this runner asked for.

        Counts kernels actually measured this run plus kernels served from
        the persistent cache (both correspond to generated microbenchmarks
        in the paper's Table II accounting).
        """
        return self._num_measured + self._num_cache_served

    @property
    def num_benchmarks_measured(self) -> int:
        """Distinct kernels measured on the backend during this run."""
        return self._num_measured

    @property
    def num_benchmarks_cached(self) -> int:
        """Distinct kernels served from the persistent cache this run."""
        return self._num_cache_served

    def flush_cache(self) -> None:
        """Persist the measurement cache to disk (no-op when not configured)."""
        if self.cache is not None:
            self.cache.save()

    # -- kernel shapes --------------------------------------------------------
    def pair_kernel(self, a: Instruction, b: Instruction) -> Microkernel:
        """The quadratic benchmark ``a^IPC(a) b^IPC(b)`` (written ``aabb``)."""
        if a == b:
            raise ValueError("pair kernels need two distinct instructions")
        return Microkernel(
            {a: max(self.ipc_single(a), self.config.min_ipc),
             b: max(self.ipc_single(b), self.config.min_ipc)}
        )

    def repeated_pair_kernel(self, a: Instruction, b: Instruction) -> Microkernel:
        """The ``a^M b`` benchmark used to stop LP1 from degenerate merges."""
        return Microkernel({a: float(self.config.m_repeat), b: 1.0})

    def saturating_benchmark(
        self, instruction: Instruction, saturating_kernel: Microkernel
    ) -> Microkernel:
        """``Ksat(i, r) = i^IPC(i) · sat[r]^L`` (Sec. V-C).

        The saturating kernel is scaled by ``L`` so that the resource it
        saturates stays the bottleneck even with the extra instruction mixed
        in, which is what lets LPAUX read off ``ρ_{i,r}``.
        """
        own = Microkernel.single(
            instruction, max(self.ipc_single(instruction), self.config.min_ipc)
        )
        return own + saturating_kernel.scaled(float(self.config.l_repeat))
