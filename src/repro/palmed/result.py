"""Result of a PALMED run: the inferred mapping plus run statistics."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.mapping.conjunctive import ConjunctiveResourceMapping, UnknownInstructionError
from repro.mapping.microkernel import Microkernel
from repro.palmed.basic_selection import BasicSelectionResult
from repro.palmed.core_mapping import CoreMappingResult


@dataclass
class PalmedStats:
    """The "main features of the obtained mapping" statistics (Table II).

    All durations are measured with a monotonic clock.  ``num_benchmarks``
    counts every distinct microbenchmark the run asked for; it splits into
    ``num_benchmarks_measured`` (actually run on the backend this time) and
    ``num_benchmarks_cached`` (served from the persistent measurement
    cache, see :class:`repro.measure.MeasurementCache`).

    ``benchmarking_time`` vs ``lp_time`` reproduces the paper's Table II
    split: the complete-mapping phase's saturating-benchmark measurements
    count as benchmarking, only its weight-problem solves count as LP time.
    The ``lp_*`` counters surface the solver layer's accounting
    (:func:`repro.solvers.solver_stats`) for the mapping LPs: how many
    solves ran, how many model structures were built (template reuse shows
    as builds < solves) and how solver time splits between building and
    solving models.  ``lp_build_time``/``lp_solve_time``/``lp_rebind_time``
    are *aggregated across workers* (per-solve seconds summed,
    CPU-time-like): with ``lp_parallelism > 1`` they can legitimately
    exceed the ``lp_time`` wall clock.

    The batched solver engine adds its own attribution:
    ``lp_warm_start_hits`` (solve requests answered from a template's
    incumbent memo — ``lp_solves`` counts them too, so the request count
    is warm/cold independent), ``lp_rebinds`` (template data rebinds) and
    ``lp_chunks`` (LPAUX solve chunks executed).  All three are
    deterministic functions of the configuration.  ``lp_limit_solves``
    (backend solves stopped at a time/gap limit) and ``lp_worst_mip_gap``
    (largest reported relative MIP gap) depend on machine speed, so they
    are run-local like the wall clocks.

    Stage-graph accounting (:mod:`repro.pipeline`): ``stage_wall_clock``
    holds the per-stage wall clock — for a stage served from a checkpoint,
    the wall clock of the run that *produced* the checkpoint, so a resumed
    run reports the same stage costs as the run it continues —
    and ``stage_checkpoint_hits`` records which stages this particular run
    served from checkpoints.  The hit map (like every wall-clock field) is
    run-local: :meth:`deterministic_dict` excludes both, and the
    resume-correctness suite compares exactly that deterministic view
    bitwise between cold and resumed runs.
    """

    machine_name: str
    num_instructions_total: int
    num_benchmarkable: int
    num_instructions_mapped: int
    num_basic_instructions: int
    num_resources: int
    num_benchmarks: int
    num_equivalence_classes: int
    num_low_ipc: int
    lp1_iterations: int
    benchmarking_time: float
    lp_time: float
    total_time: float
    num_benchmarks_measured: int = 0
    num_benchmarks_cached: int = 0
    lp_solves: int = 0
    lp_model_builds: int = 0
    lp_warm_start_hits: int = 0
    lp_rebinds: int = 0
    lp_chunks: int = 0
    lp_limit_solves: int = 0
    lp_worst_mip_gap: float = 0.0
    lp_build_time: float = 0.0
    lp_solve_time: float = 0.0
    lp_rebind_time: float = 0.0
    stage_wall_clock: Dict[str, float] = field(default_factory=dict)
    stage_checkpoint_hits: Dict[str, bool] = field(default_factory=dict)

    #: Fields that describe *when/where* the run happened rather than what
    #: it computed: wall clocks (never reproducible between two executions)
    #: and the per-run checkpoint-hit map.  Everything else — every count,
    #: the machine name — is a deterministic function of the inputs and is
    #: required to match bitwise between a cold run and any resumed run.
    RUN_LOCAL_FIELDS = (
        "benchmarking_time",
        "lp_time",
        "total_time",
        "lp_build_time",
        "lp_solve_time",
        "lp_rebind_time",
        "lp_limit_solves",
        "lp_worst_mip_gap",
        "stage_wall_clock",
        "stage_checkpoint_hits",
    )

    def deterministic_dict(self) -> Dict[str, object]:
        """The run-independent view: every field except wall clocks/hits.

        This is the contract the resume suite enforces: a run resumed from
        checkpoints (after any stage-boundary interruption) must produce a
        ``deterministic_dict`` equal to the cold run's, bit for bit.
        """
        return {
            key: value
            for key, value in self.to_dict().items()
            if key not in self.RUN_LOCAL_FIELDS
        }

    def as_table_rows(self) -> List[Tuple[str, str]]:
        """Rows formatted like Table II of the paper."""
        stage_rows: List[Tuple[str, str]] = []
        for stage, wall in self.stage_wall_clock.items():
            marker = (
                " (checkpoint)" if self.stage_checkpoint_hits.get(stage) else ""
            )
            stage_rows.append((f"  stage {stage} (s)", f"{wall:.2f}{marker}"))
        return [
            ("Machine", self.machine_name),
            *stage_rows,
            ("Benchmarking time (s)", f"{self.benchmarking_time:.2f}"),
            ("LP solving time (s)", f"{self.lp_time:.2f}"),
            ("  LP solves", str(self.lp_solves)),
            ("  LP model builds", str(self.lp_model_builds)),
            ("  LP warm-start hits", str(self.lp_warm_start_hits)),
            ("  LP rebinds / chunks", f"{self.lp_rebinds} / {self.lp_chunks}"),
            ("  LP limit solves / worst gap", f"{self.lp_limit_solves} / {self.lp_worst_mip_gap:.4f}"),
            # Aggregated across workers (can exceed the wall clock above).
            ("  build / rebind / solve (s, aggregated)", f"{self.lp_build_time:.2f} / {self.lp_rebind_time:.2f} / {self.lp_solve_time:.2f}"),
            ("Overall time (s)", f"{self.total_time:.2f}"),
            ("Gen. microbenchmarks", str(self.num_benchmarks)),
            ("  measured this run", str(self.num_benchmarks_measured)),
            ("  served from cache", str(self.num_benchmarks_cached)),
            ("Resources found", str(self.num_resources)),
            ("Instructions supported", str(self.num_benchmarkable)),
            ("Instructions mapped", str(self.num_instructions_mapped)),
            ("Basic instructions", str(self.num_basic_instructions)),
            ("Equivalence classes", str(self.num_equivalence_classes)),
        ]

    def format_table(self) -> str:
        rows = self.as_table_rows()
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label.ljust(width)}  {value}" for label, value in rows)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (used by :mod:`repro.artifacts`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PalmedStats":
        """Inverse of :meth:`to_dict`.

        Unknown keys are ignored so artifacts written by a newer stats
        schema still load (the artifact registry versions the envelope, not
        every field).
        """
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})


@dataclass
class PalmedResult:
    """Everything produced by one :class:`repro.palmed.Palmed` run."""

    mapping: ConjunctiveResourceMapping
    stats: PalmedStats
    selection: BasicSelectionResult
    core: CoreMappingResult
    saturating_kernels: Dict[str, Microkernel] = field(default_factory=dict)

    # -- prediction interface -------------------------------------------------
    def supports(self, instruction: Instruction) -> bool:
        """Whether the instruction was mapped."""
        return self.mapping.supports(instruction)

    def supported_fraction(self, kernel: Microkernel) -> float:
        """Fraction of the kernel's instructions (weighted) that are mapped."""
        total = kernel.size
        supported = sum(
            count for instruction, count in kernel.items() if self.supports(instruction)
        )
        return supported / total if total else 0.0

    def predict_cycles(self, kernel: Microkernel) -> float:
        """Predicted steady-state cycles per kernel iteration."""
        return self.mapping.cycles(kernel)

    def predict_ipc(self, kernel: Microkernel) -> float:
        """Predicted steady-state IPC of a kernel.

        Raises :class:`UnknownInstructionError` if the kernel contains an
        instruction PALMED did not map.
        """
        return self.mapping.ipc(kernel)

    def predict_ipc_partial(self, kernel: Microkernel) -> Optional[float]:
        """Predict ignoring unmapped instructions (paper's PMEvo protocol).

        Unsupported instructions are treated as using no resource at all;
        returns ``None`` when no instruction of the kernel is supported.
        """
        supported = {
            instruction: count
            for instruction, count in kernel.items()
            if self.supports(instruction)
        }
        if not supported:
            return None
        reduced = Microkernel(supported)
        cycles = self.mapping.cycles(reduced)
        if cycles <= 0:
            return None
        return kernel.size / cycles

    def bottleneck(self, kernel: Microkernel) -> Tuple[str, ...]:
        """The abstract resources limiting the kernel's throughput."""
        return self.mapping.bottlenecks(kernel)

    def explain(self, kernel: Microkernel) -> str:
        """Human-readable per-resource load report for a kernel."""
        loads = self.mapping.load_per_resource(kernel)
        cycles = max(loads.values())
        lines = [f"kernel {kernel.notation()}"]
        lines.append(f"  predicted cycles/iteration: {cycles:.3f}")
        lines.append(f"  predicted IPC             : {kernel.size / cycles:.3f}")
        for resource in sorted(loads, key=lambda r: -loads[r]):
            marker = "  <-- bottleneck" if abs(loads[resource] - cycles) < 1e-9 else ""
            lines.append(f"    {resource:12s} load {loads[resource]:.3f}{marker}")
        return "\n".join(lines)
