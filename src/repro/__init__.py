"""repro — a reproduction of PALMED (CGO 2022).

PALMED automatically builds a *conjunctive resource mapping* of a superscalar
CPU — a bipartite model in which every instruction uses a set of abstract
resources — from nothing but elapsed-cycle measurements of automatically
generated microbenchmarks.  The mapping predicts the steady-state throughput
(IPC) of any dependency-free instruction mix with a closed formula.

This package contains the full system described in the paper plus the
substrates needed to run it without proprietary hardware or tools, and a
serving layer on top: inferred mappings persist as fingerprint-keyed
artifacts (:mod:`repro.artifacts`) and serve batched throughput
predictions through a vectorized engine (:mod:`repro.predictors.batch`).
See ``docs/architecture.md`` for the layer tour, ``docs/serving.md`` for
the characterize-once/predict-forever workflow and ``docs/paper_map.md``
for the module ↔ paper-section map.

Quickstart
----------
>>> from repro import build_toy_machine, PortModelBackend, Palmed
>>> machine = build_toy_machine()
>>> backend = PortModelBackend(machine)
>>> palmed = Palmed(backend, machine.benchmarkable_instructions())
>>> result = palmed.run()                                   # doctest: +SKIP
>>> result.mapping.ipc(...)                                 # doctest: +SKIP
"""

from repro.isa import (
    Extension,
    Instruction,
    InstructionKind,
    build_default_isa,
    build_small_isa,
)
from repro.mapping import (
    ConjunctiveResourceMapping,
    DisjunctivePortMapping,
    Microkernel,
    MicroOp,
    build_dual,
)
from repro.machines import (
    Machine,
    build_machine,
    build_skylake_like_machine,
    build_toy_machine,
    build_zen_like_machine,
)
from repro.measure import (
    MeasurementCache,
    ParallelDispatcher,
)
from repro.runtime import ParallelRuntime
from repro.simulator import (
    GreedyCycleSimulator,
    LpReferenceBackend,
    MeasurementBackend,
    MeasurementNoise,
    PortModelBackend,
)

__version__ = "1.0.0"

__all__ = [
    "ArtifactRegistry",
    "ConjunctiveResourceMapping",
    "DisjunctivePortMapping",
    "MappingArtifact",
    "Extension",
    "GreedyCycleSimulator",
    "Instruction",
    "InstructionKind",
    "LpReferenceBackend",
    "Machine",
    "MeasurementBackend",
    "MeasurementCache",
    "MeasurementNoise",
    "MicroOp",
    "ParallelDispatcher",
    "ParallelRuntime",
    "Microkernel",
    "Palmed",
    "PalmedConfig",
    "PalmedResult",
    "PortModelBackend",
    "build_default_isa",
    "build_dual",
    "build_machine",
    "build_skylake_like_machine",
    "build_small_isa",
    "build_toy_machine",
    "build_zen_like_machine",
    "__version__",
]


def __getattr__(name):
    # The PALMED pipeline and the artifact registry are imported lazily to
    # keep `import repro` cheap for users who only need the mapping/machine
    # substrates.
    if name in ("Palmed", "PalmedConfig", "PalmedResult"):
        from repro import palmed as _palmed

        return getattr(_palmed, name)
    if name in ("ArtifactRegistry", "MappingArtifact"):
        from repro import artifacts as _artifacts

        return getattr(_artifacts, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
