"""Basic blocks and benchmark suites."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.mapping.microkernel import Microkernel


@dataclass(frozen=True)
class BasicBlock:
    """One basic block of a benchmark suite.

    The evaluation (Sec. VI.B) turns each extracted basic block into a
    microkernel with the same instruction mix and compares the predicted
    throughput of that microkernel across tools, weighting each block by how
    often it was executed.
    """

    name: str
    kernel: Microkernel
    weight: float = 1.0
    source: str = ""

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("basic-block weight must be positive")

    @property
    def num_instructions(self) -> float:
        return self.kernel.size

    def instructions(self) -> Tuple[Instruction, ...]:
        return self.kernel.instructions


@dataclass
class BenchmarkSuite:
    """A named collection of weighted basic blocks."""

    name: str
    blocks: List[BasicBlock] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [block.name for block in self.blocks]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate basic-block names in suite {self.name!r}")

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def total_weight(self) -> float:
        return sum(block.weight for block in self.blocks)

    def add(self, block: BasicBlock) -> None:
        if any(existing.name == block.name for existing in self.blocks):
            raise ValueError(f"duplicate basic-block name {block.name!r}")
        self.blocks.append(block)

    def filtered(self, predicate: Callable[[BasicBlock], bool]) -> "BenchmarkSuite":
        """A new suite keeping only the blocks satisfying ``predicate``."""
        return BenchmarkSuite(
            name=self.name, blocks=[block for block in self.blocks if predicate(block)]
        )

    def restricted_to(self, instructions: Iterable[Instruction]) -> "BenchmarkSuite":
        """Keep only blocks whose instructions are all in ``instructions``."""
        allowed = set(instructions)
        return self.filtered(
            lambda block: all(inst in allowed for inst in block.instructions())
        )

    def instruction_histogram(self) -> Dict[Instruction, float]:
        """Total (weighted) multiplicity of every instruction across the suite."""
        histogram: Dict[Instruction, float] = {}
        for block in self.blocks:
            for instruction, count in block.kernel.items():
                histogram[instruction] = histogram.get(instruction, 0.0) + count * block.weight
        return histogram

    def summary(self) -> str:
        sizes = [block.num_instructions for block in self.blocks] or [0.0]
        return (
            f"Suite {self.name}: {len(self.blocks)} blocks, "
            f"avg {sum(sizes) / len(sizes):.1f} instructions/block, "
            f"{len(self.instruction_histogram())} distinct instructions"
        )
