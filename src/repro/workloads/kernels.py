"""Polybench kernel descriptions and their lowering to instruction mixes.

PolyBench/C kernels are dense linear-algebra and stencil loop nests.  For
throughput evaluation only the steady-state instruction mix of the innermost
loop body matters, so each kernel is described by its per-iteration operation
counts (loads, stores, FP multiplies/additions/FMAs, address updates,
compare-and-branch) and lowered onto whatever concrete instructions the
target ISA provides for those operations, in a scalar, SSE-like (128-bit) or
AVX-like (256-bit) variant — mirroring how a compiler would vectorize the
loop at different widths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.isa.instruction import Extension, Instruction, InstructionKind
from repro.mapping.microkernel import Microkernel


@dataclass(frozen=True)
class KernelSpec:
    """Per-iteration operation counts of one loop kernel."""

    name: str
    loads: int
    stores: int
    fp_mul: int
    fp_add: int
    fp_fma: int = 0
    address_ops: int = 2
    branches: int = 1
    description: str = ""


#: The PolyBench 4.2 kernels the paper's evaluation traverses (linear
#: algebra BLAS-like kernels, solvers and stencils), described by the
#: operation mix of their hot innermost loop.
KERNEL_SPECS: Dict[str, KernelSpec] = {
    spec.name: spec
    for spec in (
        KernelSpec("gemm", loads=2, stores=1, fp_mul=1, fp_add=1, fp_fma=1,
                   description="C = alpha*A*B + beta*C"),
        KernelSpec("gemver", loads=4, stores=2, fp_mul=2, fp_add=2,
                   description="vector multiplication and matrix addition"),
        KernelSpec("gesummv", loads=3, stores=1, fp_mul=2, fp_add=2,
                   description="scalar, vector and matrix multiplication"),
        KernelSpec("symm", loads=3, stores=1, fp_mul=2, fp_add=2,
                   description="symmetric matrix multiplication"),
        KernelSpec("syrk", loads=2, stores=1, fp_mul=1, fp_add=1,
                   description="symmetric rank-k update"),
        KernelSpec("syr2k", loads=3, stores=1, fp_mul=2, fp_add=2,
                   description="symmetric rank-2k update"),
        KernelSpec("trmm", loads=2, stores=1, fp_mul=1, fp_add=1,
                   description="triangular matrix multiplication"),
        KernelSpec("2mm", loads=2, stores=1, fp_mul=1, fp_add=1, fp_fma=1,
                   description="two matrix multiplications"),
        KernelSpec("3mm", loads=2, stores=1, fp_mul=1, fp_add=1, fp_fma=1,
                   description="three matrix multiplications"),
        KernelSpec("atax", loads=2, stores=1, fp_mul=1, fp_add=1,
                   description="matrix transpose and vector multiplication"),
        KernelSpec("bicg", loads=3, stores=2, fp_mul=2, fp_add=2,
                   description="BiCG sub-kernel"),
        KernelSpec("doitgen", loads=2, stores=1, fp_mul=1, fp_add=1,
                   description="multi-resolution analysis kernel"),
        KernelSpec("mvt", loads=2, stores=1, fp_mul=1, fp_add=1,
                   description="matrix-vector product and transpose"),
        KernelSpec("cholesky", loads=2, stores=1, fp_mul=1, fp_add=1, branches=2,
                   description="Cholesky decomposition"),
        KernelSpec("durbin", loads=2, stores=1, fp_mul=1, fp_add=2,
                   description="Toeplitz system solver"),
        KernelSpec("lu", loads=2, stores=1, fp_mul=1, fp_add=1, branches=2,
                   description="LU decomposition"),
        KernelSpec("trisolv", loads=2, stores=1, fp_mul=1, fp_add=1,
                   description="triangular solver"),
        KernelSpec("correlation", loads=2, stores=1, fp_mul=2, fp_add=2,
                   description="correlation computation"),
        KernelSpec("covariance", loads=2, stores=1, fp_mul=1, fp_add=2,
                   description="covariance computation"),
        KernelSpec("floyd-warshall", loads=3, stores=1, fp_mul=0, fp_add=2, branches=2,
                   description="shortest paths (additions and comparisons)"),
        KernelSpec("jacobi-1d", loads=3, stores=1, fp_mul=1, fp_add=2,
                   description="1-D Jacobi stencil"),
        KernelSpec("jacobi-2d", loads=5, stores=1, fp_mul=1, fp_add=4,
                   description="2-D Jacobi stencil"),
        KernelSpec("fdtd-2d", loads=4, stores=2, fp_mul=2, fp_add=3,
                   description="2-D finite-difference time-domain"),
        KernelSpec("heat-3d", loads=7, stores=1, fp_mul=2, fp_add=6,
                   description="3-D heat equation stencil"),
        KernelSpec("seidel-2d", loads=9, stores=1, fp_mul=1, fp_add=8,
                   description="2-D Gauss-Seidel stencil"),
        KernelSpec("adi", loads=6, stores=2, fp_mul=4, fp_add=3,
                   description="alternating-direction implicit solver"),
    )
}


def _pick(
    instructions: Sequence[Instruction],
    kind: InstructionKind,
    extension: Extension,
    index: int,
) -> Optional[Instruction]:
    """Deterministically pick the ``index``-th instruction of a kind/extension."""
    candidates = sorted(
        (inst for inst in instructions
         if inst.kind is kind and inst.extension is extension and inst.is_benchmarkable),
        key=lambda inst: inst.name,
    )
    if not candidates:
        return None
    return candidates[index % len(candidates)]


def lower_kernel(
    spec: KernelSpec,
    instructions: Sequence[Instruction],
    vector_extension: Extension = Extension.SSE,
) -> Microkernel:
    """Lower a kernel description onto concrete instructions of an ISA.

    Floating-point operations, loads and stores use the requested vector
    extension when available (falling back to SSE, then scalar forms);
    address arithmetic and loop control always use base-ISA instructions.
    FMA operations fall back to an explicit multiply + add pair when the ISA
    variant has no FMA instruction (as scalar SSE code would).
    """
    picks: List[Instruction] = []

    def extend(kind: InstructionKind, count: int, extension: Extension) -> int:
        """Append ``count`` instructions of ``kind``; return how many were placed."""
        placed = 0
        for index in range(count):
            for candidate_extension in (extension, Extension.SSE, Extension.BASE):
                instruction = _pick(instructions, kind, candidate_extension, index)
                if instruction is not None:
                    picks.append(instruction)
                    placed += 1
                    break
        return placed

    extend(InstructionKind.LOAD, spec.loads, vector_extension)
    extend(InstructionKind.STORE, spec.stores, vector_extension)
    extend(InstructionKind.FP_MUL, spec.fp_mul, vector_extension)
    extend(InstructionKind.FP_ADD, spec.fp_add, vector_extension)
    if spec.fp_fma:
        placed = 0
        if vector_extension is Extension.AVX:
            placed = extend(InstructionKind.FP_FMA, spec.fp_fma, Extension.AVX)
        if placed < spec.fp_fma:
            missing = spec.fp_fma - placed
            extend(InstructionKind.FP_MUL, missing, vector_extension)
            extend(InstructionKind.FP_ADD, missing, vector_extension)
    extend(InstructionKind.LEA, spec.address_ops // 2, Extension.BASE)
    extend(InstructionKind.INT_ALU, spec.address_ops - spec.address_ops // 2, Extension.BASE)
    extend(InstructionKind.BRANCH, spec.branches, Extension.BASE)

    if not picks:
        raise ValueError(
            f"the ISA provides no instruction usable to lower kernel {spec.name!r}"
        )
    kernel = Microkernel.from_instructions(picks)
    return _strip_forbidden_mixes(kernel, vector_extension)


def _strip_forbidden_mixes(kernel: Microkernel, preferred: Extension) -> Microkernel:
    """Ensure the lowered kernel does not mix SSE and AVX instructions.

    If both appear (because of fallbacks), the minority extension is dropped
    in favour of the preferred one — compiled loops never mix widths either.
    """
    counts = kernel.counts
    has_sse = any(inst.extension is Extension.SSE for inst in counts)
    has_avx = any(inst.extension is Extension.AVX for inst in counts)
    if not (has_sse and has_avx):
        return kernel
    drop = Extension.SSE if preferred is Extension.AVX else Extension.AVX
    remaining = {inst: c for inst, c in counts.items() if inst.extension is not drop}
    return Microkernel(remaining) if remaining else kernel
