"""SPECint2017-like basic-block generation.

SPECint workloads (gcc, perlbench, xz, mcf, ...) are dominated by scalar
integer computation, address arithmetic, conditional control flow and
irregular memory accesses, with a small amount of SIMD from the memcpy-style
library code.  The generator reproduces that mix: per-block instruction
counts are drawn from kind-level distributions measured on such workloads,
block lengths follow the short-block-heavy distribution typical of compiled
control code, and execution weights follow a heavy-tailed (log-normal-like)
distribution so a few hot blocks dominate the weighted metrics, as in the
paper's basic-block extraction.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.isa.instruction import Extension, Instruction, InstructionKind
from repro.mapping.microkernel import Microkernel
from repro.workloads.basic_block import BasicBlock, BenchmarkSuite

#: Relative frequency of each instruction kind in a SPECint-like block.
_SPEC_KIND_WEIGHTS: Dict[InstructionKind, float] = {
    InstructionKind.INT_ALU: 0.36,
    InstructionKind.LOAD: 0.20,
    InstructionKind.STORE: 0.08,
    InstructionKind.BRANCH: 0.11,
    InstructionKind.SHIFT: 0.05,
    InstructionKind.LEA: 0.06,
    InstructionKind.CMOV: 0.03,
    InstructionKind.INT_MUL: 0.03,
    InstructionKind.BIT_SCAN: 0.03,
    InstructionKind.INT_DIV: 0.01,
    InstructionKind.SIMD_LOGIC: 0.02,
    InstructionKind.SIMD_INT: 0.02,
}

#: Synthetic "benchmark" names the generated blocks are attributed to.
_SPEC_COMPONENTS = (
    "perlbench", "gcc", "mcf", "omnetpp", "xalancbmk",
    "x264", "deepsjeng", "leela", "exchange2", "xz",
)


def _group_by_kind(instructions: Sequence[Instruction]) -> Dict[InstructionKind, List[Instruction]]:
    groups: Dict[InstructionKind, List[Instruction]] = {}
    for instruction in instructions:
        groups.setdefault(instruction.kind, []).append(instruction)
    for members in groups.values():
        members.sort(key=lambda inst: inst.name)
    return groups


def generate_spec_like_suite(
    instructions: Sequence[Instruction],
    n_blocks: int = 200,
    seed: int = 0,
    min_block_size: int = 3,
    max_block_size: int = 24,
    name: str = "SPEC2017-like",
) -> BenchmarkSuite:
    """Generate a SPECint-like suite over the given (benchmarkable) instructions.

    Vector instructions wider than 128 bits are avoided (SPECint binaries are
    overwhelmingly scalar/SSE), which also keeps every generated block free
    of SSE/AVX mixing.
    """
    if n_blocks <= 0:
        raise ValueError("n_blocks must be positive")
    rng = random.Random(seed)
    usable = [
        inst
        for inst in instructions
        if inst.is_benchmarkable and inst.extension is not Extension.AVX
    ]
    groups = _group_by_kind(usable)
    kinds = [kind for kind in _SPEC_KIND_WEIGHTS if kind in groups]
    if not kinds:
        raise ValueError("no usable instruction kinds for a SPEC-like suite")
    weights = [_SPEC_KIND_WEIGHTS[kind] for kind in kinds]

    suite = BenchmarkSuite(name=name)
    for index in range(n_blocks):
        component = _SPEC_COMPONENTS[index % len(_SPEC_COMPONENTS)]
        # Short blocks dominate compiled control code.
        size = min(
            max_block_size,
            max(min_block_size, int(rng.expovariate(1.0 / 7.0)) + min_block_size),
        )
        picked: List[Instruction] = []
        for _ in range(size):
            kind = rng.choices(kinds, weights=weights, k=1)[0]
            picked.append(rng.choice(groups[kind]))
        weight = rng.lognormvariate(0.0, 1.6)
        suite.add(
            BasicBlock(
                name=f"{component}.bb{index:04d}",
                kernel=Microkernel.from_instructions(picked),
                weight=weight,
                source=component,
            )
        )
    return suite
