"""PolyBench/C-like basic-block suite generation.

The paper gathers the QEMU translation blocks executed by PolyBench/C 4.2
together with their execution counts.  The synthetic equivalent lowers the
hot loop body of every PolyBench kernel (see :mod:`repro.workloads.kernels`)
onto the target ISA, in scalar-SSE and AVX variants, and adds the small
amount of surrounding scalar bookkeeping code (loop prologues, index
updates) that real traces contain.  Execution weights reflect the trip
counts of the loop nests: the innermost-loop blocks dominate.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.isa.instruction import Extension, Instruction, InstructionKind
from repro.mapping.microkernel import Microkernel
from repro.workloads.basic_block import BasicBlock, BenchmarkSuite
from repro.workloads.kernels import KERNEL_SPECS, lower_kernel


def _bookkeeping_block(
    instructions: Sequence[Instruction], rng: random.Random, index: int
) -> Microkernel:
    """A small scalar block as found around the hot loops (index updates, tests)."""
    base = [
        inst
        for inst in instructions
        if inst.extension is Extension.BASE and inst.is_benchmarkable
        and inst.kind in (
            InstructionKind.INT_ALU,
            InstructionKind.LEA,
            InstructionKind.BRANCH,
            InstructionKind.LOAD,
            InstructionKind.CMOV,
        )
    ]
    base.sort(key=lambda inst: inst.name)
    if not base:
        raise ValueError("the ISA has no scalar instructions for bookkeeping blocks")
    size = rng.randint(3, 8)
    picked = [base[(index * 7 + offset * 3) % len(base)] for offset in range(size)]
    return Microkernel.from_instructions(picked)


def generate_polybench_like_suite(
    instructions: Sequence[Instruction],
    seed: int = 0,
    include_avx: bool = True,
    bookkeeping_blocks: int = 30,
    name: str = "Polybench-like",
) -> BenchmarkSuite:
    """Generate the PolyBench-like suite over the given instructions.

    Every kernel of :data:`repro.workloads.kernels.KERNEL_SPECS` contributes
    its innermost-loop block in an SSE variant (always) and an AVX variant
    (when ``include_avx`` and the ISA has AVX instructions), with trip-count
    weights; a configurable number of light bookkeeping blocks with small
    weights completes the suite.
    """
    rng = random.Random(seed)
    usable = [inst for inst in instructions if inst.is_benchmarkable]
    suite = BenchmarkSuite(name=name)

    has_avx = any(inst.extension is Extension.AVX for inst in usable)
    for kernel_name in sorted(KERNEL_SPECS):
        spec = KERNEL_SPECS[kernel_name]
        # Innermost loop executed ~N^2 or N^3 times: heavy weights.
        trip_weight = rng.lognormvariate(4.0, 1.0)
        sse_kernel = lower_kernel(spec, usable, vector_extension=Extension.SSE)
        suite.add(
            BasicBlock(
                name=f"{kernel_name}.inner.sse",
                kernel=sse_kernel,
                weight=trip_weight,
                source=kernel_name,
            )
        )
        if include_avx and has_avx:
            avx_kernel = lower_kernel(spec, usable, vector_extension=Extension.AVX)
            suite.add(
                BasicBlock(
                    name=f"{kernel_name}.inner.avx",
                    kernel=avx_kernel,
                    weight=trip_weight * 0.6,
                    source=kernel_name,
                )
            )

    for index in range(bookkeeping_blocks):
        kernel_name = sorted(KERNEL_SPECS)[index % len(KERNEL_SPECS)]
        suite.add(
            BasicBlock(
                name=f"{kernel_name}.outer{index:03d}",
                kernel=_bookkeeping_block(usable, rng, index),
                weight=rng.lognormvariate(1.0, 0.8),
                source=kernel_name,
            )
        )
    return suite
