"""Basic-block workload substrate.

The paper evaluates throughput predictions on microkernels built from the
instruction mixes of basic blocks extracted from SPECint2017 (via static
binary analysis + performance counters) and PolyBench/C (via QEMU
translation-block tracing).  Neither the binaries nor the extraction
toolchain are available here, so this package generates *synthetic suites*
with the same statistical character:

* :func:`generate_spec_like_suite` — control-flow- and integer-heavy blocks
  with realistic length and execution-weight distributions;
* :func:`generate_polybench_like_suite` — floating-point/SIMD numerical
  loop bodies lowered from explicit kernel descriptions (gemm, jacobi,
  atax, ...), in scalar, SSE-like and AVX-like variants.

Every generated block carries an execution weight used by the evaluation
harness exactly like the paper's weighted RMS error.
"""

from repro.workloads.basic_block import BasicBlock, BenchmarkSuite
from repro.workloads.spec_like import generate_spec_like_suite
from repro.workloads.polybench_like import generate_polybench_like_suite
from repro.workloads.kernels import KERNEL_SPECS, KernelSpec, lower_kernel

__all__ = [
    "BasicBlock",
    "BenchmarkSuite",
    "KERNEL_SPECS",
    "KernelSpec",
    "generate_polybench_like_suite",
    "generate_spec_like_suite",
    "lower_kernel",
]
