"""Command-line entry point: ``python -m repro``.

Runs the full PALMED pipeline on one of the bundled ground-truth machines
and prints the Table II statistics, so the pipeline has a runnable surface
beyond the ``examples/`` scripts.  The flags expose the systems knobs of
the reproduction: measurement parallelism, LP parallelism, the persistent
measurement cache and machine-readable JSON output.

Examples
--------
Characterize the toy machine::

    python -m repro --machine toy

A Skylake-like machine with a 48-instruction ISA, 4 measurement workers,
4 LP workers and a persistent cache, dumping stats as JSON::

    python -m repro --machine skl --isa-size 48 --parallelism 4 \\
        --lp-parallelism 4 --cache measurements.json --json stats.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from repro import PortModelBackend, build_machine
from repro.machines import available_machines
from repro.palmed import Palmed, PalmedConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the PALMED pipeline on a bundled machine model.",
    )
    parser.add_argument(
        "--machine",
        default="toy",
        choices=sorted(available_machines()),
        help="ground-truth machine model to characterize (default: toy)",
    )
    parser.add_argument(
        "--isa-size",
        type=int,
        default=48,
        help="synthetic ISA size for the non-toy machines (default: 48)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="ISA generation seed (default: 0)"
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=0,
        help="measurement worker processes (0 = in-process, the default)",
    )
    parser.add_argument(
        "--lp-parallelism",
        type=int,
        default=0,
        help="LPAUX solver worker processes (0 = in-process, the default)",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="persistent measurement-cache file (default: no persistence)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the run statistics as JSON to this file ('-' for stdout)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use the cheap test configuration (smaller LPs, tighter caps)",
    )
    parser.add_argument(
        "--show-mapping",
        action="store_true",
        help="also print the inferred instruction -> resource usage table",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    config = PalmedConfig().for_fast_tests() if args.fast else PalmedConfig()
    config = dataclasses.replace(
        config,
        parallelism=args.parallelism,
        lp_parallelism=args.lp_parallelism,
        cache_path=args.cache,
    )

    machine = build_machine(
        args.machine, n_instructions=args.isa_size, seed=args.seed
    )
    backend = PortModelBackend(machine)
    palmed = Palmed(backend, machine.benchmarkable_instructions(), config)
    result = palmed.run()

    print(result.stats.format_table())
    if args.show_mapping:
        print()
        print(result.mapping.table())

    if args.json is not None:
        payload = {
            "stats": dataclasses.asdict(result.stats),
            "config": dataclasses.asdict(config),
            "mapping": result.mapping.to_dict(),
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
