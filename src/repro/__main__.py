"""Command-line entry point: ``python -m repro``.

This module is a thin, stable shim over the :mod:`repro.cli` package
(one module per subcommand group); the historical import surface
(``build_parser``, ``build_command_parser``, ``main``) is preserved here.

Subcommands, all sharing the mapping-artifact registry
(:mod:`repro.artifacts`):

``characterize``
    Run the PALMED stage graph on a bundled ground-truth machine, print
    the Table II statistics and (with ``--artifacts``) persist both the
    per-stage checkpoints and the inferred mapping keyed by the machine's
    content fingerprint.  ``--resume`` skips every stage whose inputs
    match a stored checkpoint, ``--force-stage`` re-runs a named stage,
    and ``--explain`` prints the per-stage hit/miss + timing table.
``predict``
    Load the saved mapping for the machine and serve batched throughput
    predictions for a synthetic benchmark suite — no inference, just the
    closed formula over the vectorized engine.
``evaluate``
    Load the saved mapping (or, when no artifact was exported, the
    finalize-stage checkpoint) and reproduce the Fig. 4b accuracy metrics
    (coverage, weighted RMS error, Kendall's τ) against native execution,
    again without re-running the inference.
``fleet``
    Characterize several machines concurrently: whole stage graphs fanned
    over worker processes into one shared registry.
``serve``
    Run an online serving node: a stdlib JSON-per-line protocol (TCP or
    stdin/stdout) over a read-only registry, with per-machine
    micro-batching, a hot-mapping cache and admission control.
``artifacts``
    List and inspect the registry contents (fingerprints, stages, hashes,
    sizes) — the inventory a serving node has on disk.

Invoking ``python -m repro`` without a subcommand keeps the historical
behaviour (a characterization run without artifact persistence).

Examples
--------
Characterize the toy machine and store the mapping, then serve from it::

    python -m repro characterize --machine toy --artifacts artifacts/
    python -m repro predict  --machine toy --artifacts artifacts/ --suite spec
    python -m repro evaluate --machine toy --artifacts artifacts/ --suite spec

Run a serving node on the registry and list what it holds::

    python -m repro artifacts --artifacts artifacts/
    python -m repro serve --artifacts artifacts/ --port 9999

Interrupt-and-resume: the second invocation re-runs only the stages the
first one never reached (everything else is served from checkpoints)::

    python -m repro characterize --machine skl --artifacts artifacts/   # ^C
    python -m repro characterize --machine skl --artifacts artifacts/ \\
        --resume --explain

Characterize a two-machine fleet over two workers::

    python -m repro fleet --machines toy,skl --workers 2 --artifacts artifacts/
"""

from __future__ import annotations

import sys

from repro.cli import build_command_parser, build_parser, main

__all__ = ["build_command_parser", "build_parser", "main"]


if __name__ == "__main__":
    sys.exit(main())
