"""Command-line entry point: ``python -m repro``.

Exposes the characterize-once / predict-forever workflow of the paper as
three subcommands sharing a mapping-artifact registry
(:mod:`repro.artifacts`):

``characterize``
    Run the PALMED stage graph on a bundled ground-truth machine, print
    the Table II statistics and (with ``--artifacts``) persist both the
    per-stage checkpoints and the inferred mapping keyed by the machine's
    content fingerprint.  ``--resume`` skips every stage whose inputs
    match a stored checkpoint, ``--force-stage`` re-runs a named stage,
    and ``--explain`` prints the per-stage hit/miss + timing table.
``predict``
    Load the saved mapping for the machine and serve batched throughput
    predictions for a synthetic benchmark suite — no inference, just the
    closed formula over the vectorized engine.
``evaluate``
    Load the saved mapping (or, when no artifact was exported, the
    finalize-stage checkpoint) and reproduce the Fig. 4b accuracy metrics
    (coverage, weighted RMS error, Kendall's τ) against native execution,
    again without re-running the inference.
``fleet``
    Characterize several machines concurrently: whole stage graphs fanned
    over worker processes into one shared registry.

Invoking ``python -m repro`` without a subcommand keeps the historical
behaviour (a characterization run without artifact persistence).

Examples
--------
Characterize the toy machine and store the mapping, then serve from it::

    python -m repro characterize --machine toy --artifacts artifacts/
    python -m repro predict  --machine toy --artifacts artifacts/ --suite spec
    python -m repro evaluate --machine toy --artifacts artifacts/ --suite spec

Interrupt-and-resume: the second invocation re-runs only the stages the
first one never reached (everything else is served from checkpoints)::

    python -m repro characterize --machine skl --artifacts artifacts/   # ^C
    python -m repro characterize --machine skl --artifacts artifacts/ \\
        --resume --explain

Characterize a two-machine fleet over two workers::

    python -m repro fleet --machines toy,skl --workers 2 --artifacts artifacts/

A Skylake-like machine with a 48-instruction ISA, 4 measurement workers,
4 LP workers and a persistent measurement cache, dumping stats as JSON::

    python -m repro characterize --machine skl --isa-size 48 \\
        --parallelism 4 --lp-parallelism 4 \\
        --cache measurements.json --json stats.json --artifacts artifacts/
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from repro import PortModelBackend, build_machine
from repro.machines import available_machines
from repro.palmed import Palmed, PalmedConfig

#: Subcommand names; anything else falls back to the legacy flag-only CLI.
_COMMANDS = ("characterize", "predict", "evaluate", "fleet")


def _add_machine_arguments(parser: argparse.ArgumentParser) -> None:
    """The machine-selection flags shared by every subcommand."""
    parser.add_argument(
        "--machine",
        default="toy",
        choices=sorted(available_machines()),
        help="ground-truth machine model (default: toy)",
    )
    parser.add_argument(
        "--isa-size",
        type=int,
        default=48,
        help="synthetic ISA size for the non-toy machines (default: 48)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="ISA generation seed (default: 0)"
    )


def _add_suite_arguments(parser: argparse.ArgumentParser) -> None:
    """The benchmark-suite flags shared by ``predict`` and ``evaluate``."""
    parser.add_argument(
        "--suite",
        default="spec",
        choices=("spec", "polybench"),
        help="synthetic suite family to generate (default: spec)",
    )
    parser.add_argument(
        "--blocks",
        type=int,
        default=200,
        help="number of basic blocks for the spec-like suite (default: 200)",
    )
    parser.add_argument(
        "--suite-seed",
        type=int,
        default=0,
        help="suite generation seed (default: 0)",
    )


def _build_machine(args: argparse.Namespace):
    return build_machine(args.machine, n_instructions=args.isa_size, seed=args.seed)


def _build_suite(args: argparse.Namespace, machine):
    from repro.workloads import (
        generate_polybench_like_suite,
        generate_spec_like_suite,
    )

    if args.suite == "polybench":
        return generate_polybench_like_suite(machine.instructions, seed=args.suite_seed)
    return generate_spec_like_suite(
        machine.instructions, n_blocks=args.blocks, seed=args.suite_seed
    )


def _write_json(payload: object, destination: Optional[str]) -> None:
    if destination is None:
        return
    text = json.dumps(payload, indent=2, sort_keys=True)
    if destination == "-":
        print(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def _add_characterize_arguments(parser: argparse.ArgumentParser) -> None:
    """The characterization flags shared by the legacy CLI and ``characterize``."""
    parser.add_argument(
        "--parallelism",
        type=int,
        default=0,
        help="measurement worker processes (0 = in-process, the default)",
    )
    parser.add_argument(
        "--lp-parallelism",
        type=int,
        default=0,
        help="LPAUX solver worker processes (0 = in-process, the default)",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="persistent measurement-cache file (default: no persistence)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the run statistics as JSON to this file ('-' for stdout)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use the cheap test configuration (smaller LPs, tighter caps)",
    )
    parser.add_argument(
        "--show-mapping",
        action="store_true",
        help="also print the inferred instruction -> resource usage table",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="serve stages from matching checkpoints in the --artifacts "
        "registry instead of re-running them (requires --artifacts)",
    )
    parser.add_argument(
        "--force-stage",
        metavar="STAGE",
        action="append",
        default=[],
        help="re-run this stage even when a matching checkpoint exists "
        "(repeatable; downstream checkpoints stay valid when the re-run "
        "reproduces the same output)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the per-stage checkpoint hit/miss and timing table",
    )


def build_parser() -> argparse.ArgumentParser:
    """The legacy (no-subcommand) parser: one characterization run."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the PALMED pipeline on a bundled machine model.",
        epilog="subcommands: characterize | predict | evaluate — run "
        "'python -m repro <subcommand> --help' for the artifact-serving "
        "workflow (without a subcommand, a plain characterization runs)",
    )
    _add_machine_arguments(parser)
    _add_characterize_arguments(parser)
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="mapping-artifact registry directory; saves the inferred "
        "mapping keyed by the machine fingerprint",
    )
    return parser


def _run_characterize(args: argparse.Namespace) -> int:
    """Shared implementation of the legacy CLI and ``characterize``."""
    config = PalmedConfig().for_fast_tests() if args.fast else PalmedConfig()
    config = dataclasses.replace(
        config,
        parallelism=args.parallelism,
        lp_parallelism=args.lp_parallelism,
        cache_path=args.cache,
    )

    registry = None
    if args.artifacts is not None:
        from repro.artifacts import ArtifactRegistry

        registry = ArtifactRegistry(args.artifacts)
    if (args.resume or args.force_stage) and registry is None:
        print(
            "error: --resume/--force-stage need a checkpoint registry; "
            "pass --artifacts DIR",
            file=sys.stderr,
        )
        return 2

    machine = _build_machine(args)
    backend = PortModelBackend(machine)
    palmed = Palmed(
        backend,
        machine.benchmarkable_instructions(),
        config,
        registry=registry,
        resume=args.resume,
        force_stages=args.force_stage,
    )
    result = palmed.run()

    if args.explain:
        print(palmed.explain())
        print()
    print(result.stats.format_table())
    if args.show_mapping:
        print()
        print(result.mapping.table())

    if registry is not None:
        path = registry.save_result(result, machine)
        print(f"\nMapping artifact saved to {path}")

    _write_json(
        {
            "stats": dataclasses.asdict(result.stats),
            "config": dataclasses.asdict(config),
            "mapping": result.mapping.to_dict(),
        },
        args.json,
    )
    return 0


def _load_artifact(args: argparse.Namespace, machine):
    from repro.artifacts import ArtifactRegistry

    return ArtifactRegistry(args.artifacts).load_for_machine(machine)


def _run_predict(args: argparse.Namespace) -> int:
    from repro.artifacts import ArtifactError
    from repro.predictors import PalmedPredictor
    from repro.predictors.batch import SuiteMatrix

    machine = _build_machine(args)
    try:
        artifact = _load_artifact(args, machine)
    except ArtifactError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    suite = _build_suite(args, machine)
    predictor = PalmedPredictor(artifact.mapping)
    lowered = SuiteMatrix([block.kernel for block in suite])
    predictions = predictor.predict_batch(lowered)

    processed = [p for p in predictions if p.ipc is not None]
    print(
        f"Served {len(predictions)} blocks of {suite.name} from artifact "
        f"{artifact.machine_fingerprint[:16]}… ({artifact.machine_name})"
    )
    if processed:
        mean_ipc = sum(p.ipc for p in processed) / len(processed)
        print(
            f"processed {len(processed)} blocks, mean predicted IPC {mean_ipc:.3f}"
        )
    shown = max(0, min(args.limit, len(predictions)))
    if shown:
        print(f"\nFirst {shown} predictions:")
        width = max(len(block.name) for block in list(suite)[:shown])
        for block, prediction in list(zip(suite, predictions))[:shown]:
            ipc = "unsupported" if prediction.ipc is None else f"{prediction.ipc:.3f}"
            print(f"  {block.name.ljust(width)}  IPC {ipc}")

    _write_json(
        {
            "machine": artifact.machine_name,
            "machine_fingerprint": artifact.machine_fingerprint,
            "suite": suite.name,
            "predictions": [
                {
                    "block": block.name,
                    "ipc": prediction.ipc,
                    "supported_fraction": prediction.supported_fraction,
                }
                for block, prediction in zip(suite, predictions)
            ],
        },
        args.json,
    )
    return 0


def _run_evaluate(args: argparse.Namespace) -> int:
    from repro.artifacts import ArtifactError, ArtifactNotFoundError, ArtifactRegistry
    from repro.evaluation import evaluate_predictors, format_accuracy_table
    from repro.measure import MeasurementCache, backend_fingerprint
    from repro.predictors import PalmedPredictor

    machine = _build_machine(args)
    backend = PortModelBackend(machine)
    from repro.measure.fingerprint import machine_fingerprint

    fingerprint = machine_fingerprint(machine)
    try:
        artifact = _load_artifact(args, machine)
        mapping = artifact.mapping
        source = f"saved artifact {artifact.machine_fingerprint[:16]}…"
    except ArtifactNotFoundError:
        # No exported artifact — fall back to the finalize-stage checkpoint
        # left behind by a (possibly resumed) characterization, so the
        # harness consumes the pipeline's own checkpoints instead of
        # requiring a re-run.
        from repro.pipeline import load_final_outcome

        registry = ArtifactRegistry(args.artifacts)
        final = load_final_outcome(registry, backend_fingerprint(backend))
        if final is None:
            print(
                f"error: no mapping artifact and no finalize-stage checkpoint "
                f"for machine {machine.name!r} under {args.artifacts} — run "
                f"the characterization first (python -m repro characterize)",
                file=sys.stderr,
            )
            return 1
        mapping = final.mapping
        source = "finalize-stage checkpoint"
    except ArtifactError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    suite = _build_suite(args, machine)
    cache = MeasurementCache(args.cache) if args.cache else None
    evaluation = evaluate_predictors(
        backend,
        suite,
        [PalmedPredictor(mapping)],
        machine_name=machine.name,
        workers=args.workers,
        cache=cache,
    )
    print(f"Fig. 4b metrics from {source} (no inference re-run)")
    print(format_accuracy_table([evaluation]))

    _write_json(
        {
            "machine": machine.name,
            "machine_fingerprint": fingerprint,
            "suite": suite.name,
            "metrics": {
                metrics.tool: metrics.as_row() for metrics in evaluation.all_metrics()
            },
        },
        args.json,
    )
    return 0


def _run_fleet(args: argparse.Namespace) -> int:
    """Characterize several machines concurrently into one registry."""
    from repro.pipeline import FleetMachine, FleetRunner

    config = PalmedConfig().for_fast_tests() if args.fast else PalmedConfig()
    specs = [
        FleetMachine(machine=name.strip(), isa_size=args.isa_size, seed=args.seed)
        for name in args.machines.split(",")
        if name.strip()
    ]
    if not specs:
        print("error: --machines needs at least one machine name", file=sys.stderr)
        return 2
    unknown = [spec.machine for spec in specs if spec.machine not in available_machines()]
    if unknown:
        print(
            f"error: unknown machine(s) {', '.join(unknown)}; available: "
            f"{', '.join(sorted(available_machines()))}",
            file=sys.stderr,
        )
        return 2

    runner = FleetRunner(
        args.artifacts, config, workers=args.workers, resume=not args.no_resume
    )
    outcomes = runner.characterize(specs)
    print(
        f"Characterized {len(outcomes)} machine(s) with {args.workers or 1} "
        f"worker(s) into {args.artifacts}"
    )
    print(FleetRunner.format_table(outcomes))

    _write_json(
        {
            "machines": [
                {
                    "machine": outcome.machine_name,
                    "fingerprint": outcome.machine_fingerprint,
                    "artifact": outcome.artifact_path,
                    "checkpoint_hits": outcome.checkpoint_hits,
                    "stats": outcome.stats.to_dict(),
                }
                for outcome in outcomes
            ],
        },
        args.json,
    )
    return 0


def build_command_parser() -> argparse.ArgumentParser:
    """The subcommand parser (``characterize`` / ``predict`` / ``evaluate``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PALMED pipeline and mapping-artifact serving CLI.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    characterize = subparsers.add_parser(
        "characterize",
        help="run the PALMED inference and save the mapping artifact",
    )
    _add_machine_arguments(characterize)
    _add_characterize_arguments(characterize)
    characterize.add_argument(
        "--artifacts",
        metavar="DIR",
        required=True,
        help="mapping-artifact registry directory to save into",
    )
    characterize.set_defaults(handler=_run_characterize)

    predict = subparsers.add_parser(
        "predict",
        help="serve batched predictions from a saved mapping artifact",
    )
    _add_machine_arguments(predict)
    _add_suite_arguments(predict)
    predict.add_argument(
        "--artifacts", metavar="DIR", required=True, help="registry directory"
    )
    predict.add_argument(
        "--limit",
        type=int,
        default=10,
        help="number of per-block predictions to print (default: 10)",
    )
    predict.add_argument("--json", metavar="PATH", default=None)
    predict.set_defaults(handler=_run_predict)

    evaluate = subparsers.add_parser(
        "evaluate",
        help="reproduce the Fig. 4b metrics from a saved mapping artifact",
    )
    _add_machine_arguments(evaluate)
    _add_suite_arguments(evaluate)
    evaluate.add_argument(
        "--artifacts", metavar="DIR", required=True, help="registry directory"
    )
    evaluate.add_argument(
        "--workers",
        type=int,
        default=0,
        help="native-measurement worker processes (default: in-process)",
    )
    evaluate.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="persistent measurement-cache file for the native IPCs",
    )
    evaluate.add_argument("--json", metavar="PATH", default=None)
    evaluate.set_defaults(handler=_run_evaluate)

    fleet = subparsers.add_parser(
        "fleet",
        help="characterize several machines concurrently into one registry",
    )
    fleet.add_argument(
        "--machines",
        required=True,
        help="comma-separated machine names (e.g. 'toy,skl,zen')",
    )
    fleet.add_argument(
        "--isa-size",
        type=int,
        default=48,
        help="synthetic ISA size for the non-toy machines (default: 48)",
    )
    fleet.add_argument(
        "--seed", type=int, default=0, help="ISA generation seed (default: 0)"
    )
    fleet.add_argument(
        "--workers",
        type=int,
        default=0,
        help="machine-level worker processes (0 = sequential, the default)",
    )
    fleet.add_argument(
        "--artifacts", metavar="DIR", required=True, help="registry directory"
    )
    fleet.add_argument(
        "--fast",
        action="store_true",
        help="use the cheap test configuration (smaller LPs, tighter caps)",
    )
    fleet.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore existing stage checkpoints (default: resume from them)",
    )
    fleet.add_argument("--json", metavar="PATH", default=None)
    fleet.set_defaults(handler=_run_fleet)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and not argv[0].startswith("-"):
        # Any leading word is (or was meant to be) a subcommand: let the
        # command parser handle it so typos report the valid choices
        # instead of falling through to the flag-only legacy parser.
        args = build_command_parser().parse_args(argv)
        return args.handler(args)
    args = build_parser().parse_args(argv)
    return _run_characterize(args)


if __name__ == "__main__":
    sys.exit(main())
