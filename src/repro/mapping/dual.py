"""∇-dual construction: disjunctive → conjunctive mapping (Appendix A).

Definition A.5 of the paper: given a disjunctive mapping with port set ``R``
and a family ``∇`` of subsets of ``R``, the ∇-dual conjunctive mapping has
one abstract resource ``r_J`` of throughput ``|J|`` per ``J ∈ ∇``, and a µOP
with admissible-port set ``P`` uses ``r_J`` whenever ``P ⊆ J``.

Theorem A.2 shows that with ``∇`` large enough (in particular when it
contains the saturated port sets of optimal assignments) the dual mapping
predicts exactly the same execution time as the disjunctive LP.  In
practice the paper builds ``∇`` by closing the µOP port sets under union of
intersecting sets, which is what :func:`nabla_closure` implements; combined
resources formed from *disjoint* sets are never bottlenecks (their average
load is dominated by one of the parts), so the closure is sufficient.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.isa.instruction import Instruction
from repro.mapping.conjunctive import ConjunctiveResourceMapping
from repro.mapping.disjunctive import DisjunctivePortMapping


def nabla_closure(port_sets: Iterable[FrozenSet[str]]) -> Set[FrozenSet[str]]:
    """Close a family of port sets under union of intersecting members.

    Starting from the admissible-port sets of the µOPs, repeatedly add the
    union of any two members that share at least one port, until a fixpoint
    is reached.  The result is the ``∇`` used to build the dual mapping.
    """
    closure: Set[FrozenSet[str]] = {frozenset(s) for s in port_sets if s}
    changed = True
    while changed:
        changed = False
        members = sorted(closure, key=lambda s: (len(s), sorted(s)))
        for i, left in enumerate(members):
            for right in members[i + 1 :]:
                if left & right:
                    union = left | right
                    if union not in closure:
                        closure.add(union)
                        changed = True
    return closure


def resource_name(ports: FrozenSet[str]) -> str:
    """Canonical abstract-resource name for a combined port set.

    Example: ``{"p1", "p0"}`` becomes ``"r(p0+p1)"`` — mirroring the paper's
    ``r01`` notation while staying unambiguous for arbitrary port names.
    """
    return "r(" + "+".join(sorted(ports)) + ")"


def build_dual(
    disjunctive: DisjunctivePortMapping,
    nabla: Optional[Iterable[FrozenSet[str]]] = None,
    prune: bool = True,
) -> ConjunctiveResourceMapping:
    """Build the ∇-dual conjunctive mapping of a disjunctive port mapping.

    Parameters
    ----------
    disjunctive:
        The ground-truth tripartite mapping.
    nabla:
        The family of combined port sets to materialize as abstract
        resources.  Defaults to :func:`nabla_closure` over the µOP port sets.
    prune:
        Drop combined resources whose load is dominated by another resource
        for every possible kernel (they can never be the bottleneck), as the
        paper does for e.g. ``r16`` in the running example.
    """
    if nabla is None:
        nabla = nabla_closure(
            uop.ports
            for instruction in disjunctive.instructions
            for uop in disjunctive.uops(instruction)
        )
    nabla = {frozenset(s) for s in nabla if s}

    resources: Dict[str, float] = {}
    for port_set in nabla:
        resources[resource_name(port_set)] = float(len(port_set))

    usage: Dict[Instruction, Dict[str, float]] = {}
    for instruction in disjunctive.instructions:
        uses: Dict[str, float] = {}
        for uop in disjunctive.uops(instruction):
            for port_set in nabla:
                if uop.ports <= port_set:
                    name = resource_name(port_set)
                    uses[name] = uses.get(name, 0.0) + uop.occupancy
        usage[instruction] = uses

    mapping = ConjunctiveResourceMapping(resources, usage)
    if prune:
        mapping = prune_redundant_resources(mapping)
    return mapping


def prune_redundant_resources(
    mapping: ConjunctiveResourceMapping,
) -> ConjunctiveResourceMapping:
    """Remove resources that can never be the bottleneck of any kernel.

    A resource ``r`` is redundant when another resource ``r'`` satisfies
    ``ρ_{i,r} ≤ ρ_{i,r'}`` for every instruction ``i``: whatever the kernel,
    the load of ``r`` is then at most the load of ``r'``, so dropping ``r``
    never changes ``max_r load_r``.  Ties (identical usage rows) keep the
    lexicographically smallest resource name.
    """
    instructions = mapping.instructions
    resources = list(mapping.resources)
    rows = {
        resource: tuple(mapping.rho(instruction, resource) for instruction in instructions)
        for resource in resources
    }

    kept: List[str] = []
    for resource in sorted(resources):
        dominated = False
        for other in sorted(resources):
            if other == resource:
                continue
            other_row = rows[other]
            row = rows[resource]
            if all(o >= r - 1e-12 for o, r in zip(other_row, row)):
                identical = all(abs(o - r) <= 1e-12 for o, r in zip(other_row, row))
                if identical:
                    # Keep only the lexicographically smallest of an identical group.
                    if other < resource:
                        dominated = True
                        break
                else:
                    dominated = True
                    break
        if not dominated:
            kept.append(resource)

    usage = {
        instruction: {
            resource: amount
            for resource, amount in mapping.usage_of(instruction).items()
            if resource in kept
        }
        for instruction in instructions
    }
    throughputs = {resource: mapping.throughput_of(resource) for resource in kept}
    return ConjunctiveResourceMapping(throughputs, usage)
