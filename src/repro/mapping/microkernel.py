"""Microkernels: multisets of dependency-free instructions.

Definition IV.1 of the paper: a microkernel ``K = I1^σ1 I2^σ2 ... Im^σm`` is
an infinite loop over a finite multiset of instructions without dependencies;
``|K| = Σ σi`` is the number of instructions executed per loop iteration.

Because instructions are independent, the order is irrelevant: a microkernel
is fully described by its instruction multiplicities.  Multiplicities are
kept as (possibly fractional) positive numbers — the paper itself rounds
benchmark coefficients to within a 5 % tolerance, so fractional bookkeeping
is the natural internal representation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.isa.instruction import Instruction


class Microkernel:
    """An immutable multiset of instructions with positive multiplicities.

    Examples
    --------
    >>> from repro.isa import Instruction, InstructionKind, Extension
    >>> addss = Instruction("ADDSS", InstructionKind.FP_ADD, Extension.SSE, 128)
    >>> bsr = Instruction("BSR", InstructionKind.BIT_SCAN, Extension.BASE, 64)
    >>> k = Microkernel({addss: 2, bsr: 1})
    >>> k.size
    3.0
    >>> sorted(str(i) for i in k.instructions)
    ['ADDSS', 'BSR']
    """

    __slots__ = ("_counts", "_hash")

    def __init__(self, counts: Mapping[Instruction, float]) -> None:
        cleaned: Dict[Instruction, float] = {}
        for instruction, count in counts.items():
            if not isinstance(instruction, Instruction):
                raise TypeError(f"expected Instruction, got {type(instruction).__name__}")
            count = float(count)
            if count < 0:
                raise ValueError(f"negative multiplicity {count} for {instruction}")
            if count > 0:
                cleaned[instruction] = cleaned.get(instruction, 0.0) + count
        if not cleaned:
            raise ValueError("a microkernel must contain at least one instruction")
        self._counts: Dict[Instruction, float] = cleaned
        self._hash = hash(tuple(sorted((i.name, c) for i, c in cleaned.items())))

    # -- constructors ------------------------------------------------------
    @classmethod
    def single(cls, instruction: Instruction, count: float = 1.0) -> "Microkernel":
        """The kernel made of ``count`` independent copies of one instruction."""
        return cls({instruction: count})

    @classmethod
    def from_instructions(cls, instructions: Iterable[Instruction]) -> "Microkernel":
        """Build a kernel from a sequence of instructions (with repetitions)."""
        counts: Dict[Instruction, float] = {}
        for instruction in instructions:
            counts[instruction] = counts.get(instruction, 0.0) + 1.0
        return cls(counts)

    @classmethod
    def pair(
        cls,
        a: Instruction,
        count_a: float,
        b: Instruction,
        count_b: float,
    ) -> "Microkernel":
        """The two-instruction kernel ``a^count_a b^count_b``."""
        return cls({a: count_a, b: count_b})

    # -- accessors ----------------------------------------------------------
    @property
    def counts(self) -> Dict[Instruction, float]:
        """Multiplicity of each instruction (a fresh copy)."""
        return dict(self._counts)

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """Distinct instructions of the kernel, sorted by name."""
        return tuple(sorted(self._counts, key=lambda inst: inst.name))

    @property
    def size(self) -> float:
        """``|K|``: total number of instructions per loop iteration."""
        return float(sum(self._counts.values()))

    @property
    def num_distinct(self) -> int:
        """Number of distinct instructions in the kernel."""
        return len(self._counts)

    def multiplicity(self, instruction: Instruction) -> float:
        """``σ_{K,i}`` — 0 if the instruction is not part of the kernel."""
        return self._counts.get(instruction, 0.0)

    def __contains__(self, instruction: Instruction) -> bool:
        return instruction in self._counts

    def items(self) -> Iterator[Tuple[Instruction, float]]:
        """Iterate over ``(instruction, multiplicity)`` pairs, sorted by name."""
        return iter(sorted(self._counts.items(), key=lambda kv: kv[0].name))

    # -- algebra -------------------------------------------------------------
    def scaled(self, factor: float) -> "Microkernel":
        """Multiply every multiplicity by ``factor > 0``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return Microkernel({inst: count * factor for inst, count in self._counts.items()})

    def combined(self, other: "Microkernel") -> "Microkernel":
        """The multiset union (multiplicities add up)."""
        counts = dict(self._counts)
        for inst, count in other._counts.items():
            counts[inst] = counts.get(inst, 0.0) + count
        return Microkernel(counts)

    def __add__(self, other: "Microkernel") -> "Microkernel":
        if not isinstance(other, Microkernel):
            return NotImplemented
        return self.combined(other)

    def rounded(self, ndigits: int = 6) -> "Microkernel":
        """Round multiplicities (used after coefficient quantization)."""
        return Microkernel(
            {inst: round(count, ndigits) for inst, count in self._counts.items()}
        )

    # -- dunder -------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Microkernel):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return f"Microkernel({self.notation()})"

    def notation(self) -> str:
        """Paper-style notation, e.g. ``ADDSS^2 BSR``."""
        parts = []
        for inst, count in self.items():
            if abs(count - 1.0) < 1e-12:
                parts.append(inst.name)
            elif abs(count - round(count)) < 1e-9:
                parts.append(f"{inst.name}^{int(round(count))}")
            else:
                parts.append(f"{inst.name}^{count:.3g}")
        return " ".join(parts)
