"""Port-mapping theory (Sec. IV and Appendix A of the paper).

This package contains the mathematical objects PALMED is built on:

* :class:`Microkernel` — a finite multiset of dependency-free instructions
  repeated in an infinite loop (Definition IV.1);
* :class:`DisjunctivePortMapping` — the classical tripartite
  instruction → µOP → port model, whose steady-state throughput requires
  solving a small LP (Definition A.2);
* :class:`ConjunctiveResourceMapping` — PALMED's bipartite
  instruction → abstract-resource model, whose throughput is a closed
  formula (Definitions IV.2/IV.3);
* :func:`build_dual` — the ∇-dual construction turning a disjunctive
  mapping into an equivalent conjunctive one (Definition A.5,
  Theorems A.1/A.2).
"""

from repro.mapping.microkernel import Microkernel
from repro.mapping.disjunctive import DisjunctivePortMapping, MicroOp
from repro.mapping.conjunctive import (
    ConjunctiveResourceMapping,
    UnknownInstructionError,
)
from repro.mapping.dual import build_dual, nabla_closure, prune_redundant_resources

__all__ = [
    "ConjunctiveResourceMapping",
    "DisjunctivePortMapping",
    "Microkernel",
    "MicroOp",
    "UnknownInstructionError",
    "build_dual",
    "nabla_closure",
    "prune_redundant_resources",
]
