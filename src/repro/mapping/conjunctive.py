"""Conjunctive (bipartite) resource mappings — PALMED's model.

Definition IV.2: every instruction *uses* a set of abstract resources with
rational proportions ``ρ_{i,r}``; a resource can serve one (normalized) use
per cycle.  The steady-state execution time of a microkernel is then the
closed formula

    t(K) = max_r Σ_i σ_{K,i} · ρ_{i,r}

and its throughput (IPC) is ``|K| / t(K)`` — no LP required.

The class below stores the *non-normalized* view (resources carry an
arbitrary positive throughput, instructions carry a number of uses), which
matches Fig. 1b of the paper and is the more readable form; ``normalized()``
converts to the canonical throughput-1 form of Definition IV.2.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.isa.instruction import Extension, Instruction, InstructionKind
from repro.mapping.microkernel import Microkernel


class UnknownInstructionError(KeyError):
    """Raised when predicting a kernel containing an unmapped instruction."""


class ConjunctiveResourceMapping:
    """A bipartite weighted instruction → abstract-resource mapping.

    Parameters
    ----------
    resources:
        Mapping from resource name to its throughput (uses per cycle; the
        normalized form of the paper has throughput 1 everywhere).
    usage:
        ``usage[instruction][resource]`` is the (non-normalized) number of
        uses of the resource per execution of the instruction.  Missing
        entries mean the instruction does not use the resource.
    """

    def __init__(
        self,
        resources: Mapping[str, float],
        usage: Mapping[Instruction, Mapping[str, float]],
    ) -> None:
        self._resources: Dict[str, float] = {}
        for name, throughput in resources.items():
            throughput = float(throughput)
            if throughput <= 0:
                raise ValueError(f"resource {name!r} has non-positive throughput")
            self._resources[name] = throughput

        self._usage: Dict[Instruction, Dict[str, float]] = {}
        for instruction, uses in usage.items():
            cleaned: Dict[str, float] = {}
            for resource, amount in uses.items():
                if resource not in self._resources:
                    raise ValueError(
                        f"instruction {instruction} uses unknown resource {resource!r}"
                    )
                amount = float(amount)
                if amount < 0:
                    raise ValueError(
                        f"negative usage of {resource!r} by {instruction}"
                    )
                if amount > 0:
                    cleaned[resource] = amount
            self._usage[instruction] = cleaned

    # -- accessors ----------------------------------------------------------
    @property
    def resources(self) -> Tuple[str, ...]:
        """Resource names, sorted."""
        return tuple(sorted(self._resources))

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """Mapped instructions, sorted by name."""
        return tuple(sorted(self._usage, key=lambda inst: inst.name))

    def throughput_of(self, resource: str) -> float:
        """Throughput (uses per cycle) of a resource."""
        return self._resources[resource]

    def supports(self, instruction: Instruction) -> bool:
        return instruction in self._usage

    def usage_of(self, instruction: Instruction) -> Dict[str, float]:
        """Non-normalized resource usage of one instruction."""
        if instruction not in self._usage:
            raise UnknownInstructionError(instruction.name)
        return dict(self._usage[instruction])

    def rho(self, instruction: Instruction, resource: str) -> float:
        """Normalized usage ``ρ_{i,r}`` (uses divided by resource throughput)."""
        if instruction not in self._usage:
            raise UnknownInstructionError(instruction.name)
        return self._usage[instruction].get(resource, 0.0) / self._resources[resource]

    # -- throughput ----------------------------------------------------------
    def load_per_resource(self, kernel: Microkernel) -> Dict[str, float]:
        """Normalized load placed by the kernel on every resource."""
        loads = {resource: 0.0 for resource in self._resources}
        for instruction, multiplicity in kernel.items():
            if instruction not in self._usage:
                raise UnknownInstructionError(instruction.name)
            for resource, amount in self._usage[instruction].items():
                loads[resource] += multiplicity * amount / self._resources[resource]
        return loads

    def cycles(self, kernel: Microkernel) -> float:
        """Steady-state cycles per loop iteration, ``t(K) = max_r load_r``."""
        loads = self.load_per_resource(kernel)
        return max(loads.values()) if loads else 0.0

    def ipc(self, kernel: Microkernel) -> float:
        """Steady-state instructions per cycle, ``|K| / t(K)``."""
        t_value = self.cycles(kernel)
        if t_value <= 0:
            raise ZeroDivisionError(
                f"kernel {kernel.notation()} uses no resource of this mapping"
            )
        return kernel.size / t_value

    def bottlenecks(self, kernel: Microkernel, tolerance: float = 1e-9) -> Tuple[str, ...]:
        """Resources achieving the maximum load for the kernel."""
        loads = self.load_per_resource(kernel)
        peak = max(loads.values())
        return tuple(
            sorted(name for name, load in loads.items() if load >= peak - tolerance)
        )

    # -- transformations -----------------------------------------------------
    def normalized(self) -> "ConjunctiveResourceMapping":
        """The canonical form of Definition IV.2 (all throughputs equal 1)."""
        usage = {
            instruction: {
                resource: amount / self._resources[resource]
                for resource, amount in uses.items()
            }
            for instruction, uses in self._usage.items()
        }
        return ConjunctiveResourceMapping(
            {resource: 1.0 for resource in self._resources}, usage
        )

    def restricted(self, instructions: Iterable[Instruction]) -> "ConjunctiveResourceMapping":
        """The sub-mapping for a subset of instructions."""
        subset = {}
        for instruction in instructions:
            if instruction not in self._usage:
                raise UnknownInstructionError(instruction.name)
            subset[instruction] = self._usage[instruction]
        return ConjunctiveResourceMapping(self._resources, subset)

    def with_resource(
        self,
        name: str,
        throughput: float,
        usage_per_instruction: Mapping[Instruction, float],
    ) -> "ConjunctiveResourceMapping":
        """Return a copy with one extra resource (e.g. a front-end resource)."""
        if name in self._resources:
            raise ValueError(f"resource {name!r} already exists")
        resources = dict(self._resources)
        resources[name] = float(throughput)
        usage = {inst: dict(uses) for inst, uses in self._usage.items()}
        for instruction, amount in usage_per_instruction.items():
            if instruction not in usage:
                usage[instruction] = {}
            if amount > 0:
                usage[instruction][name] = float(amount)
        return ConjunctiveResourceMapping(resources, usage)

    def with_instruction(
        self, instruction: Instruction, uses: Mapping[str, float]
    ) -> "ConjunctiveResourceMapping":
        """Return a copy with one instruction added or replaced."""
        usage = {inst: dict(u) for inst, u in self._usage.items()}
        usage[instruction] = dict(uses)
        return ConjunctiveResourceMapping(self._resources, usage)

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation of the mapping."""
        return {
            "resources": dict(self._resources),
            "instructions": {
                instruction.name: {
                    "kind": instruction.kind.value,
                    "extension": instruction.extension.value,
                    "width": instruction.width,
                    "variant": instruction.variant,
                    "usage": dict(uses),
                }
                for instruction, uses in self._usage.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ConjunctiveResourceMapping":
        """Inverse of :meth:`to_dict`."""
        resources = {str(k): float(v) for k, v in payload["resources"].items()}
        usage: Dict[Instruction, Dict[str, float]] = {}
        for name, spec in payload["instructions"].items():
            instruction = Instruction(
                name=name,
                kind=InstructionKind(spec["kind"]),
                extension=Extension(spec["extension"]),
                width=int(spec["width"]),
                variant=int(spec["variant"]),
            )
            usage[instruction] = {str(r): float(u) for r, u in spec["usage"].items()}
        return cls(resources, usage)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ConjunctiveResourceMapping":
        return cls.from_dict(json.loads(text))

    # -- reporting -------------------------------------------------------------
    def table(self, instructions: Optional[Iterable[Instruction]] = None) -> str:
        """A human-readable usage table (one row per instruction)."""
        instructions = list(instructions) if instructions is not None else list(self.instructions)
        resources = self.resources
        header = ["instruction"] + list(resources)
        rows = [header]
        for instruction in instructions:
            uses = self._usage.get(instruction, {})
            rows.append(
                [instruction.name]
                + [f"{uses.get(r, 0.0):.3g}" if uses.get(r, 0.0) else "-" for r in resources]
            )
        widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
        lines = []
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row)))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConjunctiveResourceMapping(resources={len(self._resources)}, "
            f"instructions={len(self._usage)})"
        )
