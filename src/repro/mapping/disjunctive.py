"""Disjunctive (tripartite) port mappings and their LP throughput.

The classical model (Definition A.2): an instruction decomposes into a
multiset of µOPs; every µOP may execute on any one of a set of compatible
execution ports, each port accepting one µOP per cycle (fully pipelined
units) or occupying the port for several cycles (non-pipelined units such as
dividers, modeled here by a per-µOP *occupancy*).

Computing the steady-state execution time of a microkernel under this model
requires choosing, for each µOP instance, a distribution over its compatible
ports that minimizes the maximum port load — a small linear program
(the "flow problem" of Sec. III.B).  This is exactly the computation PALMED's
conjunctive dual replaces by a closed formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

from repro.isa.instruction import Instruction
from repro.mapping.microkernel import Microkernel
from repro.solvers import Model, lin_sum


@dataclass(frozen=True)
class MicroOp:
    """A micro-operation: a set of admissible ports and a port occupancy.

    ``occupancy`` is the number of cycles the chosen port is busy with one
    instance of the µOP; 1.0 for fully pipelined units, larger for
    non-pipelined units (e.g. the divider).
    """

    ports: FrozenSet[str]
    occupancy: float = 1.0

    def __post_init__(self) -> None:
        if not self.ports:
            raise ValueError("a micro-op needs at least one admissible port")
        if self.occupancy <= 0:
            raise ValueError("occupancy must be positive")

    @classmethod
    def on(cls, *ports: str, occupancy: float = 1.0) -> "MicroOp":
        """Convenience constructor: ``MicroOp.on("p0", "p1")``."""
        return cls(ports=frozenset(ports), occupancy=occupancy)


class DisjunctivePortMapping:
    """A tripartite instruction → µOPs → ports mapping.

    Parameters
    ----------
    ports:
        The execution ports of the machine (each has throughput 1 µOP/cycle).
    mapping:
        For every instruction, the tuple of µOPs it decomposes into.
    """

    def __init__(
        self,
        ports: Sequence[str],
        mapping: Mapping[Instruction, Sequence[MicroOp]],
    ) -> None:
        if len(set(ports)) != len(ports):
            raise ValueError("duplicate port names")
        self._ports: Tuple[str, ...] = tuple(ports)
        port_set = set(self._ports)
        normalized: Dict[Instruction, Tuple[MicroOp, ...]] = {}
        for instruction, uops in mapping.items():
            uops = tuple(uops)
            if not uops:
                raise ValueError(f"instruction {instruction} has no micro-ops")
            for uop in uops:
                unknown = uop.ports - port_set
                if unknown:
                    raise ValueError(
                        f"micro-op of {instruction} uses unknown ports {sorted(unknown)}"
                    )
            normalized[instruction] = uops
        self._mapping = normalized

    # -- accessors ----------------------------------------------------------
    @property
    def ports(self) -> Tuple[str, ...]:
        return self._ports

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return tuple(sorted(self._mapping, key=lambda inst: inst.name))

    def uops(self, instruction: Instruction) -> Tuple[MicroOp, ...]:
        """The µOP decomposition of an instruction."""
        return self._mapping[instruction]

    def supports(self, instruction: Instruction) -> bool:
        return instruction in self._mapping

    def num_uops(self, instruction: Instruction) -> int:
        return len(self._mapping[instruction])

    def port_sets(self) -> Tuple[FrozenSet[str], ...]:
        """All distinct admissible-port sets appearing in the mapping."""
        seen = {uop.ports for uops in self._mapping.values() for uop in uops}
        return tuple(sorted(seen, key=lambda s: (len(s), sorted(s))))

    def restricted(self, instructions: Iterable[Instruction]) -> "DisjunctivePortMapping":
        """The sub-mapping containing only the given instructions."""
        subset = {inst: self._mapping[inst] for inst in instructions}
        return DisjunctivePortMapping(self._ports, subset)

    # -- throughput ----------------------------------------------------------
    def cycles(self, kernel: Microkernel) -> float:
        """Minimal steady-state cycles per loop iteration, ``t(K)``.

        Solves the port-assignment LP: fractional assignment of each µOP
        instance to its admissible ports minimizing the maximum port load.
        """
        assignment, t_value = self._solve_assignment(kernel)
        del assignment
        return t_value

    def ipc(self, kernel: Microkernel) -> float:
        """Steady-state instructions per cycle, ``|K| / t(K)``."""
        t_value = self.cycles(kernel)
        if t_value == 0:
            raise ZeroDivisionError("kernel with zero execution time")
        return kernel.size / t_value

    def optimal_assignment(
        self, kernel: Microkernel
    ) -> Dict[Tuple[Instruction, int, str], float]:
        """An optimal fractional µOP → port assignment for the kernel.

        Returns a dictionary keyed by ``(instruction, uop_index, port)``
        whose values are the number of µOP instances (per loop iteration)
        routed to that port.
        """
        assignment, _ = self._solve_assignment(kernel)
        return assignment

    def _solve_assignment(
        self, kernel: Microkernel
    ) -> Tuple[Dict[Tuple[Instruction, int, str], float], float]:
        for instruction in kernel.instructions:
            if instruction not in self._mapping:
                raise KeyError(f"instruction {instruction} not in the port mapping")

        model = Model("disjunctive-throughput")
        t_var = model.add_variable("t", lb=0.0)
        port_loads: Dict[str, list] = {port: [] for port in self._ports}
        variables: Dict[Tuple[Instruction, int, str], object] = {}

        for instruction, multiplicity in kernel.items():
            for uop_index, uop in enumerate(self._mapping[instruction]):
                shares = []
                for port in sorted(uop.ports):
                    var = model.add_variable(
                        f"x[{instruction.name},{uop_index},{port}]", lb=0.0
                    )
                    variables[(instruction, uop_index, port)] = var
                    shares.append(var)
                    port_loads[port].append(var * uop.occupancy)
                model.add_equality(lin_sum(shares), multiplicity)

        for port in self._ports:
            if port_loads[port]:
                model.add_constraint(lin_sum(port_loads[port]) <= t_var)
        model.minimize(t_var)
        solution = model.solve()

        assignment = {
            key: solution[var] for key, var in variables.items() if solution[var] > 1e-12
        }
        return assignment, float(solution[t_var])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DisjunctivePortMapping(ports={len(self._ports)}, "
            f"instructions={len(self._mapping)})"
        )
