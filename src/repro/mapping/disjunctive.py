"""Disjunctive (tripartite) port mappings and their LP throughput.

The classical model (Definition A.2): an instruction decomposes into a
multiset of µOPs; every µOP may execute on any one of a set of compatible
execution ports, each port accepting one µOP per cycle (fully pipelined
units) or occupying the port for several cycles (non-pipelined units such as
dividers, modeled here by a per-µOP *occupancy*).

Computing the steady-state execution time of a microkernel under this model
requires choosing, for each µOP instance, a distribution over its compatible
ports that minimizes the maximum port load — a small linear program
(the "flow problem" of Sec. III.B).  This is exactly the computation PALMED's
conjunctive dual replaces by a closed formula.

The flow LP's *structure* depends only on the kernel's instruction set (which
µOPs exist, which ports they may use); the multiplicities are pure right-hand
side data.  Each mapping therefore keeps a cache of compiled
:class:`repro.solvers.ModelTemplate` structures keyed by instruction set —
benchmark families like the quadratic ``a^x b^y`` kernels (three multiplicity
variants per pair) rebind the RHS instead of rebuilding the LP.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro.isa.instruction import Instruction
from repro.mapping.microkernel import Microkernel
from repro.solvers import ModelBuilder, ModelTemplate


@dataclass
class _FlowTemplate:
    """Compiled flow LP for one kernel instruction set (multiplicities = RHS)."""

    template: ModelTemplate
    t_col: int
    share_cols: Dict[Tuple[Instruction, int, str], int]
    uop_rows: List[Tuple[Instruction, int, int]]


@dataclass(frozen=True)
class MicroOp:
    """A micro-operation: a set of admissible ports and a port occupancy.

    ``occupancy`` is the number of cycles the chosen port is busy with one
    instance of the µOP; 1.0 for fully pipelined units, larger for
    non-pipelined units (e.g. the divider).
    """

    ports: FrozenSet[str]
    occupancy: float = 1.0

    def __post_init__(self) -> None:
        if not self.ports:
            raise ValueError("a micro-op needs at least one admissible port")
        if self.occupancy <= 0:
            raise ValueError("occupancy must be positive")

    @classmethod
    def on(cls, *ports: str, occupancy: float = 1.0) -> "MicroOp":
        """Convenience constructor: ``MicroOp.on("p0", "p1")``."""
        return cls(ports=frozenset(ports), occupancy=occupancy)


class DisjunctivePortMapping:
    """A tripartite instruction → µOPs → ports mapping.

    Parameters
    ----------
    ports:
        The execution ports of the machine (each has throughput 1 µOP/cycle).
    mapping:
        For every instruction, the tuple of µOPs it decomposes into.
    """

    def __init__(
        self,
        ports: Sequence[str],
        mapping: Mapping[Instruction, Sequence[MicroOp]],
    ) -> None:
        if len(set(ports)) != len(ports):
            raise ValueError("duplicate port names")
        self._ports: Tuple[str, ...] = tuple(ports)
        port_set = set(self._ports)
        normalized: Dict[Instruction, Tuple[MicroOp, ...]] = {}
        for instruction, uops in mapping.items():
            uops = tuple(uops)
            if not uops:
                raise ValueError(f"instruction {instruction} has no micro-ops")
            for uop in uops:
                unknown = uop.ports - port_set
                if unknown:
                    raise ValueError(
                        f"micro-op of {instruction} uses unknown ports {sorted(unknown)}"
                    )
            normalized[instruction] = uops
        self._mapping = normalized
        #: Compiled flow-LP structures keyed by kernel instruction set, LRU
        #: bounded: benchmark families reuse a set in tight succession (the
        #: three multiplicity variants of each quadratic pair, the
        #: saturating benchmarks of one instruction), so a small cache
        #: captures the reuse without retaining O(n^2) templates for the
        #: lifetime of the mapping.
        self._templates: "OrderedDict[Tuple[Instruction, ...], _FlowTemplate]" = (
            OrderedDict()
        )

    # -- accessors ----------------------------------------------------------
    @property
    def ports(self) -> Tuple[str, ...]:
        return self._ports

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return tuple(sorted(self._mapping, key=lambda inst: inst.name))

    def uops(self, instruction: Instruction) -> Tuple[MicroOp, ...]:
        """The µOP decomposition of an instruction."""
        return self._mapping[instruction]

    def supports(self, instruction: Instruction) -> bool:
        return instruction in self._mapping

    def num_uops(self, instruction: Instruction) -> int:
        return len(self._mapping[instruction])

    def port_sets(self) -> Tuple[FrozenSet[str], ...]:
        """All distinct admissible-port sets appearing in the mapping."""
        seen = {uop.ports for uops in self._mapping.values() for uop in uops}
        return tuple(sorted(seen, key=lambda s: (len(s), sorted(s))))

    def restricted(self, instructions: Iterable[Instruction]) -> "DisjunctivePortMapping":
        """The sub-mapping containing only the given instructions."""
        subset = {inst: self._mapping[inst] for inst in instructions}
        return DisjunctivePortMapping(self._ports, subset)

    # -- throughput ----------------------------------------------------------
    def cycles(self, kernel: Microkernel) -> float:
        """Minimal steady-state cycles per loop iteration, ``t(K)``.

        Solves the port-assignment LP: fractional assignment of each µOP
        instance to its admissible ports minimizing the maximum port load.
        """
        assignment, t_value = self._solve_assignment(kernel)
        del assignment
        return t_value

    def ipc(self, kernel: Microkernel) -> float:
        """Steady-state instructions per cycle, ``|K| / t(K)``."""
        t_value = self.cycles(kernel)
        if t_value == 0:
            raise ZeroDivisionError("kernel with zero execution time")
        return kernel.size / t_value

    def optimal_assignment(
        self, kernel: Microkernel
    ) -> Dict[Tuple[Instruction, int, str], float]:
        """An optimal fractional µOP → port assignment for the kernel.

        Returns a dictionary keyed by ``(instruction, uop_index, port)``
        whose values are the number of µOP instances (per loop iteration)
        routed to that port.
        """
        assignment, _ = self._solve_assignment(kernel)
        return assignment

    def _solve_assignment(
        self, kernel: Microkernel
    ) -> Tuple[Dict[Tuple[Instruction, int, str], float], float]:
        for instruction in kernel.instructions:
            if instruction not in self._mapping:
                raise KeyError(f"instruction {instruction} not in the port mapping")

        structure = self._template_for(kernel.instructions)
        for (instruction, _, row) in structure.uop_rows:
            multiplicity = kernel.multiplicity(instruction)
            structure.template.set_row_bounds(row, multiplicity, multiplicity)
        solution = structure.template.solve()

        assignment = {
            key: float(solution.x[col])
            for key, col in structure.share_cols.items()
            if solution.x[col] > 1e-12
        }
        return assignment, float(solution.x[structure.t_col])

    #: Maximum number of compiled flow LPs retained per mapping.
    _TEMPLATE_CACHE_SIZE = 256

    def _template_for(self, instructions: Tuple[Instruction, ...]) -> "_FlowTemplate":
        """The compiled flow LP for a kernel's instruction set (LRU cached)."""
        structure = self._templates.get(instructions)
        if structure is not None:
            self._templates.move_to_end(instructions)
        else:
            builder = ModelBuilder("disjunctive-throughput")
            t_col = builder.add_variable(0.0, math.inf)
            port_loads: Dict[str, List[Tuple[int, float]]] = {
                port: [] for port in self._ports
            }
            share_cols: Dict[Tuple[Instruction, int, str], int] = {}
            uop_rows: List[Tuple[Instruction, int, int]] = []

            for instruction in instructions:
                for uop_index, uop in enumerate(self._mapping[instruction]):
                    shares = []
                    for port in sorted(uop.ports):
                        col = builder.add_variable(0.0, math.inf)
                        share_cols[(instruction, uop_index, port)] = col
                        shares.append(col)
                        port_loads[port].append((col, uop.occupancy))
                    # Conservation: every µOP instance is routed somewhere;
                    # the multiplicity RHS is bound per kernel.
                    uop_rows.append(
                        (
                            instruction,
                            uop_index,
                            builder.add_row_entries(
                                shares, [1.0] * len(shares), lo=0.0, hi=0.0
                            ),
                        )
                    )

            for port in self._ports:
                if port_loads[port]:
                    row = builder.add_row(hi=0.0)
                    for col, occupancy in port_loads[port]:
                        builder.add_entry(row, col, occupancy)
                    builder.add_entry(row, t_col, -1.0)
            builder.set_objective({t_col: 1.0}, maximize=False)

            structure = _FlowTemplate(
                template=builder.build(),
                t_col=t_col,
                share_cols=share_cols,
                uop_rows=uop_rows,
            )
            self._templates[instructions] = structure
            if len(self._templates) > self._TEMPLATE_CACHE_SIZE:
                self._templates.popitem(last=False)
        return structure

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DisjunctivePortMapping(ports={len(self._ports)}, "
            f"instructions={len(self._mapping)})"
        )
