"""A Zen1-like ground-truth machine model.

AMD's Zen microarchitecture splits the execution engine into two independent
clusters: four integer ALU pipes plus two address-generation units on one
side, and four floating-point/SIMD pipes on the other, each fed by its own
scheduler.  The front-end dispatches up to 5 instructions per cycle.

The paper observes (Sec. VI) that this split is the main source of error for
PALMED on Zen1: because the inference minimizes the number of abstract
resources, the two disjoint pipelines tend to be merged into shared
resources, leading to under-predicted IPC.  Reproducing that structural
property is the purpose of this model — integer kinds only ever use the
integer pipes, FP/SIMD kinds only ever use the FP pipes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.isa.generator import build_default_isa
from repro.isa.instruction import Instruction, InstructionKind
from repro.machines.machine import Machine
from repro.mapping.disjunctive import DisjunctivePortMapping, MicroOp

ZEN_PORTS: Tuple[str, ...] = (
    # Integer cluster: 4 ALU pipes + 2 AGUs.
    "i0", "i1", "i2", "i3", "ag0", "ag1",
    # Floating-point / SIMD cluster: 4 pipes.
    "f0", "f1", "f2", "f3",
    # Store-data port shared by both clusters' stores.
    "sd",
)

_INT_ALU_PORTS = ("i0", "i1", "i2", "i3")
_AGU_PORTS = ("ag0", "ag1")
_FP_ALL = ("f0", "f1", "f2", "f3")


def _uops_for(instruction: Instruction) -> List[MicroOp]:
    """Ground-truth µOP decomposition of one instruction on the Zen model."""
    kind = instruction.kind
    variant = instruction.variant

    if kind is InstructionKind.INT_ALU:
        return [MicroOp.on(*_INT_ALU_PORTS)]
    if kind is InstructionKind.INT_MUL:
        return [MicroOp.on("i1")]
    if kind is InstructionKind.INT_DIV:
        return [MicroOp.on("i2", occupancy=8.0)]
    if kind is InstructionKind.BIT_SCAN:
        return [MicroOp.on("i2", "i3")]
    if kind is InstructionKind.SHIFT:
        return [MicroOp.on("i0", "i1")]
    if kind is InstructionKind.LEA:
        if variant % 2 == 1:
            return [MicroOp.on("i0", "i1")]
        return [MicroOp.on(*_INT_ALU_PORTS)]
    if kind is InstructionKind.CMOV:
        return [MicroOp.on("i0", "i3")]
    if kind is InstructionKind.BRANCH:
        return [MicroOp.on("i0", "i3")]
    if kind is InstructionKind.JUMP:
        return [MicroOp.on("i3")]
    if kind is InstructionKind.LOAD:
        return [MicroOp.on(*_AGU_PORTS)]
    if kind is InstructionKind.STORE:
        return [MicroOp.on(*_AGU_PORTS), MicroOp.on("sd")]
    if kind is InstructionKind.FP_ADD:
        return [MicroOp.on("f2", "f3")]
    if kind is InstructionKind.FP_MUL:
        return [MicroOp.on("f0", "f1")]
    if kind is InstructionKind.FP_FMA:
        return [MicroOp.on("f0", "f1")]
    if kind is InstructionKind.FP_DIV:
        return [MicroOp.on("f3", occupancy=8.0)]
    if kind is InstructionKind.FP_CONVERT:
        uops = [MicroOp.on("f3")]
        if variant % 2 == 1:
            uops.append(MicroOp.on("f1", "f2"))
        return uops
    if kind is InstructionKind.SIMD_INT:
        if variant % 3 == 2:
            return [MicroOp.on("f0", "f1")]
        return [MicroOp.on(*_FP_ALL)]
    if kind is InstructionKind.SIMD_LOGIC:
        return [MicroOp.on(*_FP_ALL)]
    if kind is InstructionKind.SHUFFLE:
        return [MicroOp.on("f1", "f2")]
    if kind is InstructionKind.STRING_OP:
        return [MicroOp.on("f1"), MicroOp.on("f2")]
    raise ValueError(f"unsupported instruction kind {kind}")


def build_zen_like_machine(
    isa: Optional[Sequence[Instruction]] = None,
    n_instructions: int = 280,
    seed: int = 0,
    front_end_width: float = 5.0,
) -> Machine:
    """Build the Zen1-like machine (split int/FP pipelines) over a synthetic ISA.

    On Zen1 AVX-256 instructions are double-pumped (they occupy their FP pipe
    for two cycles); the model reproduces this by doubling the occupancy of
    256-bit FP/SIMD µOPs.
    """
    instructions: Iterable[Instruction] = (
        isa if isa is not None else build_default_isa(n_instructions, seed=seed)
    )
    mapping: Dict[Instruction, Tuple[MicroOp, ...]] = {}
    for instruction in instructions:
        uops = _uops_for(instruction)
        if instruction.width >= 256 and (
            instruction.kind.is_floating_point or instruction.kind.is_simd
        ):
            uops = [
                MicroOp(ports=uop.ports, occupancy=uop.occupancy * 2.0) for uop in uops
            ]
        mapping[instruction] = tuple(uops)
    port_mapping = DisjunctivePortMapping(ZEN_PORTS, mapping)
    return Machine(
        name="ZEN1-like",
        port_mapping=port_mapping,
        front_end_width=front_end_width,
        description=(
            "Zen1-like model: split integer (4 ALU + 2 AGU) and FP/SIMD (4 pipes) "
            "clusters, 5-wide front-end, double-pumped 256-bit operations"
        ),
    )
