"""A Skylake-SP-like ground-truth machine model.

The model follows the publicly documented structure of Intel's Skylake
microarchitecture: eight execution ports behind a unified scheduler
(p0/p1/p5/p6 for computation, p2/p3 load AGUs, p4 store data, p7 simple
store AGU), a decode/rename front-end of 4 instructions per cycle, and a
non-pipelined divider hanging off port 0.

The exact per-instruction port assignment is synthetic: it is derived from
the instruction *kind* with deterministic per-variant diversity, so the
machine exposes the same structural phenomena as the real chip (shared ports
between FP add/mul/FMA, dedicated shuffle port, two-µOP stores, ...) without
claiming cycle-accuracy for any specific x86 instruction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.isa.generator import build_default_isa
from repro.isa.instruction import Instruction, InstructionKind
from repro.machines.machine import Machine
from repro.mapping.disjunctive import DisjunctivePortMapping, MicroOp

SKL_PORTS: Tuple[str, ...] = ("p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7")

_ALU_PORTS = ("p0", "p1", "p5", "p6")
_LOAD_PORTS = ("p2", "p3")
_STORE_ADDR_PORTS = ("p2", "p3", "p7")


def _uops_for(instruction: Instruction) -> List[MicroOp]:
    """Ground-truth µOP decomposition of one instruction on the SKL model."""
    kind = instruction.kind
    variant = instruction.variant

    if kind is InstructionKind.INT_ALU:
        uops = [MicroOp.on(*_ALU_PORTS)]
        # Flag-merging forms (ADC/SBB-like variants) cost an extra ALU µOP
        # restricted to the branch-capable ports.
        if variant % 4 == 3:
            uops.append(MicroOp.on("p0", "p6"))
        return uops
    if kind is InstructionKind.INT_MUL:
        return [MicroOp.on("p1")]
    if kind is InstructionKind.INT_DIV:
        # Non-pipelined integer divider: the port-0 unit is busy several cycles.
        return [MicroOp.on("p0", occupancy=6.0)]
    if kind is InstructionKind.BIT_SCAN:
        return [MicroOp.on("p1")]
    if kind is InstructionKind.SHIFT:
        uops = [MicroOp.on("p0", "p6")]
        if variant % 3 == 2:  # double-shift forms need a second µOP
            uops.append(MicroOp.on("p1"))
        return uops
    if kind is InstructionKind.LEA:
        if variant % 2 == 1:  # scaled/3-operand LEA is slow-LEA, port 1 only
            return [MicroOp.on("p1")]
        return [MicroOp.on("p1", "p5")]
    if kind is InstructionKind.CMOV:
        return [MicroOp.on("p0", "p6")]
    if kind is InstructionKind.BRANCH:
        return [MicroOp.on("p0", "p6")]
    if kind is InstructionKind.JUMP:
        return [MicroOp.on("p6")]
    if kind is InstructionKind.LOAD:
        return [MicroOp.on(*_LOAD_PORTS)]
    if kind is InstructionKind.STORE:
        return [MicroOp.on(*_STORE_ADDR_PORTS), MicroOp.on("p4")]
    if kind in (InstructionKind.FP_ADD, InstructionKind.FP_MUL, InstructionKind.FP_FMA):
        return [MicroOp.on("p0", "p1")]
    if kind is InstructionKind.FP_DIV:
        # Non-pipelined FP divider on port 0; 256-bit forms are slower.
        occupancy = 4.0 if instruction.width <= 128 else 8.0
        return [MicroOp.on("p0", occupancy=occupancy)]
    if kind is InstructionKind.FP_CONVERT:
        uops = [MicroOp.on("p0", "p1")]
        if variant % 2 == 1:  # cross-domain converts add a shuffle µOP
            uops.append(MicroOp.on("p5"))
        return uops
    if kind is InstructionKind.SIMD_INT:
        if variant % 3 == 2:  # multiply-like SIMD integer ops are p0/p1 only
            return [MicroOp.on("p0", "p1")]
        return [MicroOp.on("p0", "p1", "p5")]
    if kind is InstructionKind.SIMD_LOGIC:
        return [MicroOp.on("p0", "p1", "p5")]
    if kind is InstructionKind.SHUFFLE:
        return [MicroOp.on("p5")]
    if kind is InstructionKind.STRING_OP:
        return [MicroOp.on("p0"), MicroOp.on("p5"), MicroOp.on("p0", "p1", "p5")]
    raise ValueError(f"unsupported instruction kind {kind}")


def build_skylake_like_machine(
    isa: Optional[Sequence[Instruction]] = None,
    n_instructions: int = 280,
    seed: int = 0,
    front_end_width: float = 4.0,
) -> Machine:
    """Build the Skylake-SP-like machine over a synthetic ISA.

    Parameters
    ----------
    isa:
        Instructions to support.  Defaults to :func:`build_default_isa`
        with ``n_instructions`` and ``seed``.
    front_end_width:
        Decode width (4 instructions/cycle, the SKL-SP value used by the
        paper when discussing the IPC ceiling).
    """
    instructions: Iterable[Instruction] = (
        isa if isa is not None else build_default_isa(n_instructions, seed=seed)
    )
    mapping: Dict[Instruction, Tuple[MicroOp, ...]] = {
        instruction: tuple(_uops_for(instruction)) for instruction in instructions
    }
    port_mapping = DisjunctivePortMapping(SKL_PORTS, mapping)
    return Machine(
        name="SKL-like",
        port_mapping=port_mapping,
        front_end_width=front_end_width,
        description=(
            "Skylake-SP-like model: unified scheduler over 8 ports, "
            "4-wide front-end, non-pipelined dividers on port 0"
        ),
    )
