"""Registry of the machines shipped with the reproduction."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.isa.instruction import Instruction
from repro.machines.machine import Machine
from repro.machines.skylake import build_skylake_like_machine
from repro.machines.toy import build_toy_machine
from repro.machines.zen import build_zen_like_machine

_BUILDERS: Dict[str, Callable[..., Machine]] = {
    "toy": lambda **kwargs: build_toy_machine(),
    "skl": build_skylake_like_machine,
    "skylake": build_skylake_like_machine,
    "zen": build_zen_like_machine,
    "zen1": build_zen_like_machine,
}


def available_machines() -> Tuple[str, ...]:
    """Names accepted by :func:`build_machine`."""
    return tuple(sorted(_BUILDERS))


def build_machine(
    name: str,
    isa: Optional[Sequence[Instruction]] = None,
    n_instructions: int = 280,
    seed: int = 0,
) -> Machine:
    """Build one of the registered machines by name.

    ``name`` is case-insensitive; ``"toy"`` ignores the ISA arguments (its
    instruction set is fixed by Fig. 1 of the paper).
    """
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(
            f"unknown machine {name!r}; available: {', '.join(available_machines())}"
        )
    if key == "toy":
        return _BUILDERS[key]()
    return _BUILDERS[key](isa=isa, n_instructions=n_instructions, seed=seed)
