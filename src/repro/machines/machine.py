"""The :class:`Machine` container for ground-truth CPU models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.isa.instruction import Extension, Instruction
from repro.mapping.conjunctive import ConjunctiveResourceMapping
from repro.mapping.disjunctive import DisjunctivePortMapping
from repro.mapping.dual import build_dual
from repro.mapping.microkernel import Microkernel

#: Name of the abstract resource modeling the decode/rename front-end.
FRONT_END_RESOURCE = "FrontEnd"


@dataclass(frozen=True)
class Machine:
    """A ground-truth superscalar machine model.

    Attributes
    ----------
    name:
        Human-readable machine name (e.g. ``"SKL-like"``).
    port_mapping:
        The ground-truth disjunctive port mapping for every supported
        instruction.
    front_end_width:
        Maximum number of instructions decoded/issued per cycle.  This is the
        non-port bottleneck the paper highlights: IPC can never exceed it
        regardless of port pressure (4 on SKL-SP, 5 on Zen1).
    description:
        Free-form description used in reports.
    """

    name: str
    port_mapping: DisjunctivePortMapping
    front_end_width: float
    description: str = ""
    _dual_cache: Dict[bool, ConjunctiveResourceMapping] = field(
        default_factory=dict, compare=False, repr=False, hash=False
    )

    def __post_init__(self) -> None:
        if self.front_end_width <= 0:
            raise ValueError("front_end_width must be positive")

    # -- ISA ----------------------------------------------------------------
    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """Every instruction the machine implements, sorted by name."""
        return self.port_mapping.instructions

    @property
    def ports(self) -> Tuple[str, ...]:
        return self.port_mapping.ports

    def supports(self, instruction: Instruction) -> bool:
        return self.port_mapping.supports(instruction)

    def benchmarkable_instructions(self) -> Tuple[Instruction, ...]:
        """Instructions the microbenchmark generator can instrument."""
        return tuple(
            inst for inst in self.instructions if inst.is_benchmarkable
        )

    def extensions(self) -> Tuple[Extension, ...]:
        return tuple(sorted({inst.extension for inst in self.instructions},
                            key=lambda ext: ext.value))

    # -- ground-truth throughput ---------------------------------------------
    def true_conjunctive(self, include_front_end: bool = True) -> ConjunctiveResourceMapping:
        """The ∇-dual conjunctive mapping of the ground-truth port mapping.

        By Theorem A.2 this mapping predicts exactly the same steady-state
        throughput as the disjunctive LP, so it is used as the fast
        "hardware" evaluation path.  When ``include_front_end`` is true an
        extra abstract resource models the decode width (every instruction
        uses it once, its throughput is the front-end width).
        """
        cached = self._dual_cache.get(include_front_end)
        if cached is not None:
            return cached
        dual = build_dual(self.port_mapping)
        if include_front_end:
            dual = dual.with_resource(
                FRONT_END_RESOURCE,
                throughput=self.front_end_width,
                usage_per_instruction={inst: 1.0 for inst in self.instructions},
            )
        self._dual_cache[include_front_end] = dual
        return dual

    def true_cycles(self, kernel: Microkernel) -> float:
        """Ground-truth steady-state cycles per iteration (incl. front-end)."""
        return self.true_conjunctive(include_front_end=True).cycles(kernel)

    def true_ipc(self, kernel: Microkernel) -> float:
        """Ground-truth steady-state IPC (incl. front-end)."""
        return self.true_conjunctive(include_front_end=True).ipc(kernel)

    def peak_ipc(self) -> float:
        """The machine's absolute IPC ceiling (the front-end width)."""
        return self.front_end_width

    def restricted(self, instructions) -> "Machine":
        """A copy of the machine supporting only the given instructions."""
        return Machine(
            name=self.name,
            port_mapping=self.port_mapping.restricted(instructions),
            front_end_width=self.front_end_width,
            description=self.description,
        )

    def summary(self) -> str:
        """Short textual description used by examples and reports."""
        lines = [
            f"Machine {self.name}",
            f"  ports             : {', '.join(self.ports)}",
            f"  front-end width   : {self.front_end_width:g} instructions/cycle",
            f"  instructions      : {len(self.instructions)}",
            f"  benchmarkable     : {len(self.benchmarkable_instructions())}",
            f"  abstract resources: {len(self.true_conjunctive().resources)} (ground-truth dual)",
        ]
        if self.description:
            lines.append(f"  description       : {self.description}")
        return "\n".join(lines)
