"""The running example of the paper (Fig. 1): ports 0, 1 and 6 of Skylake.

Six instructions restricted to three ports:

* ``DIVPS``  → one µOP on port 0 only;
* ``VCVTT``  → two µOPs, each on port 0 or 1;
* ``ADDSS``  → one µOP on port 0 or 1;
* ``BSR``    → one µOP on port 1 only;
* ``JNLE``   → one µOP on port 0 or 6;
* ``JMP``    → one µOP on port 6 only.

The dual conjunctive mapping of this machine is exactly Fig. 1b: abstract
resources ``r0``, ``r1``, ``r6``, ``r01``, ``r06`` and ``r016`` (``r16`` is
pruned because it is never a bottleneck).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.isa.instruction import Extension, Instruction, InstructionKind
from repro.machines.machine import Machine
from repro.mapping.disjunctive import DisjunctivePortMapping, MicroOp

_DIVPS = Instruction("DIVPS", InstructionKind.FP_DIV, Extension.SSE, 128)
_VCVTT = Instruction("VCVTT", InstructionKind.FP_CONVERT, Extension.SSE, 128)
_ADDSS = Instruction("ADDSS", InstructionKind.FP_ADD, Extension.SSE, 128)
_BSR = Instruction("BSR", InstructionKind.BIT_SCAN, Extension.BASE, 64)
_JNLE = Instruction("JNLE", InstructionKind.BRANCH, Extension.BASE, 64)
# The paper's figure includes JMP; it is modeled as a benchmarkable branch so
# the toy machine can be fed through the full PALMED pipeline.
_JMP = Instruction("JMP", InstructionKind.BRANCH, Extension.BASE, 64, variant=1)

#: The six instructions of Fig. 1, keyed by mnemonic.
TOY_INSTRUCTIONS: Dict[str, Instruction] = {
    "DIVPS": _DIVPS,
    "VCVTT": _VCVTT,
    "ADDSS": _ADDSS,
    "BSR": _BSR,
    "JNLE": _JNLE,
    "JMP": _JMP,
}


def build_toy_machine(front_end_width: float = 4.0) -> Machine:
    """Build the 3-port, 6-instruction machine of Fig. 1.

    The default front-end width (4, as on SKL-SP) never binds for these
    instructions' pairwise kernels, so the toy machine reproduces the paper's
    published throughputs exactly (e.g. ``ADDSS^2 BSR`` → IPC 2,
    ``ADDSS BSR^2`` → IPC 1.5).
    """
    mapping = {
        _DIVPS: (MicroOp.on("p0"),),
        _VCVTT: (MicroOp.on("p0", "p1"), MicroOp.on("p0", "p1")),
        _ADDSS: (MicroOp.on("p0", "p1"),),
        _BSR: (MicroOp.on("p1"),),
        _JNLE: (MicroOp.on("p0", "p6"),),
        _JMP: (MicroOp.on("p6"),),
    }
    port_mapping = DisjunctivePortMapping(("p0", "p1", "p6"), mapping)
    return Machine(
        name="toy-skl-p016",
        port_mapping=port_mapping,
        front_end_width=front_end_width,
        description="Fig. 1 example: Skylake instructions restricted to ports 0, 1 and 6",
    )


def toy_instruction(name: str) -> Instruction:
    """Look up one of the six toy instructions by mnemonic."""
    return TOY_INSTRUCTIONS[name]


def toy_instruction_pair() -> Tuple[Instruction, Instruction]:
    """The (ADDSS, BSR) pair used throughout the paper's examples."""
    return _ADDSS, _BSR
