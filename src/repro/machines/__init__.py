"""Ground-truth machine models.

A :class:`Machine` bundles a ground-truth disjunctive port mapping, a
front-end decode width and an ISA.  Machines play the role of the physical
CPUs of the paper's evaluation (Intel Xeon Silver 4114 "SKL-SP" and AMD EPYC
7401P "Zen1"): PALMED never looks inside them — it only observes the elapsed
cycles reported by the measurement backend — but the evaluation harness uses
them as the source of "native" IPC and as the oracle for the
uops.info/IACA/llvm-mca-like baselines.

Available machines
------------------
``build_toy_machine``
    The 6-instruction, 3-port example of Fig. 1 (ports 0, 1 and 6 of
    Skylake), used in documentation, examples and exactness tests.
``build_skylake_like_machine``
    A Skylake-SP-like model: 8 ports with a unified scheduler, front-end
    width 4, non-pipelined divider on port 0.
``build_zen_like_machine``
    A Zen1-like model: split integer / floating-point pipelines, dedicated
    AGUs, front-end width 5 — the structure that makes resource-minimizing
    inference under-predict IPC in the paper.
"""

from repro.machines.machine import Machine
from repro.machines.toy import TOY_INSTRUCTIONS, build_toy_machine
from repro.machines.skylake import build_skylake_like_machine
from repro.machines.zen import build_zen_like_machine
from repro.machines.library import available_machines, build_machine

__all__ = [
    "Machine",
    "TOY_INSTRUCTIONS",
    "available_machines",
    "build_machine",
    "build_skylake_like_machine",
    "build_toy_machine",
    "build_zen_like_machine",
]
