"""The metrics warehouse: a sqlite star schema fed by a batched writer.

Schema (one fact table per record kind, ``runs`` as the shared dimension):

* ``runs`` — one row per instrumented execution: kind (``characterize`` /
  ``serve`` / ``cluster`` / ...), ISO start/finish timestamps, hostname,
  ``host_cpus``, machine identity and the writer's drop counter;
* ``spans`` — hierarchical traced intervals (parent ids reference span
  ids within the same run, attributes as JSON);
* ``metrics`` — point samples (per-flush serving latencies, per-solve
  backend wall clocks, cluster failover events) with JSON labels;
* ``bench_records`` — the flattened numeric leaves of the committed
  ``benchmarks/results/BENCH_*.json`` files, so the perf trajectory is
  queryable next to the live telemetry
  (:meth:`Warehouse.ingest_bench_dir`).

Writer model
------------
Hot paths never touch sqlite.  :class:`TelemetryWriter` exposes
non-blocking ``emit_span``/``emit_metric`` puts into a bounded queue; a
daemon thread owns the sqlite connection (sqlite objects are
thread-bound), drains the queue in batches and commits with
``executemany``.  A full queue **drops** the record and counts it in
:attr:`TelemetryWriter.dropped` — backpressure must never propagate into
the serving or solving hot path.  The drop counter is persisted on the
run row at close, so a truncated trace is visible in ``repro stats runs``
instead of silently looking complete.
"""

from __future__ import annotations

import contextlib
import json
import os
import queue
import socket
import sqlite3
import threading
import uuid
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.telemetry.tracer import TRACER

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id              TEXT PRIMARY KEY,
    kind                TEXT NOT NULL,
    started_at          TEXT NOT NULL,
    finished_at         TEXT,
    hostname            TEXT,
    host_cpus           INTEGER,
    machine_name        TEXT,
    machine_fingerprint TEXT,
    dropped             INTEGER NOT NULL DEFAULT 0,
    attrs               TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS spans (
    run_id     TEXT NOT NULL,
    span_id    INTEGER NOT NULL,
    parent_id  INTEGER,
    name       TEXT NOT NULL,
    start_s    REAL NOT NULL,
    duration_s REAL NOT NULL,
    attrs      TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_spans_run_name ON spans (run_id, name);
CREATE TABLE IF NOT EXISTS metrics (
    run_id TEXT NOT NULL,
    name   TEXT NOT NULL,
    t_s    REAL NOT NULL,
    value  REAL NOT NULL,
    labels TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_metrics_run_name ON metrics (run_id, name);
CREATE TABLE IF NOT EXISTS bench_records (
    source      TEXT NOT NULL,
    section     TEXT NOT NULL,
    metric      TEXT NOT NULL,
    value       REAL NOT NULL,
    recorded_at TEXT,
    hostname    TEXT,
    host_cpus   INTEGER
);
CREATE INDEX IF NOT EXISTS idx_bench_metric ON bench_records (metric);
"""

#: Sentinel shutting the writer thread down after a final drain.
_STOP = object()


def _utc_now() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%S%z")


def _connect(path: Union[str, Path]) -> sqlite3.Connection:
    connection = sqlite3.connect(str(path))
    connection.executescript(_SCHEMA)
    return connection


class TelemetryWriter:
    """Bounded-queue batched writer for one instrumented run.

    Parameters
    ----------
    path:
        The warehouse sqlite file (created, with schema, on first use).
    kind:
        Run kind recorded on the ``runs`` row (``characterize``,
        ``serve``, ``cluster``, ``bench``, ...).
    machine_name / machine_fingerprint:
        Optional machine identity of the run.
    queue_capacity:
        Bound on in-flight records; overflow drops (counted, never
        blocking).
    flush_interval_s:
        Maximum seconds a drained batch waits before committing.
    """

    def __init__(
        self,
        path: Union[str, Path],
        kind: str,
        machine_name: Optional[str] = None,
        machine_fingerprint: Optional[str] = None,
        queue_capacity: int = 8192,
        flush_interval_s: float = 0.5,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.path = Path(path)
        self.kind = kind
        self.run_id = f"{kind}-{uuid.uuid4().hex[:12]}"
        self.machine_name = machine_name
        self.machine_fingerprint = machine_fingerprint
        self.started_at = _utc_now()
        self._attrs = dict(attrs or {})
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_capacity)
        self._flush_interval_s = flush_interval_s
        #: Records lost to a full queue (a plain int: += under the GIL is
        #: close enough for a loss *indicator*; the exact count is not a
        #: correctness quantity).
        self.dropped = 0
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name=f"telemetry-writer-{self.run_id[:20]}",
            daemon=True,
        )
        self._thread.start()

    # -- the non-blocking hot-path sink --------------------------------------
    def emit_span(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start_s: float,
        duration_s: float,
        attrs: Dict[str, object],
    ) -> None:
        try:
            self._queue.put_nowait(
                ("span", (span_id, parent_id, name, start_s, duration_s, attrs))
            )
        except queue.Full:
            self.dropped += 1

    def emit_metric(
        self, name: str, t_s: float, value: float, labels: Dict[str, object]
    ) -> None:
        try:
            self._queue.put_nowait(("metric", (name, t_s, value, labels)))
        except queue.Full:
            self.dropped += 1

    # -- the writer thread ---------------------------------------------------
    def _run(self) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            connection = _connect(self.path)
        except Exception as error:  # noqa: BLE001 - surfaced at close()
            self._failure = error
            self._drain_to_nowhere()
            return
        try:
            connection.execute(
                "INSERT OR REPLACE INTO runs (run_id, kind, started_at, "
                "hostname, host_cpus, machine_name, machine_fingerprint, attrs) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    self.run_id,
                    self.kind,
                    self.started_at,
                    socket.gethostname(),
                    os.cpu_count() or 1,
                    self.machine_name,
                    self.machine_fingerprint,
                    json.dumps(self._attrs, sort_keys=True),
                ),
            )
            connection.commit()
            stopping = False
            while not stopping:
                spans: List[Tuple] = []
                metrics: List[Tuple] = []
                try:
                    item = self._queue.get(timeout=self._flush_interval_s)
                except queue.Empty:
                    continue
                while True:
                    if item is _STOP:
                        stopping = True
                        break
                    kind, payload = item
                    if kind == "span":
                        span_id, parent_id, name, start_s, duration_s, attrs = payload
                        spans.append(
                            (
                                self.run_id, span_id, parent_id, name,
                                start_s, duration_s,
                                json.dumps(attrs, sort_keys=True, default=str),
                            )
                        )
                    else:
                        name, t_s, value, labels = payload
                        metrics.append(
                            (
                                self.run_id, name, t_s, value,
                                json.dumps(labels, sort_keys=True, default=str),
                            )
                        )
                    try:
                        item = self._queue.get_nowait()
                    except queue.Empty:
                        break
                if spans:
                    connection.executemany(
                        "INSERT INTO spans VALUES (?, ?, ?, ?, ?, ?, ?)", spans
                    )
                if metrics:
                    connection.executemany(
                        "INSERT INTO metrics VALUES (?, ?, ?, ?, ?)", metrics
                    )
                if spans or metrics:
                    connection.commit()
            connection.execute(
                "UPDATE runs SET finished_at = ?, dropped = ? WHERE run_id = ?",
                (_utc_now(), self.dropped, self.run_id),
            )
            connection.commit()
        except Exception as error:  # noqa: BLE001 - surfaced at close()
            self._failure = error
            self._drain_to_nowhere()
        finally:
            with contextlib.suppress(Exception):
                connection.close()

    def _drain_to_nowhere(self) -> None:
        """After a writer failure, keep the queue from filling (and hot
        paths from counting every record as dropped) until close()."""
        while True:
            try:
                if self._queue.get(timeout=0.5) is _STOP:
                    return
            except queue.Empty:
                continue

    # -- lifecycle -----------------------------------------------------------
    def close(self, timeout: float = 30.0) -> None:
        """Flush everything queued, stamp the run row, stop the thread.

        A writer-thread failure (unwritable path, disk full) surfaces
        here as the original exception: telemetry degrades loudly at the
        *session boundary*, never inside the traced hot path.
        """
        self._queue.put(_STOP)
        self._thread.join(timeout=timeout)
        if self._failure is not None:
            raise self._failure

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TelemetryWriter({str(self.path)!r}, run_id={self.run_id!r}, "
            f"dropped={self.dropped})"
        )


@contextlib.contextmanager
def telemetry_session(
    path: Optional[Union[str, Path]],
    kind: str,
    machine_name: Optional[str] = None,
    machine_fingerprint: Optional[str] = None,
    **writer_options,
) -> Iterator[Optional[TelemetryWriter]]:
    """Enable the global tracer against a warehouse for one scope.

    ``path=None`` yields ``None`` and traces nothing — call sites wrap
    their run unconditionally and let the configuration decide.  When a
    session is already active (an outer CLI session around a ``Palmed``
    run whose config also names a warehouse), the inner session yields
    ``None`` and the outer one keeps recording: spans are never
    double-emitted.
    """
    if path is None:
        yield None
        return
    writer = TelemetryWriter(
        path,
        kind,
        machine_name=machine_name,
        machine_fingerprint=machine_fingerprint,
        **writer_options,
    )
    if not TRACER.activate(writer):
        # An outer session owns the tracer; retire this writer quietly.
        writer.close()
        yield None
        return
    try:
        yield writer
    finally:
        TRACER.deactivate()
        writer.close()


class Warehouse:
    """Read-side access to a telemetry database (queries + ingestion)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._connection = _connect(self.path)
        self._connection.row_factory = sqlite3.Row

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- querying ------------------------------------------------------------
    def query(
        self, sql: str, params: Sequence[object] = ()
    ) -> Tuple[List[str], List[Tuple]]:
        """Run one SQL statement; returns ``(column names, rows)``."""
        cursor = self._connection.execute(sql, tuple(params))
        columns = [description[0] for description in cursor.description or ()]
        return columns, [tuple(row) for row in cursor.fetchall()]

    # -- bench-record ingestion ----------------------------------------------
    def ingest_bench_file(self, path: Union[str, Path]) -> int:
        """(Re-)ingest one ``BENCH_*.json`` file; returns rows inserted.

        Every numeric leaf becomes one ``bench_records`` row whose
        ``metric`` is the dotted path to the leaf and whose ``section``
        is the path's first component.  Stamps (``recorded_at``,
        ``hostname``, ``host_cpus`` — written by
        ``benchmarks/record.py``) are lifted from the nearest enclosing
        object; records predating the stamping helper ingest with NULL
        stamps.  Re-ingesting a file replaces its previous rows, so
        ingestion is idempotent.
        """
        path = Path(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        rows: List[Tuple] = []
        source = path.name

        def stamps_of(node: object, inherited: Tuple) -> Tuple:
            if not isinstance(node, dict):
                return inherited
            recorded_at, hostname, host_cpus = inherited
            recorded_at = node.get("recorded_at", recorded_at)
            hostname = node.get("hostname", hostname)
            host_cpus = node.get("host_cpus", host_cpus)
            return (recorded_at, hostname, host_cpus)

        def walk(node: object, prefix: str, stamps: Tuple) -> None:
            stamps = stamps_of(node, stamps)
            if isinstance(node, dict):
                for key, value in node.items():
                    walk(value, f"{prefix}.{key}" if prefix else str(key), stamps)
            elif isinstance(node, list):
                for index, value in enumerate(node):
                    walk(value, f"{prefix}[{index}]", stamps)
            elif isinstance(node, bool):
                rows.append((source, prefix.split(".")[0].split("[")[0],
                             prefix, 1.0 if node else 0.0, *stamps))
            elif isinstance(node, (int, float)):
                rows.append((source, prefix.split(".")[0].split("[")[0],
                             prefix, float(node), *stamps))

        walk(payload, "", (None, None, None))
        self._connection.execute(
            "DELETE FROM bench_records WHERE source = ?", (source,)
        )
        self._connection.executemany(
            "INSERT INTO bench_records VALUES (?, ?, ?, ?, ?, ?, ?)", rows
        )
        self._connection.commit()
        return len(rows)

    def ingest_bench_dir(self, directory: Union[str, Path]) -> Dict[str, int]:
        """Ingest every ``BENCH_*.json`` under ``directory``.

        Returns ``{file name: rows ingested}``; an empty dict means the
        directory held no bench records at all.
        """
        directory = Path(directory)
        ingested: Dict[str, int] = {}
        for path in sorted(directory.glob("BENCH_*.json")):
            ingested[path.name] = self.ingest_bench_file(path)
        return ingested
