"""Canned warehouse queries behind ``python -m repro stats``.

Each query takes an open :class:`~repro.telemetry.warehouse.Warehouse`
and returns ``(column names, rows)`` — the same shape as
:meth:`Warehouse.query` — so the CLI renders every report through one
table/JSON path.  Anything not canned here is reachable with
``repro stats --sql``.

The serving percentiles are computed in Python from the per-flush
``serving.flush`` metric stream (one sample per micro-batch: the batch's
mean per-kernel latency in ms, with the batch occupancy in the labels),
weighted by occupancy so a 512-kernel flush counts 512× a singleton.
This keeps the warehouse schema free of any sqlite extension (json1)
requirement.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

QueryResult = Tuple[List[str], List[Tuple]]


def list_runs(warehouse) -> QueryResult:
    """Every recorded run, newest first, with span/metric volume."""
    return warehouse.query(
        """
        SELECT r.run_id, r.kind, r.started_at, r.finished_at,
               r.hostname, r.host_cpus, r.machine_name, r.dropped,
               (SELECT COUNT(*) FROM spans s WHERE s.run_id = r.run_id)
                   AS spans,
               (SELECT COUNT(*) FROM metrics m WHERE m.run_id = r.run_id)
                   AS metrics
        FROM runs r
        ORDER BY r.started_at DESC, r.run_id DESC
        """
    )


def stage_wall_clocks(warehouse) -> QueryResult:
    """Per-stage wall clocks across characterize runs (paper Table II)."""
    return warehouse.query(
        """
        SELECT r.run_id, r.machine_name,
               SUBSTR(s.name, 7) AS stage,
               COUNT(*)          AS executions,
               ROUND(SUM(s.duration_s), 6) AS wall_s,
               ROUND(AVG(s.duration_s), 6) AS mean_s
        FROM spans s JOIN runs r ON r.run_id = s.run_id
        WHERE s.name LIKE 'stage:%'
        GROUP BY r.run_id, r.machine_name, stage
        ORDER BY r.started_at, r.run_id, MIN(s.start_s)
        """
    )


def _weighted_percentiles(
    samples: List[Tuple[float, float]], points: Sequence[float]
) -> List[float]:
    """Percentiles of ``(value, weight)`` samples at each point in [0, 100]."""
    ordered = sorted(samples)
    total = sum(weight for _, weight in ordered)
    results = []
    for point in points:
        target = total * (point / 100.0)
        cumulative = 0.0
        chosen = ordered[-1][0]
        for value, weight in ordered:
            cumulative += weight
            if cumulative >= target:
                chosen = value
                break
        results.append(chosen)
    return results


def serving_latency(warehouse) -> QueryResult:
    """Per-run serving latency percentiles and flush occupancy.

    One input sample per micro-batch flush; percentiles are weighted by
    batch occupancy (kernels per flush), so they approximate per-kernel
    latency quantiles without shipping every request through telemetry.
    """
    _, rows = warehouse.query(
        "SELECT run_id, value, labels FROM metrics WHERE name = 'serving.flush'"
    )
    per_run: Dict[str, List[Tuple[float, float]]] = {}
    failures: Dict[str, int] = {}
    for run_id, value, labels_json in rows:
        labels = json.loads(labels_json)
        weight = float(labels.get("kernels", 1) or 1)
        per_run.setdefault(run_id, []).append((float(value), weight))
        failures[run_id] = failures.get(run_id, 0) + int(labels.get("failed", 0))
    columns = [
        "run_id", "flushes", "kernels", "mean_occupancy",
        "p50_ms", "p95_ms", "p99_ms", "max_ms", "failed",
    ]
    out: List[Tuple] = []
    for run_id in sorted(per_run):
        samples = per_run[run_id]
        kernels = sum(weight for _, weight in samples)
        p50, p95, p99 = _weighted_percentiles(samples, (50.0, 95.0, 99.0))
        out.append(
            (
                run_id,
                len(samples),
                int(kernels),
                round(kernels / len(samples), 2),
                round(p50, 4),
                round(p95, 4),
                round(p99, 4),
                round(max(value for value, _ in samples), 4),
                failures.get(run_id, 0),
            )
        )
    return columns, out


def solver_rates(warehouse) -> QueryResult:
    """Solver volume and warm-start hit rates per run.

    Reads the end-of-run ``solver.*`` summary metrics that
    ``Palmed.run`` emits from its deterministic counters.
    """
    _, rows = warehouse.query(
        """
        SELECT run_id, name, value FROM metrics
        WHERE name IN ('solver.solves', 'solver.warm_start_hits',
                       'solver.model_builds', 'solver.chunks',
                       'solver.lp_time_s')
        """
    )
    per_run: Dict[str, Dict[str, float]] = {}
    for run_id, name, value in rows:
        per_run.setdefault(run_id, {})[name] = value
    columns = [
        "run_id", "solves", "warm_start_hits", "warm_hit_rate",
        "model_builds", "chunks", "lp_time_s",
    ]
    out: List[Tuple] = []
    for run_id in sorted(per_run):
        values = per_run[run_id]
        solves = values.get("solver.solves", 0.0)
        hits = values.get("solver.warm_start_hits", 0.0)
        out.append(
            (
                run_id,
                int(solves),
                int(hits),
                round(hits / solves, 4) if solves else 0.0,
                int(values.get("solver.model_builds", 0.0)),
                int(values.get("solver.chunks", 0.0)),
                round(values.get("solver.lp_time_s", 0.0), 6),
            )
        )
    return columns, out


def cluster_events(warehouse) -> QueryResult:
    """Failover / retry / node-failure / sync-failure counts per run."""
    return warehouse.query(
        """
        SELECT run_id,
               SUM(CASE WHEN name = 'cluster.failover' THEN value END)
                   AS failovers,
               SUM(CASE WHEN name = 'cluster.retry' THEN value END)
                   AS retries,
               SUM(CASE WHEN name = 'cluster.node_failure' THEN value END)
                   AS node_failures,
               SUM(CASE WHEN name = 'cluster.sync_failure' THEN value END)
                   AS sync_failures,
               SUM(CASE WHEN name = 'cluster.sync_s' THEN 1 END)
                   AS syncs
        FROM metrics
        WHERE name LIKE 'cluster.%'
        GROUP BY run_id
        ORDER BY run_id
        """
    )


def bench_trajectory(warehouse, like: str = "%") -> QueryResult:
    """The committed-benchmark perf trajectory, grouped by metric path.

    ``like`` filters metric paths with SQL LIKE (default: everything) —
    e.g. ``repro stats bench --like '%speedup%'``.
    """
    return warehouse.query(
        """
        SELECT source, metric, value, recorded_at, hostname, host_cpus
        FROM bench_records
        WHERE metric LIKE ?
        ORDER BY source, metric, recorded_at
        """,
        (like,),
    )


#: name -> (runner, help line) — the ``repro stats`` report registry.
CANNED = {
    "runs": (list_runs, "all recorded runs with span/metric volume"),
    "stages": (stage_wall_clocks, "per-stage wall clocks across runs"),
    "serving": (
        serving_latency,
        "serving latency percentiles (p50/p95/p99) + flush occupancy",
    ),
    "solver": (solver_rates, "solver volume and warm-start hit rates"),
    "cluster": (cluster_events, "cluster failover/retry/sync-failure counts"),
    "bench": (bench_trajectory, "committed BENCH_*.json perf trajectory"),
}
