"""Zero-dependency tracing + metrics warehouse (the observability tier).

Three pieces:

* :mod:`repro.telemetry.tracer` — the process-global :data:`TRACER`
  emitting hierarchical spans and point metrics from hook points across
  all five runtime tiers; disabled by default, one attribute check per
  hook when off.
* :mod:`repro.telemetry.warehouse` — the sqlite star schema
  (``runs``/``spans``/``metrics``/``bench_records``), its batched
  bounded-queue writer, and ``BENCH_*.json`` ingestion.
* :mod:`repro.telemetry.queries` — the canned reports behind
  ``python -m repro stats``.

Enable for one run with ``PalmedConfig(telemetry="palmed.sqlite")`` or
``--telemetry palmed.sqlite`` on the CLI; see ``docs/telemetry.md``.
"""

from repro.telemetry.tracer import TRACER, Span, Tracer
from repro.telemetry.warehouse import TelemetryWriter, Warehouse, telemetry_session

__all__ = [
    "TRACER",
    "Span",
    "Tracer",
    "TelemetryWriter",
    "Warehouse",
    "telemetry_session",
]
