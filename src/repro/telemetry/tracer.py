"""Hierarchical span tracing: the run-local half of the telemetry layer.

A :class:`Tracer` emits two kinds of records into a sink (normally the
batched sqlite writer of :mod:`repro.telemetry.warehouse`):

* **spans** — named intervals with a monotonic-clock start offset, a
  duration, a parent span id and structured attributes.  Spans nest: the
  tracer keeps a per-thread stack, so a ``measure.batch`` span opened
  inside a ``stage:quadratic`` span records that stage as its parent and
  the warehouse can reconstruct the tree.
* **metrics** — named point samples (a per-flush serving latency, one
  backend solve's wall clock) with a timestamp and JSON labels.

Determinism contract
--------------------
Tracing is observational only.  Spans and metrics are *run-local*: they
carry wall clocks and host facts, they are never hashed into stage
checkpoints or artifact identities, and no hook may influence control
flow.  The differential suite (``tests/test_telemetry.py``) pins down
that a telemetry-on run produces bitwise-identical mappings, predictions
and deterministic counters to a telemetry-off run.

Overhead contract
-----------------
The process-global tracer is **disabled by default** and every hook in a
hot path is guarded by a single attribute check (``if TRACER.enabled:``),
so the disabled cost is one pointer load and branch per *batch-level*
event (never per request).  When enabled, finishing a span or metric is
one non-blocking bounded-queue put; a full queue drops the record and
counts the drop (:attr:`repro.telemetry.warehouse.TelemetryWriter.dropped`)
rather than ever blocking the hot path.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, Optional


class _NullSpan:
    """The shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """One live traced interval; finishes (and emits) on context exit."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "start_s", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = time.monotonic()
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach (or overwrite) structured attributes before the span ends."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._tracer._push(self.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.monotonic() - self.start_s
        self._tracer._pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._emit_span(self, duration)
        return False


class Tracer:
    """Process-wide span/metric source; off until a sink is attached.

    The sink is anything with ``emit_span(name, span_id, parent_id,
    start_s, duration_s, attrs)`` and ``emit_metric(name, t_s, value,
    labels)`` — in practice a
    :class:`~repro.telemetry.warehouse.TelemetryWriter`, whose emit
    methods are non-blocking bounded-queue puts.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._sink = None
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- activation ----------------------------------------------------------
    def activate(self, sink) -> bool:
        """Attach a sink and start tracing.

        Returns ``False`` (and changes nothing) when the tracer is already
        active: the outermost session wins, so a CLI session wrapping a
        ``Palmed`` run whose config *also* names a warehouse does not
        double-record.
        """
        with self._lock:
            if self.enabled:
                return False
            self._sink = sink
            self._ids = itertools.count(1)
            self.enabled = True
            return True

    def deactivate(self) -> None:
        """Stop tracing and detach the sink (idempotent)."""
        with self._lock:
            self.enabled = False
            self._sink = None

    # -- the hot-path API ----------------------------------------------------
    def span(self, name: str, **attrs):
        """Open a traced interval (use as a context manager).

        While disabled this returns a shared no-op object, so call sites
        may use ``with TRACER.span(...)`` unconditionally; hot paths that
        want to skip even the keyword-dict construction guard the call
        with ``if TRACER.enabled:`` instead.
        """
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, next(self._ids), self._current(), attrs)

    def metric(self, name: str, value: float, **labels) -> None:
        """Record one point sample (no-op while disabled)."""
        sink = self._sink
        if sink is not None:
            sink.emit_metric(name, time.monotonic(), float(value), labels)

    # -- parent bookkeeping (per thread) -------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span_id: int) -> None:
        self._stack().append(span_id)

    def _pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def _emit_span(self, span: Span, duration_s: float) -> None:
        sink = self._sink
        if sink is not None:
            sink.emit_span(
                span.name,
                span.span_id,
                span.parent_id,
                span.start_s,
                duration_s,
                span.attrs,
            )


#: The process-global tracer every hook point records into.
TRACER = Tracer()
