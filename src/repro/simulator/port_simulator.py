"""Steady-state throughput backends over a ground-truth machine model."""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.machines.machine import Machine
from repro.mapping.microkernel import Microkernel
from repro.simulator.noise import MeasurementNoise


class PortModelBackend:
    """The default "hardware": steady-state port-model throughput.

    The backend evaluates the machine's ground-truth dual conjunctive
    mapping (built once, including the front-end resource), which by
    Theorem A.2 gives the same steady-state cycle count as optimally
    scheduling µOPs onto ports.  Results are cached per kernel; the number
    of cache misses is the number of microbenchmarks "run", reported by
    :attr:`measurement_count` and used for the Table II statistics.

    Parameters
    ----------
    machine:
        The ground-truth machine model.
    noise:
        Optional measurement-noise model (disabled by default so unit tests
        are exact).
    include_front_end:
        Whether the decode-width bottleneck is part of the measurement.
        True for the "hardware"; the uops.info-like baseline predictor uses
        False to reproduce that tool's port-only view.
    measurement_latency:
        Simulated wall-clock cost (seconds) of running one microbenchmark,
        paid on every cache miss.  On real hardware a measurement costs
        milliseconds to seconds (generation, assembly, warm-up, repeated
        timed runs) and benchmarking dominates the pipeline's wall-clock
        (Table II); the model-evaluation backends are unrealistically
        instant.  The scalability benchmarks set this knob to reproduce the
        real-hardware regime when exercising the parallel/cached
        measurement layer.  It never affects measured *values* and is
        therefore excluded from the cache fingerprint.
    """

    def __init__(
        self,
        machine: Machine,
        noise: Optional[MeasurementNoise] = None,
        include_front_end: bool = True,
        measurement_latency: float = 0.0,
    ) -> None:
        if measurement_latency < 0:
            raise ValueError("measurement_latency must be non-negative")
        self.machine = machine
        self.noise = noise if noise is not None else MeasurementNoise()
        self.include_front_end = include_front_end
        self.measurement_latency = measurement_latency
        self._mapping = machine.true_conjunctive(include_front_end=include_front_end)
        self._cache: Dict[Microkernel, float] = {}

    # -- MeasurementBackend interface ---------------------------------------
    def cycles(self, kernel: Microkernel) -> float:
        """Measured steady-state cycles per loop iteration."""
        cached = self._cache.get(kernel)
        if cached is not None:
            return cached
        if self.measurement_latency > 0:
            time.sleep(self.measurement_latency)
        true_cycles = self._mapping.cycles(kernel)
        measured = self.noise.apply(kernel, true_cycles)
        self._cache[kernel] = measured
        return measured

    def ipc(self, kernel: Microkernel) -> float:
        """Measured steady-state instructions per cycle."""
        return kernel.size / self.cycles(kernel)

    def measure_batch(self, kernels: Sequence[Microkernel]) -> List[float]:
        """IPC of every kernel, in input order (bitwise equal to :meth:`ipc`)."""
        return [self.ipc(kernel) for kernel in kernels]

    @property
    def measurement_count(self) -> int:
        return len(self._cache)

    def reset_counter(self) -> None:
        """Forget every cached measurement (and the benchmark count)."""
        self._cache.clear()

    def fingerprint(self) -> str:
        """Content hash for persistent caching (machine + noise + view)."""
        from repro.measure.fingerprint import combine_fingerprint, machine_fingerprint

        return combine_fingerprint(
            type(self).__name__,
            machine_fingerprint(self.machine),
            self.include_front_end,
            repr(self.noise.relative_stddev),
            repr(self.noise.quantization),
            self.noise.seed,
        )


class LpReferenceBackend:
    """Reference backend solving the disjunctive port-assignment LP directly.

    Slower than :class:`PortModelBackend` (one LP per kernel) but independent
    of the dual construction; the test suite uses it to validate the
    equivalence theorem on every machine model.
    """

    def __init__(self, machine: Machine, include_front_end: bool = True) -> None:
        self.machine = machine
        self.include_front_end = include_front_end
        self._cache: Dict[Microkernel, float] = {}

    def cycles(self, kernel: Microkernel) -> float:
        cached = self._cache.get(kernel)
        if cached is not None:
            return cached
        port_cycles = self.machine.port_mapping.cycles(kernel)
        if self.include_front_end:
            port_cycles = max(port_cycles, kernel.size / self.machine.front_end_width)
        self._cache[kernel] = port_cycles
        return port_cycles

    def ipc(self, kernel: Microkernel) -> float:
        return kernel.size / self.cycles(kernel)

    def measure_batch(self, kernels: Sequence[Microkernel]) -> List[float]:
        """IPC of every kernel, in input order (bitwise equal to :meth:`ipc`)."""
        return [self.ipc(kernel) for kernel in kernels]

    @property
    def measurement_count(self) -> int:
        return len(self._cache)

    def fingerprint(self) -> str:
        """Content hash for persistent caching (machine + front-end view)."""
        from repro.measure.fingerprint import combine_fingerprint, machine_fingerprint

        return combine_fingerprint(
            type(self).__name__,
            machine_fingerprint(self.machine),
            self.include_front_end,
        )
