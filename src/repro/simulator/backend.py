"""The measurement-backend interface PALMED runs against."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.mapping.microkernel import Microkernel


@runtime_checkable
class MeasurementBackend(Protocol):
    """Anything able to report the steady-state behaviour of a microkernel.

    PALMED (Sec. V) only ever needs two numbers per benchmark: the elapsed
    cycles per loop iteration and the derived instructions-per-cycle rate.
    Implementations are expected to be deterministic for a given kernel so
    that the inference is reproducible, and to count how many distinct
    benchmarks they were asked to run (the paper's "generated
    microbenchmarks" statistic of Table II).
    """

    def cycles(self, kernel: Microkernel) -> float:
        """Steady-state cycles per loop iteration of the kernel."""
        ...

    def ipc(self, kernel: Microkernel) -> float:
        """Steady-state instructions per cycle of the kernel."""
        ...

    @property
    def measurement_count(self) -> int:
        """Number of distinct microbenchmarks measured so far."""
        ...
