"""The measurement-backend interface PALMED runs against.

Backends expose both a scalar path (:meth:`MeasurementBackend.ipc` /
:meth:`MeasurementBackend.cycles`) and a vectorized
:meth:`MeasurementBackend.measure_batch` used by the batched measurement
layer (:mod:`repro.measure`).  The batch path is *required* to return
bitwise-identical values to the scalar path — the parallel dispatcher and
the persistent cache rely on it to keep inferred mappings independent of
how the measurements were scheduled.
"""

from __future__ import annotations

from typing import List, Protocol, Sequence, runtime_checkable

from repro.mapping.microkernel import Microkernel


@runtime_checkable
class MeasurementBackend(Protocol):
    """Anything able to report the steady-state behaviour of a microkernel.

    PALMED (Sec. V) only ever needs two numbers per benchmark: the elapsed
    cycles per loop iteration and the derived instructions-per-cycle rate.
    Implementations are expected to be deterministic for a given kernel so
    that the inference is reproducible, and to count how many distinct
    benchmarks they were asked to run (the paper's "generated
    microbenchmarks" statistic of Table II).

    Backends that want to participate in persistent measurement caching
    additionally expose a ``fingerprint()`` method returning a stable
    content hash of everything that influences measured values (machine
    model, noise configuration, simulation horizon, ...); see
    :func:`repro.measure.backend_fingerprint`.
    """

    def cycles(self, kernel: Microkernel) -> float:
        """Steady-state cycles per loop iteration of the kernel."""
        ...

    def ipc(self, kernel: Microkernel) -> float:
        """Steady-state instructions per cycle of the kernel."""
        ...

    def measure_batch(self, kernels: Sequence[Microkernel]) -> List[float]:
        """IPC of every kernel, in input order.

        Must be observationally identical to calling :meth:`ipc` on each
        kernel in sequence (bitwise-equal floats, same internal measurement
        accounting); implementations are free to vectorize or reorder
        internally as long as that contract holds.
        """
        ...

    @property
    def measurement_count(self) -> int:
        """Number of distinct microbenchmarks measured so far."""
        ...
