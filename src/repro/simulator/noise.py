"""Measurement-noise models for the simulated hardware.

Real cycle measurements fluctuate; the paper absorbs this by rounding
benchmark coefficients and IPCs within a 5 % tolerance (Sec. VI-A).  The
:class:`MeasurementNoise` model reproduces the phenomenon: a deterministic,
per-kernel multiplicative perturbation (so that re-measuring the same kernel
returns the same value, as a well-warmed-up benchmark harness would) plus an
optional quantization of the reported cycle count.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from repro.mapping.microkernel import Microkernel


@dataclass(frozen=True)
class MeasurementNoise:
    """Deterministic multiplicative noise plus cycle quantization.

    Attributes
    ----------
    relative_stddev:
        Standard deviation of the multiplicative perturbation (e.g. 0.02 for
        2 % noise).  Zero disables the perturbation.
    quantization:
        Resolution of the reported cycle count (e.g. 0.01 cycles).  Zero
        disables quantization.
    seed:
        Seed mixed into the per-kernel hash.
    """

    relative_stddev: float = 0.0
    quantization: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.relative_stddev < 0:
            raise ValueError("relative_stddev must be non-negative")
        if self.quantization < 0:
            raise ValueError("quantization must be non-negative")

    def apply(self, kernel: Microkernel, cycles: float) -> float:
        """Perturb a true cycle count for the given kernel."""
        noisy = cycles
        if self.relative_stddev > 0:
            noisy *= 1.0 + self.relative_stddev * self._unit_normal(kernel)
        if self.quantization > 0:
            noisy = round(noisy / self.quantization) * self.quantization
        return max(noisy, 1e-9)

    def _unit_normal(self, kernel: Microkernel) -> float:
        """A deterministic pseudo-normal draw in roughly [-3, 3] per kernel."""
        digest = hashlib.sha256()
        digest.update(struct.pack("<q", self.seed))
        for instruction, count in kernel.items():
            digest.update(instruction.name.encode("utf-8"))
            digest.update(struct.pack("<d", count))
        raw = digest.digest()
        # Sum of 12 uniforms in [0,1) minus 6 approximates a standard normal
        # (Irwin-Hall); each uniform comes from two digest bytes.
        uniforms = [
            int.from_bytes(raw[2 * i : 2 * i + 2], "little") / 65536.0 for i in range(12)
        ]
        return sum(uniforms) - 6.0

    @property
    def is_noiseless(self) -> bool:
        return self.relative_stddev == 0.0 and self.quantization == 0.0
