"""A finite-horizon greedy cycle-level simulator.

The steady-state backends assume the hardware scheduler is optimal (the same
assumption the paper and all related work make for dependency-free kernels).
This module provides a sanity-check substrate: a list-scheduling simulator
that decodes a bounded number of instructions per cycle and greedily assigns
each µOP to the compatible port that frees up earliest.  Greedy scheduling is
at least as slow as the optimal steady state, and converges towards it for
long horizons on these dependency-free kernels; the test suite checks both
properties.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.isa.instruction import Instruction
from repro.machines.machine import Machine
from repro.mapping.microkernel import Microkernel


@dataclass
class SimulationTrace:
    """Outcome of one finite-horizon simulation."""

    instructions_executed: int
    total_cycles: float
    port_busy_cycles: Dict[str, float]

    @property
    def ipc(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return self.instructions_executed / self.total_cycles

    def port_utilization(self) -> Dict[str, float]:
        """Fraction of the simulated time each port was busy."""
        if self.total_cycles <= 0:
            return {port: 0.0 for port in self.port_busy_cycles}
        return {
            port: busy / self.total_cycles for port, busy in self.port_busy_cycles.items()
        }


class GreedyCycleSimulator:
    """Greedy list-scheduling simulation of a kernel on a machine.

    Parameters
    ----------
    machine:
        The ground-truth machine model.
    iterations:
        Number of loop iterations to simulate; larger values converge
        towards the steady state.
    """

    def __init__(self, machine: Machine, iterations: int = 256) -> None:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.machine = machine
        self.iterations = iterations
        self._cache: Dict[Microkernel, SimulationTrace] = {}

    def simulate(self, kernel: Microkernel) -> SimulationTrace:
        """Simulate ``iterations`` repetitions of the kernel."""
        cached = self._cache.get(kernel)
        if cached is not None:
            return cached

        stream = self._instruction_stream(kernel)
        width = self.machine.front_end_width
        port_free: Dict[str, float] = {port: 0.0 for port in self.machine.ports}
        port_busy: Dict[str, float] = {port: 0.0 for port in self.machine.ports}
        finish_time = 0.0

        for index, instruction in enumerate(stream):
            decode_cycle = math.floor(index / width)
            for uop in self.machine.port_mapping.uops(instruction):
                # Greedy choice: the compatible port that becomes free first.
                best_port = min(sorted(uop.ports), key=lambda port: port_free[port])
                start = max(port_free[best_port], float(decode_cycle))
                port_free[best_port] = start + uop.occupancy
                port_busy[best_port] += uop.occupancy
                finish_time = max(finish_time, port_free[best_port])

        # The last instruction still needs to have been decoded.
        finish_time = max(finish_time, math.ceil(len(stream) / width))
        trace = SimulationTrace(
            instructions_executed=len(stream),
            total_cycles=finish_time,
            port_busy_cycles=port_busy,
        )
        self._cache[kernel] = trace
        return trace

    def ipc(self, kernel: Microkernel) -> float:
        """Simulated instructions per cycle."""
        return self.simulate(kernel).ipc

    def cycles(self, kernel: Microkernel) -> float:
        """Simulated cycles per kernel iteration (total / iterations)."""
        return self.simulate(kernel).total_cycles / self.iterations

    def measure_batch(self, kernels: List[Microkernel]) -> List[float]:
        """IPC of every kernel, in input order (bitwise equal to :meth:`ipc`)."""
        return [self.ipc(kernel) for kernel in kernels]

    @property
    def measurement_count(self) -> int:
        return len(self._cache)

    def fingerprint(self) -> str:
        """Content hash for persistent caching (machine + horizon)."""
        from repro.measure.fingerprint import combine_fingerprint, machine_fingerprint

        return combine_fingerprint(
            type(self).__name__,
            machine_fingerprint(self.machine),
            self.iterations,
        )

    # ------------------------------------------------------------------
    def _instruction_stream(self, kernel: Microkernel) -> List[Instruction]:
        """Expand ``iterations`` repetitions of the kernel into a flat stream.

        Fractional multiplicities are scaled to integers first (the smallest
        scaling that makes every multiplicity integral within 1 %), then the
        per-iteration instructions are interleaved round-robin so the decode
        window sees a representative mix, as the paper's microbenchmark
        generator does.
        """
        counts = self._integral_counts(kernel)
        per_iteration: List[Instruction] = []
        remaining = dict(counts)
        while any(count > 0 for count in remaining.values()):
            for instruction in sorted(remaining, key=lambda inst: inst.name):
                if remaining[instruction] > 0:
                    per_iteration.append(instruction)
                    remaining[instruction] -= 1
        return per_iteration * self.iterations

    @staticmethod
    def _integral_counts(kernel: Microkernel) -> Dict[Instruction, int]:
        for scale in range(1, 101):
            scaled: List[Tuple[Instruction, float]] = [
                (instruction, count * scale) for instruction, count in kernel.items()
            ]
            if all(abs(value - round(value)) <= 0.01 * max(value, 1.0) for _, value in scaled):
                return {
                    instruction: max(1, int(round(value))) for instruction, value in scaled
                }
        # Fall back to rounding up at scale 100.
        return {
            instruction: max(1, int(math.ceil(count * 100)))
            for instruction, count in kernel.items()
        }
