"""Measurement substrate: "running" microbenchmarks on a machine model.

On real hardware PALMED measures elapsed cycles (``CPU_CLK_UNHALTED``) of
generated microbenchmarks.  The reproduction replaces the hardware with a
ground-truth :class:`~repro.machines.Machine` and exposes the same narrow
interface — *give me the IPC of this kernel*, scalar (``ipc``/``cycles``)
or vectorized (``measure_batch``, consumed by the batched/parallel/cached
measurement layer in :mod:`repro.measure`) — through
:class:`MeasurementBackend` implementations:

``PortModelBackend``
    The default backend: steady-state throughput of the machine's
    ground-truth dual conjunctive mapping (provably equal to the disjunctive
    scheduling LP), including the front-end bottleneck, with optional
    multiplicative measurement noise and cycle quantization.
``LpReferenceBackend``
    The same quantity computed by solving the disjunctive port-assignment LP
    directly; slower, used to cross-validate the fast path.
``GreedyCycleSimulator``
    A finite-horizon list-scheduling simulator (greedy µOP-to-port
    assignment, bounded decode width) that approximates what an actual
    out-of-order core would achieve; used for realism checks.
"""

from repro.simulator.backend import MeasurementBackend
from repro.simulator.noise import MeasurementNoise
from repro.simulator.port_simulator import LpReferenceBackend, PortModelBackend
from repro.simulator.cycle_sim import GreedyCycleSimulator

__all__ = [
    "GreedyCycleSimulator",
    "LpReferenceBackend",
    "MeasurementBackend",
    "MeasurementNoise",
    "PortModelBackend",
]
