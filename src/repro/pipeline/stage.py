"""The ``Stage`` protocol of the PALMED stage graph.

A *stage* is one box of the paper's Fig. 3 pipeline (quadratic
benchmarking, basic selection, core mapping, complete mapping, plus the
final assembly) lifted into an explicit, checkpointable unit:

* **typed inputs/outputs** — a stage declares which upstream stages it
  consumes (``depends``); the executor hands it their in-memory outputs and
  receives the stage's own output object back;
* **a content hash** — a stage declares which :class:`PalmedConfig` fields
  it reads (``config_fields``); its *input hash* combines the machine
  fingerprint, the hash over exactly those fields, the stage schema
  version and the upstream stages' *output hashes*.  Anything that could
  change the stage's result changes the hash; anything that cannot (worker
  counts, cache paths, unrelated knobs) does not;
* **a serialized form** — ``serialize``/``deserialize`` convert the output
  to/from a canonical JSON payload, whose digest is the stage's output
  hash.  Restoring a checkpoint therefore yields bitwise-identical floats
  (JSON round-trips Python floats exactly via their shortest ``repr``);
* **measurement replay** — ``warm_runner`` replays the benchmark
  measurements a restored output carries into the
  :class:`~repro.palmed.benchmarks.BenchmarkRunner` memo on a checkpoint
  hit, keeping later live stages' values *and* Table II benchmark counts
  identical to a cold run.

The concrete PALMED stages live in :mod:`repro.pipeline.stages`; the
executor in :mod:`repro.pipeline.graph`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.artifacts.registry import payload_hash
from repro.isa.instruction import Instruction
from repro.mapping.microkernel import Microkernel
from repro.palmed.benchmarks import BenchmarkRunner
from repro.palmed.config import PalmedConfig

__all__ = [
    "PipelineInterrupted",
    "Stage",
    "StageContext",
    "StageRecord",
    "STAGE_SCHEMA_VERSION",
    "kernel_from_payload",
    "kernel_to_payload",
    "payload_hash",
]

#: Bumped when a stage's payload layout (or semantics) changes
#: incompatibly: old checkpoints then simply miss and the stage re-runs.
STAGE_SCHEMA_VERSION = 1


class PipelineInterrupted(RuntimeError):
    """Raised by the executor when a run stops at a requested stage boundary.

    Models a crash/kill between stages: every finished stage has already
    been checkpointed when this is raised, so a later ``resume`` run picks
    up exactly where the interrupted one stopped.
    """

    def __init__(self, stage: str) -> None:
        super().__init__(
            f"pipeline interrupted after stage {stage!r} (checkpoint saved)"
        )
        self.stage = stage


@dataclass
class StageContext:
    """Everything a stage may touch besides its upstream inputs.

    The context is shared by every stage of one graph run: the measurement
    front-end (whose memo accumulates across stages exactly as in the
    monolithic driver), the configuration, and the characterized
    instruction set.
    """

    runner: BenchmarkRunner
    config: PalmedConfig
    instructions: List[Instruction]
    machine_name: str = "unknown-machine"
    #: Per-stage run records, filled by the executor as stages finish (or
    #: restore); later stages — the finalize stage in particular — read the
    #: accumulated accounting from here.
    records: Dict[str, "StageRecord"] = field(default_factory=dict)
    #: Lazily-built name → instruction map (the instruction list is fixed
    #: for the lifetime of a context).
    _index: Dict[str, Instruction] = field(default_factory=dict, repr=False)

    def instruction_index(self) -> Dict[str, Instruction]:
        """Name → instruction map used to resolve serialized payloads."""
        if not self._index:
            self._index.update(
                (instruction.name, instruction) for instruction in self.instructions
            )
        return self._index

    def resolve_instruction(self, name: str) -> Instruction:
        """Resolve one serialized instruction name against the context ISA."""
        try:
            return self.instruction_index()[name]
        except KeyError:
            raise KeyError(
                f"checkpoint references instruction {name!r} which is not part "
                f"of the characterized instruction set — the checkpoint does "
                f"not belong to this run"
            ) from None


@dataclass
class StageRecord:
    """Per-stage run accounting persisted alongside the checkpoint.

    ``wall_time`` is the stage's wall clock *when it actually executed*;
    the benchmark counters are the deltas the stage contributed to the
    runner's Table II accounting.  On a checkpoint hit the record is
    restored instead of re-measured, which is what keeps a resumed run's
    statistics identical to the run that produced the checkpoints.
    """

    stage: str
    wall_time: float = 0.0
    num_benchmarks: int = 0
    num_benchmarks_measured: int = 0
    num_benchmarks_cached: int = 0
    from_checkpoint: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "wall_time": self.wall_time,
            "num_benchmarks": self.num_benchmarks,
            "num_benchmarks_measured": self.num_benchmarks_measured,
            "num_benchmarks_cached": self.num_benchmarks_cached,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StageRecord":
        return cls(
            stage=str(payload["stage"]),
            wall_time=float(payload["wall_time"]),
            num_benchmarks=int(payload["num_benchmarks"]),
            num_benchmarks_measured=int(payload["num_benchmarks_measured"]),
            num_benchmarks_cached=int(payload["num_benchmarks_cached"]),
            from_checkpoint=True,
        )


class Stage:
    """Base class of one stage of the pipeline graph.

    Subclasses set the three class attributes and implement the four
    methods below.  Stages must be *pure* given (context, inputs): two
    executions with equal input hashes must produce payloads that
    serialize identically — the resume test suite enforces this bitwise.
    """

    #: Unique stage name (also the checkpoint file prefix).
    name: str = ""
    #: Names of the upstream stages whose outputs this stage consumes.
    depends: Tuple[str, ...] = ()
    #: The :class:`PalmedConfig` fields this stage reads.  Only these
    #: participate in the input hash: editing any other field leaves the
    #: stage's checkpoints valid.
    config_fields: Tuple[str, ...] = ()

    def run(self, context: StageContext, inputs: Dict[str, object]) -> object:
        """Execute the stage and return its output object."""
        raise NotImplementedError

    def serialize(self, output: object) -> Dict[str, object]:
        """Canonical JSON payload of the output (digested for the hash)."""
        raise NotImplementedError

    def deserialize(self, payload: Dict[str, object], context: StageContext) -> object:
        """Inverse of :meth:`serialize` (bitwise-exact floats)."""
        raise NotImplementedError

    def warm_runner(self, output: object, context: StageContext) -> None:
        """Replay a restored output's measurements into the runner memo.

        Called by the executor after :meth:`deserialize` on a checkpoint
        hit, *before* any downstream stage runs.  Implementations call
        :meth:`~repro.palmed.benchmarks.BenchmarkRunner.preload`, which
        warms the memo without counting — so later live stages observe
        exactly the memo state (and Table II counters) a cold run would
        have.  Default: nothing to replay.  Stages whose measurements
        later stages re-request (singles, pair kernels, core
        observations) override this.
        """

    # -- hashing -------------------------------------------------------------
    def extra_hash_parts(self, context: StageContext) -> Sequence[str]:
        """Additional stage-specific identity parts.  Default: none."""
        return ()

    def input_hash(
        self,
        context: StageContext,
        machine_fingerprint: str,
        upstream_hashes: Dict[str, str],
    ) -> str:
        """The content hash this stage's checkpoints are keyed on."""
        digest = hashlib.sha256()
        for part in (
            f"schema:{STAGE_SCHEMA_VERSION}",
            f"stage:{self.name}",
            f"machine:{machine_fingerprint}",
            f"config:{context.config.config_hash(self.config_fields)}",
            # The characterized instruction set is an explicit input of the
            # whole graph: PALMED may be pointed at a subset of the
            # machine's ISA, and two subsets must never share checkpoints —
            # not even for stages whose serialized output happens to
            # coincide (e.g. subsets differing only in non-benchmarkable
            # instructions, which still change num_instructions_total).
            "isa:" + ",".join(sorted(i.name for i in context.instructions)),
        ):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        for extra in self.extra_hash_parts(context):
            digest.update(str(extra).encode("utf-8"))
            digest.update(b"\x00")
        for upstream in self.depends:
            digest.update(f"{upstream}:{upstream_hashes[upstream]}".encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()


# ---------------------------------------------------------------------------
# Shared (de)serialization helpers for stage payloads
# ---------------------------------------------------------------------------

def kernel_to_payload(kernel: Microkernel) -> Dict[str, float]:
    """A kernel as a JSON object (instruction name → multiplicity)."""
    return {instruction.name: count for instruction, count in kernel.items()}


def kernel_from_payload(
    payload: Dict[str, float], index: Dict[str, Instruction]
) -> Microkernel:
    """Inverse of :func:`kernel_to_payload` against a name → instruction map."""
    return Microkernel({index[name]: float(count) for name, count in payload.items()})


def rho_to_payload(rho: Dict[Instruction, Dict[int, float]]) -> Dict[str, Dict[str, float]]:
    """A per-instruction resource-usage table as a JSON object."""
    return {
        instruction.name: {str(resource): value for resource, value in weights.items()}
        for instruction, weights in rho.items()
    }


def rho_from_payload(
    payload: Dict[str, Dict[str, float]], index: Dict[str, Instruction]
) -> Dict[Instruction, Dict[int, float]]:
    """Inverse of :func:`rho_to_payload`."""
    return {
        index[name]: {int(resource): float(value) for resource, value in weights.items()}
        for name, weights in payload.items()
    }
