"""Fleet orchestration: characterize many machines concurrently.

A production PALMED deployment characterizes a *fleet* — every machine
model in the lab — and serves predictions from the resulting artifact
registry.  :class:`FleetRunner` fans whole stage-graph runs out over the
shared :class:`repro.runtime.ParallelRuntime` (the same substrate the
measurement batches and the LPAUX solves use): each work item is one
machine, each worker process runs the full checkpointed pipeline for its
machines and saves both the per-stage checkpoints and the final mapping
artifact into a shared registry directory.

Checkpoints make the fan-out restartable for free: a fleet run that dies
halfway loses at most the stages in flight, and re-submitting the same
fleet resumes every machine from its last finished stage.  Writes are
atomic (tempfile + rename) and keyed by machine fingerprint, so
concurrent workers never clobber each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.palmed.config import PalmedConfig
from repro.palmed.result import PalmedStats
from repro.runtime import ParallelRuntime


@dataclass(frozen=True)
class FleetMachine:
    """A picklable description of one machine to characterize.

    Names machines through the :func:`repro.machines.build_machine`
    registry instead of carrying live machine objects, so fleet items ship
    cheaply to worker processes and a fleet specification can live in a
    config file.
    """

    machine: str
    isa_size: int = 48
    seed: int = 0
    label: Optional[str] = None

    @property
    def display_name(self) -> str:
        return self.label or f"{self.machine}/isa{self.isa_size}/s{self.seed}"


@dataclass
class FleetOutcome:
    """Result of characterizing one fleet machine."""

    spec: FleetMachine
    machine_name: str
    machine_fingerprint: str
    stats: PalmedStats
    artifact_path: str
    checkpoint_hits: Dict[str, bool] = field(default_factory=dict)

    @property
    def num_checkpoint_hits(self) -> int:
        return sum(1 for hit in self.checkpoint_hits.values() if hit)


@dataclass(frozen=True)
class _FleetContext:
    """Shared worker context: everything but the per-machine spec."""

    registry_root: str
    config: PalmedConfig
    resume: bool


def _characterize_chunk(
    context: _FleetContext, specs: List[FleetMachine]
) -> List[FleetOutcome]:
    """Characterize a chunk of machines (runs in-process or in a worker)."""
    # Imports kept local so the module stays importable in fleet worker
    # processes before the full package graph is warm.
    from repro.artifacts import ArtifactRegistry, MappingArtifact
    from repro.machines import build_machine
    from repro.measure.fingerprint import machine_fingerprint
    from repro.palmed.pipeline import Palmed
    from repro.simulator import PortModelBackend

    registry = ArtifactRegistry(context.registry_root)
    outcomes: List[FleetOutcome] = []
    for spec in specs:
        machine = build_machine(
            spec.machine, n_instructions=spec.isa_size, seed=spec.seed
        )
        backend = PortModelBackend(machine)
        palmed = Palmed(
            backend,
            machine.benchmarkable_instructions(),
            context.config,
            registry=registry,
            resume=context.resume,
        )
        result = palmed.run()
        path = registry.save(MappingArtifact.from_result(result, machine))
        outcomes.append(
            FleetOutcome(
                spec=spec,
                machine_name=machine.name,
                machine_fingerprint=machine_fingerprint(machine),
                stats=result.stats,
                artifact_path=str(path),
                checkpoint_hits=dict(result.stats.stage_checkpoint_hits),
            )
        )
    return outcomes


class FleetRunner:
    """Characterize a fleet of machines over the shared parallel runtime.

    Parameters
    ----------
    registry_root:
        Directory of the shared artifact registry (stage checkpoints and
        final mapping artifacts for every machine).
    config:
        Pipeline configuration applied to every machine.  Per-machine
        measurement/LP parallelism is usually left at ``0`` here — the
        fleet already fans out at machine granularity, and nested process
        pools multiply workers.
    workers:
        Worker processes for the machine fan-out (``0``/``1`` =
        sequential in-process).  One machine never spans two workers.
    resume:
        Serve stages from existing checkpoints (on by default: it is what
        makes a re-submitted fleet run cheap).

    Examples
    --------
    Characterize two machines over two workers::

        runner = FleetRunner("artifacts", PalmedConfig(), workers=2)
        outcomes = runner.characterize([
            FleetMachine("toy"),
            FleetMachine("skl", isa_size=24),
        ])
    """

    def __init__(
        self,
        registry_root: str,
        config: Optional[PalmedConfig] = None,
        workers: int = 0,
        resume: bool = True,
    ) -> None:
        self.registry_root = str(registry_root)
        self.config = config if config is not None else PalmedConfig()
        self.workers = workers
        self.resume = resume

    def characterize(self, specs: Sequence[FleetMachine]) -> List[FleetOutcome]:
        """Run the full stage graph for every machine; outcomes in input order."""
        specs = list(specs)
        # One machine per chunk: machines are coarse, heterogeneous work
        # items, so the finest chunking gives the best load balance and the
        # per-chunk overhead (one registry open) is negligible.
        runtime = ParallelRuntime(workers=self.workers, chunk_size=1)
        context = _FleetContext(
            registry_root=self.registry_root,
            config=self.config,
            resume=self.resume,
        )
        return runtime.run(_characterize_chunk, specs, context=context)

    @staticmethod
    def format_table(outcomes: Sequence[FleetOutcome]) -> str:
        """One summary row per characterized machine."""
        header = (
            "machine",
            "fingerprint",
            "resources",
            "mapped",
            "benchmarks",
            "ckpt hits",
            "total (s)",
        )
        rows: List[Tuple[str, ...]] = [header]
        for outcome in outcomes:
            stats = outcome.stats
            rows.append(
                (
                    outcome.machine_name,
                    outcome.machine_fingerprint[:12] + "…",
                    str(stats.num_resources),
                    f"{stats.num_instructions_mapped}/{stats.num_benchmarkable}",
                    str(stats.num_benchmarks),
                    f"{outcome.num_checkpoint_hits}/{len(outcome.checkpoint_hits) or 1}",
                    f"{stats.total_time:.2f}",
                )
            )
        from repro.pipeline.graph import format_columns

        return "\n".join(format_columns(rows))
