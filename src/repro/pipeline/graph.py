"""The stage-graph executor: dependency-ordered, checkpointed, resumable.

:class:`StageGraph` runs a list of :class:`~repro.pipeline.stage.Stage`
objects in dependency order.  With a registry attached, every finished
stage is persisted as a :class:`~repro.artifacts.StageCheckpoint`; with
``resume=True``, any stage whose input hash matches a stored checkpoint is
*skipped* — its output is deserialized, its measurements are replayed into
the benchmark-runner memo, and its run record (wall clock + benchmark
counters) is restored — so the resumed run's results and statistics are
identical to the run that produced the checkpoints.

Invalidation is purely content-driven: a stage's input hash covers the
machine fingerprint, the configuration fields the stage declares it reads
and the upstream stages' output hashes.  Changing an upstream result or a
relevant config field changes the hash and the stage re-runs; changing
anything else (worker counts, cache paths, unrelated knobs) does not.
``force`` re-runs named stages unconditionally — but since output hashes
exclude wall clocks, a forced re-run that reproduces the same output
leaves every downstream checkpoint valid (incremental recomputation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.artifacts.registry import ArtifactRegistry, StageCheckpoint, payload_hash
from repro.measure.fingerprint import backend_fingerprint
from repro.pipeline.stage import (
    PipelineInterrupted,
    Stage,
    StageContext,
    StageRecord,
)
from repro.telemetry import TRACER


def format_columns(rows: Sequence[Sequence[str]]) -> List[str]:
    """Left-align rows into columns sized by their widest cell."""
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    return [
        "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
        for row in rows
    ]


@dataclass
class StageReport:
    """What happened to one stage during one graph run."""

    stage: str
    #: ``True`` when the stage was served from a checkpoint this run.
    from_checkpoint: bool
    #: The stage's record (restored on a hit, measured live otherwise).
    record: StageRecord
    #: Wall-clock seconds this *run* spent on the stage (restore time on a
    #: hit; equal to ``record.wall_time`` up to bookkeeping noise on a miss).
    elapsed: float
    input_hash: Optional[str] = None
    output_hash: Optional[str] = None

    @property
    def status(self) -> str:
        return "checkpoint" if self.from_checkpoint else "ran"


@dataclass
class GraphRun:
    """Everything one :meth:`StageGraph.run` execution produced."""

    outputs: Dict[str, object]
    reports: List[StageReport] = field(default_factory=list)
    machine_fingerprint: Optional[str] = None

    @property
    def records(self) -> Dict[str, StageRecord]:
        return {report.stage: report.record for report in self.reports}

    @property
    def checkpoint_hits(self) -> Dict[str, bool]:
        return {report.stage: report.from_checkpoint for report in self.reports}

    @property
    def num_hits(self) -> int:
        return sum(1 for report in self.reports if report.from_checkpoint)

    def format_explain(self) -> str:
        """Per-stage hit/miss, wall-clock and benchmark-count table."""
        header = ("stage", "status", "stage time (s)", "this run (s)", "benchmarks")
        rows = [header]
        for report in self.reports:
            rows.append(
                (
                    report.stage,
                    report.status,
                    f"{report.record.wall_time:.2f}",
                    f"{report.elapsed:.2f}",
                    str(report.record.num_benchmarks),
                )
            )
        lines = format_columns(rows)
        lines.append(
            f"{self.num_hits}/{len(self.reports)} stages served from checkpoints"
        )
        return "\n".join(lines)


class StageGraph:
    """Dependency-ordered executor over a fixed set of stages.

    Parameters
    ----------
    stages:
        The stages, listed in an order compatible with their ``depends``
        declarations (each dependency must appear before its dependents —
        the constructor verifies this and rejects unknown or duplicate
        names).
    """

    def __init__(self, stages: Sequence[Stage]) -> None:
        seen: Set[str] = set()
        for stage in stages:
            if not stage.name:
                raise ValueError(f"stage {stage!r} has no name")
            if stage.name in seen:
                raise ValueError(f"duplicate stage name {stage.name!r}")
            missing = [dep for dep in stage.depends if dep not in seen]
            if missing:
                raise ValueError(
                    f"stage {stage.name!r} depends on "
                    f"{', '.join(repr(m) for m in missing)} which "
                    f"{'is' if len(missing) == 1 else 'are'} not defined "
                    f"before it"
                )
            seen.add(stage.name)
        self.stages: List[Stage] = list(stages)

    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    # ------------------------------------------------------------------
    def run(
        self,
        context: StageContext,
        registry: Optional[ArtifactRegistry] = None,
        resume: bool = False,
        force: Iterable[str] = (),
        stop_after: Optional[str] = None,
    ) -> GraphRun:
        """Execute every stage, serving from checkpoints where possible.

        Parameters
        ----------
        registry:
            Checkpoint store.  ``None`` disables both persistence and
            resume (every stage runs live, no hashing overhead).
        resume:
            Read eligible checkpoints.  Writing happens whenever a
            registry is attached, resumed or not.
        force:
            Stage names to run live even when a matching checkpoint
            exists.  Unknown names are rejected.
        stop_after:
            Raise :class:`PipelineInterrupted` once the named stage has
            finished (and its checkpoint is saved) — the crash-injection
            hook used by the resume test-suite and the docs walkthrough.

        Returns
        -------
        GraphRun
            Outputs of every stage plus the per-stage reports.
        """
        force = set(force)
        known = set(self.stage_names())
        unknown = force - known
        if unknown:
            raise ValueError(
                f"unknown stage(s) {', '.join(sorted(unknown))}; "
                f"stages are: {', '.join(self.stage_names())}"
            )
        if stop_after is not None and stop_after not in known:
            raise ValueError(f"unknown stop_after stage {stop_after!r}")

        fingerprint: Optional[str] = None
        if registry is not None:
            fingerprint = backend_fingerprint(context.runner.backend)
            if fingerprint is None:
                raise ValueError(
                    "stage checkpointing requires a backend with a content "
                    "fingerprint (a fingerprint() method); this backend has "
                    "none, so its results cannot be tied to a stable identity"
                )

        run = GraphRun(outputs={}, machine_fingerprint=fingerprint)
        upstream_hashes: Dict[str, str] = {}

        for stage in self.stages:
            inputs = {name: run.outputs[name] for name in stage.depends}
            started = time.monotonic()

            input_hash: Optional[str] = None
            if registry is not None:
                input_hash = stage.input_hash(context, fingerprint, upstream_hashes)

            restored = False
            with TRACER.span(f"stage:{stage.name}") as span:
                if (
                    registry is not None
                    and resume
                    and stage.name not in force
                    and registry.has_stage(fingerprint, stage.name, input_hash)
                ):
                    checkpoint = registry.load_stage(
                        fingerprint, stage.name, input_hash
                    )
                    output = stage.deserialize(checkpoint.payload, context)
                    stage.warm_runner(output, context)
                    record = StageRecord.from_dict(checkpoint.record)
                    output_hash = checkpoint.output_hash
                    restored = True
                else:
                    runner = context.runner
                    before = (
                        runner.num_benchmarks,
                        runner.num_benchmarks_measured,
                        runner.num_benchmarks_cached,
                    )
                    output = stage.run(context, inputs)
                    record = StageRecord(
                        stage=stage.name,
                        wall_time=time.monotonic() - started,
                        num_benchmarks=runner.num_benchmarks - before[0],
                        num_benchmarks_measured=runner.num_benchmarks_measured
                        - before[1],
                        num_benchmarks_cached=runner.num_benchmarks_cached
                        - before[2],
                    )
                    output_hash = None
                    if registry is not None:
                        payload = stage.serialize(output)
                        output_hash = payload_hash(payload)
                        registry.save_stage(
                            StageCheckpoint(
                                stage=stage.name,
                                machine_fingerprint=fingerprint,
                                input_hash=input_hash,
                                output_hash=output_hash,
                                payload=payload,
                                record=record.to_dict(),
                            )
                        )
                span.set(
                    status="checkpoint" if restored else "ran",
                    wall_s=record.wall_time,
                    benchmarks=record.num_benchmarks,
                )

            run.outputs[stage.name] = output
            context.records[stage.name] = record
            run.reports.append(
                StageReport(
                    stage=stage.name,
                    from_checkpoint=restored,
                    record=record,
                    elapsed=time.monotonic() - started,
                    input_hash=input_hash,
                    output_hash=output_hash,
                )
            )
            if output_hash is not None:
                upstream_hashes[stage.name] = output_hash

            if stop_after == stage.name:
                raise PipelineInterrupted(stage.name)

        return run
