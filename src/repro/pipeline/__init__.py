"""Stage-graph pipeline: checkpointable, resumable, fleet-orchestrated.

This package lifts the paper's Fig. 3 pipeline out of a monolithic driver
into an explicit *stage graph*:

* :mod:`repro.pipeline.stage` — the :class:`Stage` protocol: typed
  inputs/outputs, declared configuration reads, content-hashed identity;
* :mod:`repro.pipeline.stages` — the five PALMED stages (quadratic
  benchmarking, basic selection, core mapping, complete mapping, final
  assembly) ported onto the protocol;
* :mod:`repro.pipeline.graph` — the :class:`StageGraph` executor: runs
  stages in dependency order, persists each output as a versioned
  checkpoint through the :class:`~repro.artifacts.ArtifactRegistry`, and
  on re-run skips any stage whose input hash matches a stored checkpoint
  (bitwise-identical results to a cold run);
* :mod:`repro.pipeline.fleet` — :class:`FleetRunner`: whole stage graphs
  fanned over :class:`repro.runtime.ParallelRuntime` to characterize many
  machines concurrently into one shared registry.

:class:`repro.palmed.Palmed` remains the user-facing driver — now a thin
facade over this package.  See ``docs/pipeline.md`` for the resume/fleet
walkthrough and ``python -m repro characterize --resume --explain`` for
the CLI surface.
"""

from repro.pipeline.stage import (
    STAGE_SCHEMA_VERSION,
    PipelineInterrupted,
    Stage,
    StageContext,
    StageRecord,
    payload_hash,
)
from repro.pipeline.graph import GraphRun, StageGraph, StageReport
from repro.pipeline.stages import (
    CompleteMappingStage,
    CoreMappingStage,
    FinalOutcome,
    FinalizeStage,
    QuadraticOutcome,
    QuadraticStage,
    SelectionStage,
    load_final_outcome,
    palmed_stages,
)
from repro.pipeline.fleet import FleetMachine, FleetOutcome, FleetRunner

__all__ = [
    "STAGE_SCHEMA_VERSION",
    "CompleteMappingStage",
    "CoreMappingStage",
    "FinalOutcome",
    "FinalizeStage",
    "FleetMachine",
    "FleetOutcome",
    "FleetRunner",
    "GraphRun",
    "PipelineInterrupted",
    "QuadraticOutcome",
    "QuadraticStage",
    "SelectionStage",
    "Stage",
    "StageContext",
    "StageGraph",
    "StageRecord",
    "StageReport",
    "load_final_outcome",
    "palmed_stages",
    "payload_hash",
]
