"""The PALMED pipeline as concrete stages of the graph (Fig. 3).

Each class below ports one box of the paper's pipeline onto the
:class:`~repro.pipeline.stage.Stage` protocol:

========================  =====================================================
``quadratic``             quadratic benchmarking + the IPC pre-filter
                          (Sec. V-B; the measurement half of Algorithm 1)
``selection``             basic instruction selection (Algorithm 1)
``core``                  core mapping: LP1/LP2 + saturating kernels
                          (Algorithms 2–4)
``complete``              complete mapping: per-instruction LPAUX
                          (Algorithm 5)
``finalize``              mapping assembly + the Table II statistics
========================  =====================================================

Every stage's output serializes to a canonical JSON payload; time-valued
fields (wall clocks, solver build/solve seconds) live under the reserved
``_nondeterministic`` key, which is *excluded* from the output hash — so a
re-run that reproduces the same semantic output (it always does; the
pipeline is deterministic) yields the same hash even though its wall
clocks differ, and downstream checkpoints stay valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.mapping.conjunctive import ConjunctiveResourceMapping
from repro.mapping.microkernel import Microkernel
from repro.palmed.basic_selection import BasicSelectionResult, select_basic_instructions
from repro.palmed.complete_mapping import CompleteMappingOutcome, run_complete_mapping
from repro.palmed.core_mapping import (
    CoreMappingResult,
    compute_core_mapping,
    resource_label,
)
from repro.palmed.lp1_shape import KernelObservation, ShapeMapping
from repro.palmed.lp2_weights import WeightSolution
from repro.palmed.quadratic import QuadraticBenchmarks
from repro.palmed.result import PalmedStats
from repro.pipeline.stage import (
    Stage,
    StageContext,
    kernel_from_payload,
    kernel_to_payload,
    rho_from_payload,
    rho_to_payload,
)
from repro.solvers import SolveStats


# ---------------------------------------------------------------------------
# Stage 1 — quadratic benchmarking
# ---------------------------------------------------------------------------

@dataclass
class QuadraticOutcome:
    """Output of the quadratic-benchmarking stage.

    Carries the benchmarkability/IPC filtering verdicts alongside the
    pairwise measurement table, plus the standalone IPC of *every*
    benchmarkable instruction (including the discarded slow ones) so the
    whole stage can be restored without touching the backend.
    """

    benchmarkable: List[Instruction]
    usable: List[Instruction]
    discarded_slow: List[Instruction]
    single_ipc: Dict[Instruction, float]
    quadratic: QuadraticBenchmarks


class QuadraticStage(Stage):
    """Measure standalone + pairwise IPCs and apply the low-IPC pre-filter."""

    name = "quadratic"
    depends = ()
    config_fields = (
        "min_ipc",
        "epsilon",
        "quantize_coefficients",
        "separate_extensions",
    )
    # The characterized instruction set itself is covered by the base
    # input hash (every stage's is), so two ISA subsets never share
    # checkpoints even on the same machine.

    def run(self, context: StageContext, inputs: Dict[str, object]) -> QuadraticOutcome:
        runner = context.runner
        benchmarkable = [
            instruction
            for instruction in context.instructions
            if instruction.is_benchmarkable
        ]
        runner.prefetch(
            Microkernel.single(instruction) for instruction in benchmarkable
        )
        usable: List[Instruction] = []
        discarded: List[Instruction] = []
        for instruction in benchmarkable:
            if runner.ipc_single(instruction) < context.config.min_ipc:
                discarded.append(instruction)
            else:
                usable.append(instruction)
        quadratic = QuadraticBenchmarks(runner, usable)
        single_ipc = {
            instruction: runner.ipc_single(instruction)
            for instruction in benchmarkable
        }
        return QuadraticOutcome(
            benchmarkable=benchmarkable,
            usable=usable,
            discarded_slow=discarded,
            single_ipc=single_ipc,
            quadratic=quadratic,
        )

    def serialize(self, output: QuadraticOutcome) -> Dict[str, object]:
        quadratic = output.quadratic
        pairs: List[List[object]] = []
        order = quadratic.instructions
        for i, a in enumerate(order):
            for b in order[i + 1 :]:
                pairs.append(
                    [a.name, b.name, quadratic.pair_ipc(a, b), quadratic.is_measurable(a, b)]
                )
        return {
            "benchmarkable": [i.name for i in output.benchmarkable],
            "usable": [i.name for i in output.usable],
            "discarded_slow": [i.name for i in output.discarded_slow],
            "single_ipc": {i.name: ipc for i, ipc in output.single_ipc.items()},
            "pairs": pairs,
        }

    def deserialize(
        self, payload: Dict[str, object], context: StageContext
    ) -> QuadraticOutcome:
        index = context.instruction_index()
        benchmarkable = [context.resolve_instruction(n) for n in payload["benchmarkable"]]
        usable = [context.resolve_instruction(n) for n in payload["usable"]]
        discarded = [context.resolve_instruction(n) for n in payload["discarded_slow"]]
        single_ipc = {
            index[name]: float(ipc) for name, ipc in payload["single_ipc"].items()
        }
        pair_ipc: Dict[Tuple[Instruction, Instruction], float] = {}
        unmeasurable: List[Tuple[Instruction, Instruction]] = []
        for a_name, b_name, ipc, measurable in payload["pairs"]:
            a, b = index[a_name], index[b_name]
            pair_ipc[(a, b)] = float(ipc)
            pair_ipc[(b, a)] = float(ipc)
            if not measurable:
                unmeasurable.append((a, b))
                unmeasurable.append((b, a))
        quadratic = QuadraticBenchmarks.from_measurements(
            usable,
            {inst: single_ipc[inst] for inst in usable},
            pair_ipc,
            unmeasurable,
            runner=context.runner,
        )
        return QuadraticOutcome(
            benchmarkable=benchmarkable,
            usable=usable,
            discarded_slow=discarded,
            single_ipc=single_ipc,
            quadratic=quadratic,
        )

    def warm_runner(self, output: QuadraticOutcome, context: StageContext) -> None:
        # Everything this stage measured and later stages re-request through
        # the runner memo: the standalone singles (consumed by the seed and
        # LPAUX kernel builders) and the quadratic pair benchmarks.  The
        # singles go in first so that rebuilding the pair kernels through
        # the runner is itself served from the memo.
        context.runner.preload(
            {
                Microkernel.single(instruction): ipc
                for instruction, ipc in output.single_ipc.items()
            }
        )
        quadratic = output.quadratic
        order = quadratic.instructions
        pairs: Dict[Microkernel, float] = {}
        for i, a in enumerate(order):
            for b in order[i + 1 :]:
                if quadratic.is_measurable(a, b):
                    pairs[context.runner.pair_kernel(a, b)] = quadratic.pair_ipc(a, b)
        context.runner.preload(pairs)


# ---------------------------------------------------------------------------
# Stage 2 — basic instruction selection (Algorithm 1)
# ---------------------------------------------------------------------------

class SelectionStage(Stage):
    """Pure selection over the quadratic measurements — no new benchmarks."""

    name = "selection"
    depends = ("quadratic",)
    config_fields = ("epsilon", "cluster_tolerance", "n_basic", "n_basic_cap")

    def run(self, context: StageContext, inputs: Dict[str, object]) -> BasicSelectionResult:
        quadratic: QuadraticOutcome = inputs["quadratic"]
        return select_basic_instructions(quadratic.quadratic, context.config)

    def serialize(self, output: BasicSelectionResult) -> Dict[str, object]:
        return {
            "basic": [i.name for i in output.basic],
            "very_basic": [i.name for i in output.very_basic],
            "greedy": [i.name for i in output.greedy],
            "candidates": [i.name for i in output.candidates],
            "low_ipc": [i.name for i in output.low_ipc],
            "representatives": {
                rep.name: sorted(member.name for member in members)
                for rep, members in output.representatives.items()
            },
            "disjoint": {
                inst.name: sorted(other.name for other in others)
                for inst, others in output.disjoint.items()
            },
        }

    def deserialize(
        self, payload: Dict[str, object], context: StageContext
    ) -> BasicSelectionResult:
        index = context.instruction_index()
        return BasicSelectionResult(
            basic=[index[n] for n in payload["basic"]],
            very_basic=[index[n] for n in payload["very_basic"]],
            greedy=[index[n] for n in payload["greedy"]],
            candidates=[index[n] for n in payload["candidates"]],
            representatives={
                index[rep]: [index[m] for m in members]
                for rep, members in payload["representatives"].items()
            },
            low_ipc=[index[n] for n in payload["low_ipc"]],
            disjoint={
                index[name]: {index[o] for o in others}
                for name, others in payload["disjoint"].items()
            },
        )


# ---------------------------------------------------------------------------
# Stage 3 — core mapping (Algorithms 2–4)
# ---------------------------------------------------------------------------

def _solve_stats_to_payload(stats: SolveStats) -> Dict[str, int]:
    """The deterministic half of a solver record (counts only).

    Warm-start hits, rebinds and chunk counts are deterministic functions
    of the configuration, so they belong in the hashed payload; limit
    outcomes and gaps are machine-speed dependent and ship with the times
    under ``_nondeterministic`` instead.
    """
    return {
        "model_builds": stats.model_builds,
        "solves": stats.solves,
        "warm_start_hits": stats.warm_start_hits,
        "rebinds": stats.rebinds,
        "lp_chunks": stats.lp_chunks,
    }


def _solve_stats_from_payload(
    counts: Dict[str, int], times: Dict[str, float]
) -> SolveStats:
    # ``.get`` defaults keep checkpoints written before the batched solver
    # engine loadable: their records simply report zero for the new
    # counters.
    return SolveStats(
        model_builds=int(counts["model_builds"]),
        solves=int(counts["solves"]),
        warm_start_hits=int(counts.get("warm_start_hits", 0)),
        rebinds=int(counts.get("rebinds", 0)),
        lp_chunks=int(counts.get("lp_chunks", 0)),
        limit_solves=int(times.get("limit_solves", 0)),
        worst_mip_gap=float(times.get("worst_mip_gap", 0.0)),
        build_time=float(times.get("build_time", 0.0)),
        solve_time=float(times.get("solve_time", 0.0)),
        rebind_time=float(times.get("rebind_time", 0.0)),
    )


class CoreMappingStage(Stage):
    """Iterated LP1 + LP2 + saturating-kernel selection over the basic set."""

    name = "core"
    depends = ("quadratic", "selection")
    config_fields = (
        "epsilon",
        "min_ipc",
        "m_repeat",
        "separate_extensions",
        "quantize_coefficients",
        "max_resources",
        "lp1_max_iterations",
        "lp1_time_limit",
        "lp1_mip_gap",
        "lp2_mode",
        "lp2_exact_max_kernels",
        "lp2_heuristic_rounds",
        "milp_time_limit",
    )

    def run(self, context: StageContext, inputs: Dict[str, object]) -> CoreMappingResult:
        selection: BasicSelectionResult = inputs["selection"]
        return compute_core_mapping(context.runner, selection, context.config)

    def serialize(self, output: CoreMappingResult) -> Dict[str, object]:
        return {
            "num_resources": output.shape.num_resources,
            "edges": {
                inst.name: sorted(resources)
                for inst, resources in output.shape.edges.items()
            },
            "rho": rho_to_payload(output.weights.rho),
            "saturation": [
                [kernel_to_payload(obs.kernel), obs.ipc, value]
                for obs, value in sorted(
                    output.weights.saturation.items(),
                    key=lambda item: sorted(kernel_to_payload(item[0].kernel).items()),
                )
            ],
            "total_error": output.weights.total_error,
            "observations": [
                [kernel_to_payload(obs.kernel), obs.ipc] for obs in output.observations
            ],
            "saturating_kernels": {
                str(resource): kernel_to_payload(kernel)
                for resource, kernel in output.saturating_kernels.items()
            },
            "lp1_iterations": output.lp1_iterations,
            "solver_counts": _solve_stats_to_payload(output.solver_stats),
            "_nondeterministic": {
                "lp_time": output.lp_time,
                "build_time": output.solver_stats.build_time,
                "solve_time": output.solver_stats.solve_time,
                "rebind_time": output.solver_stats.rebind_time,
                "limit_solves": output.solver_stats.limit_solves,
                "worst_mip_gap": output.solver_stats.worst_mip_gap,
            },
        }

    def deserialize(
        self, payload: Dict[str, object], context: StageContext
    ) -> CoreMappingResult:
        index = context.instruction_index()
        times = payload.get("_nondeterministic", {})
        shape = ShapeMapping(
            num_resources=int(payload["num_resources"]),
            edges={
                index[name]: set(int(r) for r in resources)
                for name, resources in payload["edges"].items()
            },
        )
        weights = WeightSolution(
            rho=rho_from_payload(payload["rho"], index),
            saturation={
                KernelObservation(
                    kernel=kernel_from_payload(dict(kernel), index), ipc=float(ipc)
                ): float(value)
                for kernel, ipc, value in payload["saturation"]
            },
            total_error=float(payload["total_error"]),
        )
        observations = [
            KernelObservation(
                kernel=kernel_from_payload(dict(kernel), index), ipc=float(ipc)
            )
            for kernel, ipc in payload["observations"]
        ]
        return CoreMappingResult(
            shape=shape,
            weights=weights,
            observations=observations,
            saturating_kernels={
                int(resource): kernel_from_payload(dict(kernel), index)
                for resource, kernel in payload["saturating_kernels"].items()
            },
            lp1_iterations=int(payload["lp1_iterations"]),
            lp_time=float(times.get("lp_time", 0.0)),
            solver_stats=_solve_stats_from_payload(payload["solver_counts"], times),
        )

    def warm_runner(self, output: CoreMappingResult, context: StageContext) -> None:
        # The observation set covers every kernel this stage measured (seed,
        # a^M b, enrichment); LPAUX re-requests none of them directly but
        # they keep the memo state identical to a cold run's.
        context.runner.preload({obs.kernel: obs.ipc for obs in output.observations})


# ---------------------------------------------------------------------------
# Stage 4 — complete mapping (Algorithm 5 / LPAUX)
# ---------------------------------------------------------------------------

class CompleteMappingStage(Stage):
    """Per-instruction LPAUX over the frozen core (measurement + solve halves)."""

    name = "complete"
    depends = ("quadratic", "core")
    config_fields = (
        "epsilon",
        "min_ipc",
        "l_repeat",
        "include_singleton_in_lpaux",
        "separate_extensions",
        "quantize_coefficients",
        "lpaux_mode",
        "lp2_heuristic_rounds",
        "edge_threshold",
        "milp_time_limit",
    )
    # Execution knobs (lp_parallelism, lp_chunk_size, lp_warm_start) are
    # deliberately absent: they change how the solves are *scheduled*, never
    # which mapping comes out, so flipping them must not invalidate an
    # existing checkpoint of this stage.

    def run(self, context: StageContext, inputs: Dict[str, object]) -> CompleteMappingOutcome:
        quadratic: QuadraticOutcome = inputs["quadratic"]
        core: CoreMappingResult = inputs["core"]
        return run_complete_mapping(
            context.runner, quadratic.usable, core, context.config
        )

    def serialize(self, output: CompleteMappingOutcome) -> Dict[str, object]:
        return {
            "mapped": rho_to_payload(output.mapped),
            "solver_counts": _solve_stats_to_payload(output.solver_stats),
            "_nondeterministic": {
                "measurement_time": output.measurement_time,
                "solve_time_wall": output.solve_time,
                "build_time": output.solver_stats.build_time,
                "solve_time": output.solver_stats.solve_time,
                "rebind_time": output.solver_stats.rebind_time,
                "limit_solves": output.solver_stats.limit_solves,
                "worst_mip_gap": output.solver_stats.worst_mip_gap,
            },
        }

    def deserialize(
        self, payload: Dict[str, object], context: StageContext
    ) -> CompleteMappingOutcome:
        index = context.instruction_index()
        times = payload.get("_nondeterministic", {})
        return CompleteMappingOutcome(
            mapped=rho_from_payload(payload["mapped"], index),
            measurement_time=float(times.get("measurement_time", 0.0)),
            solve_time=float(times.get("solve_time_wall", 0.0)),
            solver_stats=_solve_stats_from_payload(payload["solver_counts"], times),
        )

    # No warm_runner override: nothing downstream of LPAUX measures, so
    # replaying its |instructions| x |resources| saturating benchmarks
    # would warm the memo for measurements no later stage can re-request.


# ---------------------------------------------------------------------------
# Stage 5 — mapping assembly + Table II statistics
# ---------------------------------------------------------------------------

@dataclass
class FinalOutcome:
    """Output of the finalize stage: the deliverables of a PALMED run."""

    mapping: ConjunctiveResourceMapping
    stats: PalmedStats


class FinalizeStage(Stage):
    """Merge core + LPAUX usages into the final mapping and build the stats.

    The Table II statistics are assembled from the *stage records* the
    executor accumulated (restored from checkpoints for skipped stages,
    measured live otherwise): the benchmark counters and solver counts are
    therefore identical between a cold run and any resumed run, while the
    wall-clock fields reflect when each stage actually executed.
    """

    name = "finalize"
    depends = ("quadratic", "selection", "core", "complete")
    config_fields = ("edge_threshold",)

    def run(self, context: StageContext, inputs: Dict[str, object]) -> FinalOutcome:
        quadratic: QuadraticOutcome = inputs["quadratic"]
        selection: BasicSelectionResult = inputs["selection"]
        core: CoreMappingResult = inputs["core"]
        complete: CompleteMappingOutcome = inputs["complete"]
        config = context.config

        resources = {resource_label(r): 1.0 for r in range(core.num_resources)}
        usage: Dict[Instruction, Dict[str, float]] = {}
        for instruction, weights in core.basic_rho.items():
            usage[instruction] = {
                resource_label(r): value
                for r, value in weights.items()
                if value >= config.edge_threshold
            }
        for instruction, weights in complete.mapped.items():
            usage[instruction] = {
                resource_label(r): value
                for r, value in weights.items()
                if value >= config.edge_threshold
            }
        # Instructions whose inferred usage came out empty cannot be
        # meaningfully predicted by the model: they are reported as
        # *unmapped* (the paper's "instructions mapped" is likewise smaller
        # than "instructions supported") rather than silently predicted
        # with a near-infinite throughput.
        usage = {inst: uses for inst, uses in usage.items() if uses}
        mapping = ConjunctiveResourceMapping(resources, usage)

        records = context.records
        lp_stats = core.solver_stats.copy().merge(complete.solver_stats)
        stats = PalmedStats(
            machine_name=context.machine_name,
            num_instructions_total=len(context.instructions),
            num_benchmarkable=len(quadratic.benchmarkable),
            num_instructions_mapped=len(mapping.instructions),
            num_basic_instructions=len(selection.basic),
            num_resources=core.num_resources,
            num_benchmarks=sum(r.num_benchmarks for r in records.values()),
            num_equivalence_classes=selection.num_classes,
            num_low_ipc=len(selection.low_ipc) + len(quadratic.discarded_slow),
            lp1_iterations=core.lp1_iterations,
            # LPAUX's saturating-benchmark measurements are benchmarking
            # work, not LP solving (Table II charges them to the former).
            benchmarking_time=(
                records["quadratic"].wall_time
                + records["selection"].wall_time
                + complete.measurement_time
            ),
            lp_time=core.lp_time + complete.solve_time,
            total_time=sum(r.wall_time for r in records.values()),
            num_benchmarks_measured=sum(
                r.num_benchmarks_measured for r in records.values()
            ),
            num_benchmarks_cached=sum(
                r.num_benchmarks_cached for r in records.values()
            ),
            lp_solves=lp_stats.solves,
            lp_model_builds=lp_stats.model_builds,
            lp_warm_start_hits=lp_stats.warm_start_hits,
            lp_rebinds=lp_stats.rebinds,
            lp_chunks=lp_stats.lp_chunks,
            lp_limit_solves=lp_stats.limit_solves,
            lp_worst_mip_gap=lp_stats.worst_mip_gap,
            lp_build_time=lp_stats.build_time,
            lp_solve_time=lp_stats.solve_time,
            lp_rebind_time=lp_stats.rebind_time,
        )
        return FinalOutcome(mapping=mapping, stats=stats)

    def serialize(self, output: FinalOutcome) -> Dict[str, object]:
        stats = output.stats.to_dict()
        deterministic = {
            key: value
            for key, value in stats.items()
            if key not in PalmedStats.RUN_LOCAL_FIELDS
        }
        return {
            "mapping": output.mapping.to_dict(),
            "stats": deterministic,
            "_nondeterministic": {
                "stats": {
                    key: value
                    for key, value in stats.items()
                    if key in PalmedStats.RUN_LOCAL_FIELDS
                }
            },
        }

    def deserialize(
        self, payload: Dict[str, object], context: StageContext
    ) -> FinalOutcome:
        times = payload.get("_nondeterministic", {}).get("stats", {})
        stats_payload = dict(payload["stats"])
        stats_payload.update(times)
        return FinalOutcome(
            mapping=ConjunctiveResourceMapping.from_dict(payload["mapping"]),
            stats=PalmedStats.from_dict(stats_payload),
        )


def palmed_stages() -> List[Stage]:
    """The five Fig. 3 stages, in dependency order."""
    return [
        QuadraticStage(),
        SelectionStage(),
        CoreMappingStage(),
        CompleteMappingStage(),
        FinalizeStage(),
    ]


def load_final_outcome(registry, fingerprint: str) -> Optional[FinalOutcome]:
    """The newest finalize-stage checkpoint of one machine, if any.

    Lets consumers that only need the deliverables (the evaluation harness,
    ``python -m repro evaluate``) serve directly from stage checkpoints
    when no standalone mapping artifact was saved — an interrupted-then-
    resumed characterization leaves a finalize checkpoint behind even if
    the operator never exported an artifact.  ``fingerprint`` is the
    *backend* fingerprint the checkpoints are keyed on.

    Only ``finalize-*.json`` files are read: the upstream checkpoints (the
    quadratic one in particular holds every pairwise measurement) are
    never loaded here.
    """
    import json

    from repro.artifacts.registry import ArtifactError, StageCheckpoint

    directory = registry.stage_dir(fingerprint)
    if not directory.is_dir():
        return None
    checkpoints = []
    for path in directory.glob(f"{FinalizeStage.name}-*.json"):
        try:
            checkpoints.append(
                StageCheckpoint.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))
                )
            )
        except (OSError, ValueError, KeyError, TypeError, ArtifactError):
            continue
    if not checkpoints:
        return None
    newest = max(checkpoints, key=lambda checkpoint: checkpoint.created_at)
    return FinalizeStage().deserialize(newest.payload, context=None)
