"""Content fingerprints for kernels and measurement backends.

The persistent :class:`~repro.measure.cache.MeasurementCache` keys every
entry on *what was measured* (the kernel) and *what it was measured on* (the
backend).  Both sides are content-addressed:

* :func:`kernel_key` serializes a :class:`~repro.mapping.microkernel.Microkernel`
  into a canonical string — instruction names sorted, multiplicities written
  with ``repr`` so the float round-trips exactly;
* :func:`machine_fingerprint` hashes the full ground-truth machine model
  (ports, per-instruction µOP decompositions, occupancies, front-end width);
* :func:`backend_fingerprint` asks the backend for its own
  :meth:`fingerprint` (all bundled backends provide one covering the machine
  model and every parameter that influences measured values, e.g. the noise
  seed), so swapping the machine model or the noise configuration
  automatically invalidates every cached measurement.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.machines.machine import Machine
from repro.mapping.microkernel import Microkernel


def kernel_key(kernel: Microkernel) -> str:
    """Canonical cache key of a kernel: ``"NAME:repr(count) ..."`` sorted by name.

    ``repr`` of a Python float round-trips exactly, so two kernels share a
    key if and only if they are equal (same instructions, bitwise-identical
    multiplicities).
    """
    return " ".join(f"{inst.name}:{count!r}" for inst, count in kernel.items())


def machine_fingerprint(machine: Machine) -> str:
    """SHA-256 digest of the complete ground-truth machine description."""
    digest = hashlib.sha256()
    digest.update(machine.name.encode("utf-8"))
    digest.update(repr(float(machine.front_end_width)).encode("utf-8"))
    digest.update("|".join(machine.ports).encode("utf-8"))
    for instruction in machine.instructions:
        digest.update(
            f"{instruction.name};{instruction.kind.value};"
            f"{instruction.extension.value};{instruction.width};"
            f"{instruction.variant}".encode("utf-8")
        )
        for uop in machine.port_mapping.uops(instruction):
            digest.update(
                f"[{','.join(sorted(uop.ports))}]x{uop.occupancy!r}".encode("utf-8")
            )
    return digest.hexdigest()


def combine_fingerprint(*parts: object) -> str:
    """Hash a tuple of already-canonical parts into one digest string."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(str(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def backend_fingerprint(backend: object) -> Optional[str]:
    """Content fingerprint of a measurement backend, or ``None``.

    Returns ``None`` when the backend does not expose a :meth:`fingerprint`
    method — such backends cannot participate in persistent caching (their
    measured values cannot be tied to a stable identity), and the
    measurement layer silently degrades to uncached operation for them.
    """
    method = getattr(backend, "fingerprint", None)
    if method is None:
        return None
    return str(method())
