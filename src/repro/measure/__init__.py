"""Batched, parallel, cached microbenchmark measurement.

This package is the measurement client of the shared execution substrate:
the PALMED pipeline's benchmark demand is batched (``measure_batch``),
fanned out over worker processes and memoized across runs
(:class:`MeasurementCache`), while preserving the exact values — and thus
the exact inferred mapping — of the sequential scalar path:

* :class:`MeasurementCache` — content-keyed in-memory + on-disk JSON store;
  keys combine a kernel fingerprint with a backend fingerprint (machine
  model, noise parameters), so model or seed changes invalidate cleanly.
* :class:`ParallelDispatcher` — a thin measurement-specific client of
  :class:`repro.runtime.ParallelRuntime` (the chunked process-pool fan-out
  also used by the LPAUX solver phase), adding only the backend semantics;
  ``workers <= 1`` degrades to a plain in-process loop.
* :mod:`repro.measure.fingerprint` — canonical kernel keys and machine /
  backend content hashes.

Measurement is *not* the only parallel path anymore: the per-instruction
LPAUX weight solves fan out over the very same runtime (see
``PalmedConfig.lp_parallelism`` and :mod:`repro.palmed.complete_mapping`).
See the README's "Shared parallel runtime" section for the layering, and
``tests/test_measure_parallel.py`` for the differential guarantees.
"""

from repro.measure.cache import MeasurementCache
from repro.measure.dispatcher import ParallelDispatcher
from repro.measure.fingerprint import (
    backend_fingerprint,
    kernel_key,
    machine_fingerprint,
)

__all__ = [
    "MeasurementCache",
    "ParallelDispatcher",
    "backend_fingerprint",
    "kernel_key",
    "machine_fingerprint",
]
